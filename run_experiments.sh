#!/bin/sh
# Regenerates every table/figure of the paper reproduction into results/.
# Usage: sh run_experiments.sh [extra args passed to every binary]
set -e
cd "$(dirname "$0")"
# Persist golden captures across the figure binaries below: every binary
# shares one on-disk GoldenCache, so each workload's fault-free run is
# captured (and lockstep-verified) once per sweep instead of once per
# process. Delete the directory to force fresh captures.
AVGI_GOLDEN_CACHE="${AVGI_GOLDEN_CACHE:-results/golden-cache}"
export AVGI_GOLDEN_CACHE
run() {
  bin=$1; shift
  echo "=== $bin $* ==="
  cargo run --release -p avgi-bench --bin "$bin" -- "$@" >"results/$bin.txt" 2>"results/$bin.log"
}
# Campaign-driving binaries also emit machine-readable telemetry: live
# progress snapshots land in results/$bin.log, final counters + latency
# histograms in results/$bin.metrics.json.
runm() {
  bin=$1; shift
  run "$bin" --metrics "results/$bin.metrics.json" "$@"
}
run fig02_imm_diagram
run fig01_ace_vs_sfi --faults 400
runm fig04_effects_per_imm --faults 400
run fig08_ert_inclusive_exclusive --faults 400
runm fig07_esc_prediction --faults 300
runm fig03_imm_distribution --faults 300
run table2_speedup --faults 200
runm fig05_imm_weights --faults 200
run fig10_accuracy --faults 200
run fig12_case_study --faults 150
run fig11_fit_rates --faults 150
echo "all experiments complete"
