//! Reproducibility guarantees across the stack: identical goldens,
//! identical campaigns, structure-complete assessments.

use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};

#[test]
fn golden_runs_are_bit_identical() {
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("fft").unwrap();
    let a = golden_for(&w, &cfg);
    let b = golden_for(&w, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.output, b.output);
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn every_structure_can_run_a_campaign_on_both_configs() {
    for cfg in [MuarchConfig::big(), MuarchConfig::small()] {
        let w = avgi_repro::workloads::by_name("bitcount").unwrap();
        let golden = golden_for(&w, &cfg);
        for &s in Structure::all() {
            let c = run_campaign(
                &w,
                &cfg,
                &golden,
                &CampaignConfig::new(s, 8, RunMode::Instrumented),
            );
            assert_eq!(c.len(), 8, "{s} on {}", cfg.name);
        }
    }
}

#[test]
fn golden_outputs_match_reference_for_every_workload() {
    // The umbrella-crate version of the workloads' own correctness tests:
    // one pass, big config only, all 14 programs.
    let cfg = MuarchConfig::big();
    for w in avgi_repro::workloads::all() {
        let golden = golden_for(&w, &cfg);
        assert_eq!(
            golden.output, w.expected,
            "{} diverged from reference",
            w.name
        );
    }
}
