//! Randomized property tests of the core invariants, spanning crates.
//!
//! These were originally `proptest` properties; the repository must build
//! fully offline, so they are now deterministic loops over an in-repo
//! xoshiro256** generator (`avgi-rng`) — same invariants, fixed seeds,
//! reproducible failures.

use avgi_repro::core::classify::{classify_conditions, Conditions};
use avgi_repro::core::{EffectDistribution, EscModel, ImmClass};
use avgi_repro::faultsim::{error_margin, sample_faults, sample_size, Confidence};
use avgi_repro::isa::instr::{decode, Instr};
use avgi_repro::isa::opcode::Opcode;
use avgi_repro::isa::reg::Reg;
use avgi_repro::muarch::{MuarchConfig, Structure};
use avgi_rng::Rng;

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range_u64(u64::from(avgi_repro::isa::NUM_ARCH_REGS)) as u8).expect("in range")
}

/// Every valid instruction survives an encode/decode roundtrip.
#[test]
fn encode_decode_roundtrip() {
    use avgi_repro::isa::opcode::Format;
    let mut rng = Rng::seed_from_u64(0x1001);
    for _ in 0..4096 {
        let op = *rng.choose(Opcode::all());
        let (rd, rs1, rs2) = (arb_reg(&mut rng), arb_reg(&mut rng), arb_reg(&mut rng));
        let imm = rng.gen_range_i32(-8192, 8192);
        let imm = match op.format() {
            Format::J => imm * 16, // wider field; still in range
            Format::N | Format::R => 0,
            _ => imm,
        };
        let i = Instr::new(op, rd, rs1, rs2, imm);
        let d = decode(i.encode()).expect("valid instruction decodes");
        assert_eq!(d.op, op);
        assert_eq!(d.imm, imm);
    }
}

/// Decoding never panics on arbitrary 32-bit words (totality).
#[test]
fn decode_is_total() {
    let mut rng = Rng::seed_from_u64(0x1002);
    for _ in 0..100_000 {
        let _ = decode(rng.next_u32());
    }
    // Plus the low words and boundaries exhaustively enough to matter.
    for w in 0..=u32::from(u16::MAX) {
        let _ = decode(w);
        let _ = decode(w.rotate_left(16));
    }
}

/// The Fig. 2 diagram maps every condition vector to exactly one class,
/// and any vector with a commit-trace error never lands on the right
/// branch (PRE/ESC/Benign). Exhaustive over all 256 condition vectors.
#[test]
fn imm_diagram_total_and_consistent() {
    for bits in 0..=u8::MAX {
        let c = Conditions::from_bits(bits);
        let class = classify_conditions(c);
        if !c.commit_trace_correct() {
            assert!(matches!(class, ImmClass::Manifested(i)
                if i != avgi_repro::core::Imm::Pre && i != avgi_repro::core::Imm::Esc));
        } else {
            assert!(matches!(
                class,
                ImmClass::Benign
                    | ImmClass::Manifested(avgi_repro::core::Imm::Pre)
                    | ImmClass::Manifested(avgi_repro::core::Imm::Esc)
            ));
        }
    }
}

/// Fault sampling stays in range for every structure and is deterministic
/// in the seed.
#[test]
fn fault_sampling_in_range() {
    let cfg = MuarchConfig::big();
    let mut rng = Rng::seed_from_u64(0x1003);
    for _ in 0..32 {
        let s = *rng.choose(Structure::all());
        let seed = rng.next_u64();
        let cycles = 1 + rng.gen_range_u64(1_000_000);
        let faults = sample_faults(s, &cfg, cycles, 50, seed);
        let bits = s.bit_count(&cfg);
        for f in &faults {
            assert!(f.site.bit < bits);
            assert!(f.cycle < cycles);
            assert_eq!(f.site.structure, s);
        }
        assert_eq!(faults, sample_faults(s, &cfg, cycles, 50, seed));
    }
}

/// Error margin and sample size are mutually consistent inverses.
#[test]
fn margin_size_inverse() {
    let mut rng = Rng::seed_from_u64(0x1004);
    for _ in 0..512 {
        let n = 100 + rng.gen_range_usize(100_000 - 100);
        let e = error_margin(n, Confidence::C99).unwrap();
        let n2 = sample_size(e, Confidence::C99).unwrap();
        // Within rounding of each other.
        assert!((n2 as i64 - n as i64).abs() <= 2, "{n} -> {e} -> {n2}");
    }
}

/// The ESC model always yields a fraction in [0, 1] and a count no larger
/// than the Benign population.
#[test]
fn esc_model_bounded() {
    let mut rng = Rng::seed_from_u64(0x1005);
    for _ in 0..2048 {
        let out = rng.next_u32() & ((1 << 24) - 1);
        let total = 1 + rng.gen_range_u64(10_000 - 1);
        let benign_frac = rng.gen_f64();
        let scale = rng.gen_f64() * 1_000.0;
        let benign = ((total as f64) * benign_frac) as u64;
        let m = EscModel { scale };
        let f = m.esc_fraction(out, total, benign);
        assert!((0.0..=1.0).contains(&f));
        assert!(m.esc_count(out, total, benign) <= benign as f64 + 1e-9);
    }
}

/// Effect distributions: max_abs_diff is a metric (symmetric, zero on
/// self, triangle inequality).
#[test]
fn effect_diff_is_a_metric() {
    let mut rng = Rng::seed_from_u64(0x1006);
    let arb = |rng: &mut Rng| {
        let v = [rng.gen_f64(), rng.gen_f64(), rng.gen_f64()];
        let s: f64 = v.iter().sum::<f64>().max(1e-9);
        EffectDistribution {
            masked: v[0] / s,
            sdc: v[1] / s,
            crash: v[2] / s,
        }
    };
    for _ in 0..2048 {
        let (a, b, c) = (arb(&mut rng), arb(&mut rng), arb(&mut rng));
        assert!(a.max_abs_diff(a) < 1e-12);
        assert!((a.max_abs_diff(b) - b.max_abs_diff(a)).abs() < 1e-12);
        assert!(a.max_abs_diff(c) <= a.max_abs_diff(b) + b.max_abs_diff(c) + 1e-12);
    }
}

/// Running any workload prefix of the suite is deterministic: same seed,
/// same campaign, same classification — through the whole stack.
#[test]
fn campaign_determinism() {
    use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("bitcount").expect("exists");
    let golden = golden_for(&w, &cfg);
    let mut rng = Rng::seed_from_u64(0x1007);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let cc = CampaignConfig::new(Structure::Dtlb, 10, RunMode::Instrumented).with_seed(seed);
        let a = run_campaign(&w, &cfg, &golden, &cc);
        let b = run_campaign(&w, &cfg, &golden, &cc);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.deviation, y.deviation);
        }
    }
}

/// Cross-validation of the encoding's field map against the decoder: the
/// field a flipped bit lands in determines the decode outcome — the root
/// mechanism behind the IRP/UNO/OFS manifestation classes.
#[test]
fn bit_field_map_predicts_decode_outcome() {
    use avgi_repro::isa::encoding::{field_of_bit, Field};
    use avgi_repro::isa::instr::DecodeError;
    use avgi_repro::isa::opcode::Format;

    let mut rng = Rng::seed_from_u64(0x1008);
    for _ in 0..8192 {
        let op = *rng.choose(Opcode::all());
        let (rd, rs1, rs2) = (arb_reg(&mut rng), arb_reg(&mut rng), arb_reg(&mut rng));
        let imm = rng.gen_range_i32(0, 8192);
        let bit = rng.gen_range_u64(32) as u32;

        let imm = if op.format() == Format::N || op.format() == Format::R {
            0
        } else {
            imm
        };
        let i = Instr::new(op, rd, rs1, rs2, imm);
        let original = i.encode();
        let corrupted = original ^ (1u32 << bit);
        match field_of_bit(op.format(), bit) {
            Field::Imm => {
                // Immediate flips always stay in the ISA, different value.
                let d = decode(corrupted).expect("imm flip keeps a valid word");
                assert_eq!(d.op, op);
                assert_ne!(d.imm, i.imm);
            }
            Field::Pad => {
                // Pad was zero; a flip sets it: operand error (UNO path).
                match decode(corrupted) {
                    Err(e) => assert!(e.is_operand_error()),
                    Ok(_) => panic!("pad flip must not decode"),
                }
            }
            Field::Rd | Field::Rs1 | Field::Rs2 => match decode(corrupted) {
                Ok(d) => {
                    assert_eq!(d.op, op);
                    assert_ne!(d.encode(), original, "some register changed");
                }
                Err(DecodeError::UnknownRegister { .. }) => {} // UNO
                Err(e) => panic!("unexpected error {e:?}"),
            },
            Field::Opcode => {
                // Decoding either lands on a different op (IRP) or traps.
                if let Ok(d) = decode(corrupted) {
                    assert_ne!(d.op, op);
                }
            }
        }
    }
}
