//! Property-based tests of the core invariants, spanning crates.

use avgi_repro::core::classify::{classify_conditions, Conditions};
use avgi_repro::core::{EffectDistribution, EscModel, ImmClass};
use avgi_repro::faultsim::{error_margin, sample_faults, sample_size, Confidence};
use avgi_repro::isa::instr::{decode, Instr};
use avgi_repro::isa::opcode::Opcode;
use avgi_repro::isa::reg::Reg;
use avgi_repro::muarch::{MuarchConfig, Structure};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::all().to_vec())
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..avgi_repro::isa::NUM_ARCH_REGS).prop_map(|i| Reg::new(i).expect("in range"))
}

fn arb_structure() -> impl Strategy<Value = Structure> {
    prop::sample::select(Structure::all().to_vec())
}

proptest! {
    /// Every valid instruction survives an encode/decode roundtrip.
    #[test]
    fn encode_decode_roundtrip(
        op in arb_opcode(),
        rd in arb_reg(),
        rs1 in arb_reg(),
        rs2 in arb_reg(),
        imm in -8192i32..8192,
    ) {
        use avgi_repro::isa::opcode::Format;
        let imm = match op.format() {
            Format::J => imm * 16, // wider field; still in range
            Format::N | Format::R => 0,
            _ => imm,
        };
        let i = Instr::new(op, rd, rs1, rs2, imm);
        let d = decode(i.encode()).expect("valid instruction decodes");
        prop_assert_eq!(d.op, op);
        prop_assert_eq!(d.imm, imm);
    }

    /// Decoding never panics on arbitrary 32-bit words (totality).
    #[test]
    fn decode_is_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// The Fig. 2 diagram maps every condition vector to exactly one class,
    /// and any vector with a commit-trace error never lands on the right
    /// branch (PRE/ESC/Benign).
    #[test]
    fn imm_diagram_total_and_consistent(bits in any::<u8>()) {
        let c = Conditions::from_bits(bits);
        let class = classify_conditions(c);
        if !c.commit_trace_correct() {
            prop_assert!(matches!(class, ImmClass::Manifested(i)
                if i != avgi_repro::core::Imm::Pre && i != avgi_repro::core::Imm::Esc));
        } else {
            prop_assert!(matches!(class, ImmClass::Benign
                | ImmClass::Manifested(avgi_repro::core::Imm::Pre)
                | ImmClass::Manifested(avgi_repro::core::Imm::Esc)));
        }
    }

    /// Fault sampling stays in range for every structure and is
    /// deterministic in the seed.
    #[test]
    fn fault_sampling_in_range(s in arb_structure(), seed in any::<u64>(), cycles in 1u64..1_000_000) {
        let cfg = MuarchConfig::big();
        let faults = sample_faults(s, &cfg, cycles, 50, seed);
        let bits = s.bit_count(&cfg);
        for f in &faults {
            prop_assert!(f.site.bit < bits);
            prop_assert!(f.cycle < cycles);
            prop_assert_eq!(f.site.structure, s);
        }
        prop_assert_eq!(faults, sample_faults(s, &cfg, cycles, 50, seed));
    }

    /// Error margin and sample size are mutually consistent inverses.
    #[test]
    fn margin_size_inverse(n in 100usize..100_000) {
        let e = error_margin(n, Confidence::C99);
        let n2 = sample_size(e, Confidence::C99);
        // Within rounding of each other.
        prop_assert!((n2 as i64 - n as i64).abs() <= 2, "{n} -> {e} -> {n2}");
    }

    /// The ESC model always yields a fraction in [0, 1] and a count no
    /// larger than the Benign population.
    #[test]
    fn esc_model_bounded(
        out in 0u32..(1 << 24),
        total in 1u64..10_000,
        benign_frac in 0.0f64..=1.0,
        scale in 0.0f64..1_000.0,
    ) {
        let benign = ((total as f64) * benign_frac) as u64;
        let m = EscModel { scale };
        let f = m.esc_fraction(out, total, benign);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(m.esc_count(out, total, benign) <= benign as f64 + 1e-9);
    }

    /// Effect distributions: max_abs_diff is a metric (symmetric, zero on
    /// self, triangle inequality).
    #[test]
    fn effect_diff_is_a_metric(
        a in prop::array::uniform3(0.0f64..1.0),
        b in prop::array::uniform3(0.0f64..1.0),
        c in prop::array::uniform3(0.0f64..1.0),
    ) {
        let norm = |v: [f64; 3]| {
            let s: f64 = v.iter().sum::<f64>().max(1e-9);
            EffectDistribution { masked: v[0] / s, sdc: v[1] / s, crash: v[2] / s }
        };
        let (a, b, c) = (norm(a), norm(b), norm(c));
        prop_assert!(a.max_abs_diff(a) < 1e-12);
        prop_assert!((a.max_abs_diff(b) - b.max_abs_diff(a)).abs() < 1e-12);
        prop_assert!(a.max_abs_diff(c) <= a.max_abs_diff(b) + b.max_abs_diff(c) + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Running any workload prefix of the suite is deterministic: same
    /// seed, same campaign, same classification — through the whole stack.
    #[test]
    fn campaign_determinism(seed in any::<u64>()) {
        use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
        let cfg = MuarchConfig::big();
        let w = avgi_repro::workloads::by_name("bitcount").expect("exists");
        let golden = golden_for(&w, &cfg);
        let cc = CampaignConfig::new(Structure::Dtlb, 10, RunMode::Instrumented).with_seed(seed);
        let a = run_campaign(&w, &cfg, &golden, &cc);
        let b = run_campaign(&w, &cfg, &golden, &cc);
        for (x, y) in a.results.iter().zip(&b.results) {
            prop_assert_eq!(x.outcome, y.outcome);
            prop_assert_eq!(x.cycles, y.cycles);
            prop_assert_eq!(x.deviation, y.deviation);
        }
    }
}

proptest! {
    /// Cross-validation of the encoding's field map against the decoder:
    /// the field a flipped bit lands in determines the decode outcome —
    /// the root mechanism behind the IRP/UNO/OFS manifestation classes.
    #[test]
    fn bit_field_map_predicts_decode_outcome(
        op in prop::sample::select(avgi_repro::isa::opcode::Opcode::all().to_vec()),
        rd in 0u8..avgi_repro::isa::NUM_ARCH_REGS,
        rs1 in 0u8..avgi_repro::isa::NUM_ARCH_REGS,
        rs2 in 0u8..avgi_repro::isa::NUM_ARCH_REGS,
        imm in 0i32..8192,
        bit in 0u32..32,
    ) {
        use avgi_repro::isa::encoding::{field_of_bit, Field};
        use avgi_repro::isa::instr::{decode, DecodeError, Instr};
        use avgi_repro::isa::opcode::Format;
        use avgi_repro::isa::reg::Reg;

        let r = |x: u8| Reg::new(x).expect("in range");
        let imm = if op.format() == Format::N || op.format() == Format::R { 0 } else { imm };
        let i = Instr::new(op, r(rd), r(rs1), r(rs2), imm);
        let original = i.encode();
        let corrupted = original ^ (1u32 << bit);
        match field_of_bit(op.format(), bit) {
            Field::Imm => {
                // Immediate flips always stay in the ISA, different value.
                let d = decode(corrupted).expect("imm flip keeps a valid word");
                prop_assert_eq!(d.op, op);
                prop_assert_ne!(d.imm, i.imm);
            }
            Field::Pad => {
                // Pad was zero; a flip sets it: operand error (UNO path).
                match decode(corrupted) {
                    Err(e) => prop_assert!(e.is_operand_error()),
                    Ok(_) => prop_assert!(false, "pad flip must not decode"),
                }
            }
            Field::Rd | Field::Rs1 | Field::Rs2 => {
                match decode(corrupted) {
                    Ok(d) => {
                        prop_assert_eq!(d.op, op);
                        prop_assert_ne!(d.encode(), original, "some register changed");
                    }
                    Err(DecodeError::UnknownRegister { .. }) => {} // UNO
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                }
            }
            Field::Opcode => {
                match decode(corrupted) {
                    Ok(d) => prop_assert_ne!(d.op, op), // IRP: different op
                    Err(_) => {}                        // undefined: trap
                }
            }
        }
    }
}
