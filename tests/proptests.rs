//! Randomized property tests of the core invariants, spanning crates.
//!
//! Invariants that only exercise `avgi-isa` encode/decode live in
//! `crates/isa/tests/proptests.rs`, keeping `cargo test -p avgi-isa`
//! self-contained; this suite keeps the genuinely cross-crate properties.
//!
//! These were originally `proptest` properties; the repository must build
//! fully offline, so they are now deterministic loops over an in-repo
//! xoshiro256** generator (`avgi-rng`) — same invariants, fixed seeds,
//! reproducible failures.

use avgi_repro::core::classify::{classify_conditions, Conditions};
use avgi_repro::core::{EffectDistribution, EscModel, ImmClass};
use avgi_repro::faultsim::{error_margin, sample_faults, sample_size, Confidence};
use avgi_repro::muarch::{MuarchConfig, Structure};
use avgi_rng::Rng;

/// The Fig. 2 diagram maps every condition vector to exactly one class,
/// and any vector with a commit-trace error never lands on the right
/// branch (PRE/ESC/Benign). Exhaustive over all 256 condition vectors.
#[test]
fn imm_diagram_total_and_consistent() {
    for bits in 0..=u8::MAX {
        let c = Conditions::from_bits(bits);
        let class = classify_conditions(c);
        if !c.commit_trace_correct() {
            assert!(matches!(class, ImmClass::Manifested(i)
                if i != avgi_repro::core::Imm::Pre && i != avgi_repro::core::Imm::Esc));
        } else {
            assert!(matches!(
                class,
                ImmClass::Benign
                    | ImmClass::Manifested(avgi_repro::core::Imm::Pre)
                    | ImmClass::Manifested(avgi_repro::core::Imm::Esc)
            ));
        }
    }
}

/// Fault sampling stays in range for every structure and is deterministic
/// in the seed.
#[test]
fn fault_sampling_in_range() {
    let cfg = MuarchConfig::big();
    let mut rng = Rng::seed_from_u64(0x1003);
    for _ in 0..32 {
        let s = *rng.choose(Structure::all());
        let seed = rng.next_u64();
        let cycles = 1 + rng.gen_range_u64(1_000_000);
        let faults = sample_faults(s, &cfg, cycles, 50, seed).unwrap();
        let bits = s.bit_count(&cfg);
        for f in &faults {
            assert!(f.site.bit < bits);
            assert!(f.cycle < cycles);
            assert_eq!(f.site.structure, s);
        }
        assert_eq!(faults, sample_faults(s, &cfg, cycles, 50, seed).unwrap());
    }
}

/// Error margin and sample size are mutually consistent inverses.
#[test]
fn margin_size_inverse() {
    let mut rng = Rng::seed_from_u64(0x1004);
    for _ in 0..512 {
        let n = 100 + rng.gen_range_usize(100_000 - 100);
        let e = error_margin(n, Confidence::C99).unwrap();
        let n2 = sample_size(e, Confidence::C99).unwrap();
        // Within rounding of each other.
        assert!((n2 as i64 - n as i64).abs() <= 2, "{n} -> {e} -> {n2}");
    }
}

/// The ESC model always yields a fraction in [0, 1] and a count no larger
/// than the Benign population.
#[test]
fn esc_model_bounded() {
    let mut rng = Rng::seed_from_u64(0x1005);
    for _ in 0..2048 {
        let out = rng.next_u32() & ((1 << 24) - 1);
        let total = 1 + rng.gen_range_u64(10_000 - 1);
        let benign_frac = rng.gen_f64();
        let scale = rng.gen_f64() * 1_000.0;
        let benign = ((total as f64) * benign_frac) as u64;
        let m = EscModel { scale };
        let f = m.esc_fraction(out, total, benign);
        assert!((0.0..=1.0).contains(&f));
        assert!(m.esc_count(out, total, benign) <= benign as f64 + 1e-9);
    }
}

/// Effect distributions: max_abs_diff is a metric (symmetric, zero on
/// self, triangle inequality).
#[test]
fn effect_diff_is_a_metric() {
    let mut rng = Rng::seed_from_u64(0x1006);
    let arb = |rng: &mut Rng| {
        let v = [rng.gen_f64(), rng.gen_f64(), rng.gen_f64()];
        let s: f64 = v.iter().sum::<f64>().max(1e-9);
        EffectDistribution {
            masked: v[0] / s,
            sdc: v[1] / s,
            crash: v[2] / s,
        }
    };
    for _ in 0..2048 {
        let (a, b, c) = (arb(&mut rng), arb(&mut rng), arb(&mut rng));
        assert!(a.max_abs_diff(a) < 1e-12);
        assert!((a.max_abs_diff(b) - b.max_abs_diff(a)).abs() < 1e-12);
        assert!(a.max_abs_diff(c) <= a.max_abs_diff(b) + b.max_abs_diff(c) + 1e-12);
    }
}

/// Running any workload prefix of the suite is deterministic: same seed,
/// same campaign, same classification — through the whole stack.
#[test]
fn campaign_determinism() {
    use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("bitcount").expect("exists");
    let golden = golden_for(&w, &cfg);
    let mut rng = Rng::seed_from_u64(0x1007);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let cc = CampaignConfig::new(Structure::Dtlb, 10, RunMode::Instrumented).with_seed(seed);
        let a = run_campaign(&w, &cfg, &golden, &cc);
        let b = run_campaign(&w, &cfg, &golden, &cc);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.deviation, y.deviation);
        }
    }
}
