//! Cheap end-to-end checks of the paper's qualitative claims — the load-
//! bearing phenomenology behind the methodology, at test-sized samples.

use avgi_repro::core::ace::ace_regfile;
use avgi_repro::core::pipeline::exhaustive;
use avgi_repro::core::{Imm, JointAnalysis};
use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};

#[test]
fn ace_analysis_overestimates_sfi_on_the_register_file() {
    // The paper's Fig. 1 motivation, on two workloads.
    let cfg = MuarchConfig::big();
    for name in ["sha", "crc32"] {
        let w = avgi_repro::workloads::by_name(name).unwrap();
        let golden = golden_for(&w, &cfg);
        let sfi = exhaustive(&w, &cfg, &golden, Structure::RegFile, 150, 3)
            .effect
            .avf();
        let ace = ace_regfile(&golden, &cfg).avf();
        assert!(
            ace > sfi,
            "{name}: ACE ({ace:.3}) must exceed SFI ({sfi:.3}) — Fig. 1"
        );
    }
}

#[test]
fn register_file_manifests_mostly_as_data_corruption() {
    // Fig. 3's RF panel: DCR dominates; IRP/UNO/OFS/PRE never occur.
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("dijkstra").unwrap();
    let golden = golden_for(&w, &cfg);
    let c = run_campaign(
        &w,
        &cfg,
        &golden,
        &CampaignConfig::new(Structure::RegFile, 200, RunMode::Instrumented),
    );
    let a = JointAnalysis::from_campaign(&c);
    let d = a.visible_imm_distribution();
    assert!(d[Imm::Dcr.index()] > 0.5, "DCR must dominate, got {d:?}");
    for imm in [Imm::Irp, Imm::Uno, Imm::Ofs, Imm::Pre] {
        assert_eq!(a.imm_count(imm), 0, "{imm} cannot originate in the RF");
    }
}

#[test]
fn large_output_workloads_escape_more() {
    // Fig. 7's correlation: blowfish (12 KiB output) must show more ESC
    // faults in the L1D data array than sha (4 B output) shows at all.
    let cfg = MuarchConfig::big();
    let esc_count = |name: &str| {
        let w = avgi_repro::workloads::by_name(name).unwrap();
        let golden = golden_for(&w, &cfg);
        let c = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::L1DData, 150, RunMode::Instrumented),
        );
        JointAnalysis::from_campaign(&c).imm_count(Imm::Esc)
    };
    let blowfish = esc_count("blowfish");
    let sha = esc_count("sha");
    assert!(blowfish > sha, "blowfish {blowfish} vs sha {sha}");
    assert!(
        blowfish >= 5,
        "a 12 KiB output must escape repeatedly, got {blowfish}"
    );
    assert_eq!(sha, 0, "a 4-byte output practically cannot be hit");
}

#[test]
fn deep_pipeline_structures_manifest_fast() {
    // Insight 3's foundation: the median manifestation latency in the RF
    // is orders of magnitude below the execution length.
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("rijndael").unwrap();
    let golden = golden_for(&w, &cfg);
    let c = run_campaign(
        &w,
        &cfg,
        &golden,
        &CampaignConfig::new(Structure::RegFile, 200, RunMode::Instrumented),
    );
    let a = JointAnalysis::from_campaign(&c);
    let lats = &a.manifestation_latencies;
    assert!(lats.len() >= 10, "need manifestations to measure");
    let median = lats[lats.len() / 2];
    assert!(
        median * 20 < golden.cycles,
        "median latency {median} not << execution {}",
        golden.cycles
    );
}
