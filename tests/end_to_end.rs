//! Cross-crate integration: the full AVGI methodology exercised through
//! the public API of the umbrella crate.

use avgi_repro::core::pipeline::{assess, exhaustive, AvgiOptions};
use avgi_repro::core::weights::learn_weights;
use avgi_repro::core::{FaultEffect, Imm};
use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};

const FAULTS: usize = 80;

#[test]
fn methodology_end_to_end_on_register_file() {
    let cfg = MuarchConfig::big();
    let workloads = avgi_repro::workloads::all();
    let train = &workloads[..3];
    let target = &workloads[3];

    let analyses: Vec<_> = train
        .iter()
        .map(|w| {
            let golden = golden_for(w, &cfg);
            exhaustive(w, &cfg, &golden, Structure::RegFile, FAULTS, 11).analysis
        })
        .collect();
    let weights = learn_weights(&analyses, None);

    let golden = golden_for(target, &cfg);
    let opts = AvgiOptions {
        faults: FAULTS,
        seed: 12,
        ..Default::default()
    };
    let avgi = assess(target, &cfg, &golden, &weights, &opts);
    let real = exhaustive(target, &cfg, &golden, Structure::RegFile, FAULTS, 12);

    assert!(avgi.predicted.is_normalized());
    assert!(real.effect.is_normalized());
    assert!(
        avgi.cost_cycles < real.cost_cycles,
        "AVGI must be cheaper: {} vs {}",
        avgi.cost_cycles,
        real.cost_cycles
    );
    // Identical fault samples (same seed): Benign + manifested = total.
    assert_eq!(avgi.total, FAULTS as u64);
}

#[test]
fn rob_pipeline_yields_pure_pre_and_crash_weights() {
    // The ROB's check-at-use model must manifest exclusively as PRE, whose
    // learned weight is 100% Crash.
    let cfg = MuarchConfig::big();
    let workloads = avgi_repro::workloads::all();
    let analyses: Vec<_> = workloads[..3]
        .iter()
        .map(|w| {
            let golden = golden_for(w, &cfg);
            exhaustive(w, &cfg, &golden, Structure::Rob, FAULTS, 21).analysis
        })
        .collect();
    for a in &analyses {
        for imm in Imm::all() {
            if *imm != Imm::Pre {
                assert_eq!(
                    a.imm_count(*imm),
                    0,
                    "{}: unexpected {imm} in ROB",
                    a.workload
                );
            }
        }
    }
    let weights = learn_weights(&analyses, None);
    if weights.observed(Imm::Pre) {
        assert!((weights.weight(Imm::Pre, FaultEffect::Crash) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn first_deviation_campaign_matches_instrumented_classification() {
    // The early-stopped campaign must classify manifested faults exactly
    // like the end-to-end instrumented campaign on the same fault sample
    // (insight 1&2 loses no information about corruptions).
    use avgi_repro::core::classify::classify_injection;
    use avgi_repro::core::ImmClass;

    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("crc32").unwrap();
    let golden = golden_for(&w, &cfg);
    let base = CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::Instrumented).with_seed(31);
    let instrumented = run_campaign(&w, &cfg, &golden, &base);
    let early = run_campaign(
        &w,
        &cfg,
        &golden,
        &CampaignConfig::new(
            Structure::RegFile,
            FAULTS,
            RunMode::FirstDeviation { ert_window: None },
        )
        .with_seed(31),
    );
    for (a, b) in instrumented.results.iter().zip(&early.results) {
        assert_eq!(a.fault, b.fault);
        let ca = classify_injection(a);
        let cb = classify_injection(b);
        match ca {
            ImmClass::Manifested(Imm::Esc) => {
                // ESC needs output comparison; the early run cannot see it.
                assert_eq!(cb, ImmClass::Benign);
            }
            ImmClass::Manifested(imm) => {
                assert_eq!(cb, ImmClass::Manifested(imm), "fault {:?}", a.fault);
            }
            ImmClass::Benign => assert_eq!(cb, ImmClass::Benign),
        }
    }
}

#[test]
fn small_config_runs_the_full_flow() {
    let cfg = MuarchConfig::small();
    let w = avgi_repro::workloads::by_name("sha").unwrap();
    let golden = golden_for(&w, &cfg);
    let ex = exhaustive(&w, &cfg, &golden, Structure::L1IData, FAULTS, 41);
    assert!(ex.effect.is_normalized());
}
