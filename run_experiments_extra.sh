#!/bin/sh
# Ablations and tools (run after run_experiments.sh).
set -e
cd "$(dirname "$0")"
run() {
  bin=$1; shift
  echo "=== $bin $* ==="
  cargo run --release -p avgi-bench --bin "$bin" -- "$@" >"results/$bin.txt" 2>"results/$bin.log"
}
# Campaign-driving binaries also emit machine-readable telemetry: live
# progress snapshots land in results/$bin.log, final counters + latency
# histograms in results/$bin.metrics.json.
runm() {
  bin=$1; shift
  run "$bin" --metrics "results/$bin.metrics.json" "$@"
}
runm fig03_imm_distribution --faults 250
runm fig04_effects_per_imm --faults 2000
runm fig07_esc_prediction --faults 250
run fig08_ert_inclusive_exclusive --faults 300
run ablation_ert_window --faults 150
run ablation_prefetch --faults 200
runm avf_report --faults 200 --workload dijkstra
run trace_dump --workload sha
echo "extras complete"
