//! The fast architectural execution tier: a pre-decoded, basic-block
//! threaded interpreter.
//!
//! [`RefModel`](crate::RefModel) re-decodes every instruction word on every
//! step and routes all memory traffic through the pipeline's paged
//! copy-on-write store. That is the right shape for an *oracle* — maximally
//! independent, trivially auditable — but it is far too slow to be the
//! fault-free tier of a two-tier campaign. [`FastModel`] is the production
//! tier:
//!
//! * the program is decoded **once** into a [`BlockCache`]: one compact
//!   dispatch-ready [`FastOp`] per code word, with branch/jump targets and
//!   access sizes pre-computed, plus a basic-block map recording, for every
//!   slot, where its straight-line run ends;
//! * memory is a single flat byte array (the address space is only 768 KiB),
//!   so loads and stores are bounds-checked slice copies instead of page
//!   table walks;
//! * [`FastModel::run`] enters a basic block after **one** fetch check and
//!   then executes the whole straight-line run without re-validating the PC
//!   — alignment and the code limit are invariant inside a block.
//!
//! The tier is *architecturally bit-identical* to the reference model:
//! [`FastModel::step`] yields the same [`RefStep`] stream, the same trap
//! kinds in the same priority order, the same outcome and the same output
//! bytes for every program, valid or hostile. ALU, branch, and load
//! extension semantics are shared with `model.rs` (one source of ISA truth
//! inside this crate); what the fast tier adds — the decode cache, the block
//! map, the flat memory — is exactly what the `--xtier` cross-check and the
//! fuzz differential exercise.
//!
//! Both tiers implement [`ExecBackend`], the trait boundary `muarch` defines
//! for cross-checking execution tiers against the cycle pipeline.

use crate::model::{
    access_size, alu_value, cond_holds, extend_load, Effect, RefModel, RefOutcome, RefRun, RefStep,
    DEFAULT_MAX_STEPS,
};
use avgi_isa::instr::decode;
use avgi_isa::opcode::{Format, Opcode};
use avgi_isa::NUM_ARCH_REGS;
use avgi_muarch::backend::{ArchCommit, BackendEnd, ExecBackend};
use avgi_muarch::mem::{MemFault, DATA_BASE, MEM_SIZE};
use avgi_muarch::{Program, TrapKind};
use std::sync::Arc;

/// Which architectural execution tier to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecTier {
    /// The step-at-a-time oracle interpreter ([`RefModel`]): re-decodes every
    /// word, shares the pipeline's paged memory. Maximally independent.
    Reference,
    /// The pre-decoded basic-block interpreter ([`FastModel`]): same commit
    /// stream at a fraction of the cost. The production fault-free tier.
    #[default]
    Fast,
}

impl ExecTier {
    /// Short label for reports and bench columns.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Reference => "reference",
            ExecTier::Fast => "fast",
        }
    }
}

/// One pre-decoded instruction: operands resolved to register indices,
/// immediates widened, branch/jump targets and access sizes computed at
/// decode time.
#[derive(Debug, Clone, Copy)]
enum FastOp {
    Nop,
    Halt,
    /// R-format ALU op.
    Alu {
        op: Opcode,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// I-format ALU op (`b` operand is the immediate).
    AluImm {
        op: Opcode,
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    Load {
        op: Opcode,
        rd: u8,
        rs1: u8,
        imm: u32,
        size: u32,
    },
    Store {
        rs1: u8,
        rs2: u8,
        imm: u32,
        size: u32,
    },
    /// Conditional branch; `target` is pre-computed from the slot's PC.
    Branch {
        op: Opcode,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// `jal`; `target` and `link` are pre-computed from the slot's PC.
    Jal {
        rd: u8,
        target: u32,
        link: u32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    /// The word does not decode; executing it traps.
    Invalid,
}

impl FastOp {
    /// Whether the op ends a straight-line run (changes or may change
    /// control flow, or ends the program). Data traps do not count: they
    /// abort the block through the outcome, not the block map.
    fn is_terminator(&self) -> bool {
        matches!(
            self,
            FastOp::Halt
                | FastOp::Branch { .. }
                | FastOp::Jal { .. }
                | FastOp::Jalr { .. }
                | FastOp::Invalid
        )
    }
}

/// A program decoded once into dispatch-ready form: one [`FastOp`] and the
/// raw word per code slot, plus the basic-block map. Immutable and shared
/// (`Arc`) across every [`FastModel`] of the same program — the code region
/// is write-protected (stores below `DATA_BASE` fault), so pre-decoding is
/// sound: no program can invalidate the cache at run time.
pub struct BlockCache {
    ops: Vec<FastOp>,
    raws: Vec<u32>,
    /// For each slot, the slot index of the terminator ending its basic
    /// block (inclusive; the last slot if the block falls off the code end).
    block_end: Vec<u32>,
    /// End of the code region (exclusive), `program.code_bytes().max(4)` —
    /// the same limit [`avgi_muarch::mem::Memory`] enforces on fetches.
    code_limit: u32,
}

impl BlockCache {
    /// Decode `program` into a block cache.
    pub fn build(program: &Program) -> Self {
        // An empty program still has a 4-byte code region (one zero word
        // that traps as an undefined instruction), matching `Memory::new`.
        let slots = program.code.len().max(1);
        let mut ops = Vec::with_capacity(slots);
        let mut raws = Vec::with_capacity(slots);
        for slot in 0..slots {
            let raw = program.code.get(slot).copied().unwrap_or(0);
            let pc = (slot as u32) * 4;
            ops.push(predecode(raw, pc));
            raws.push(raw);
        }
        let mut block_end = vec![0u32; slots];
        for slot in (0..slots).rev() {
            block_end[slot] = if ops[slot].is_terminator() || slot + 1 == slots {
                slot as u32
            } else {
                block_end[slot + 1]
            };
        }
        BlockCache {
            ops,
            raws,
            block_end,
            code_limit: program.code_bytes().max(4),
        }
    }

    /// Decoded code slots.
    pub fn slots(&self) -> usize {
        self.ops.len()
    }

    /// Number of basic blocks in the cache.
    pub fn blocks(&self) -> usize {
        let mut n = 0;
        let mut slot = 0usize;
        while slot < self.ops.len() {
            slot = self.block_end[slot] as usize + 1;
            n += 1;
        }
        n
    }
}

fn predecode(raw: u32, pc: u32) -> FastOp {
    let Ok(i) = decode(raw) else {
        return FastOp::Invalid;
    };
    let (rd, rs1, rs2) = (i.rd.index(), i.rs1.index(), i.rs2.index());
    match i.op {
        Opcode::Nop => FastOp::Nop,
        Opcode::Halt => FastOp::Halt,
        op if op.is_load() => FastOp::Load {
            op,
            rd,
            rs1,
            imm: i.imm as u32,
            size: access_size(op),
        },
        op if op.is_store() => FastOp::Store {
            rs1,
            rs2,
            imm: i.imm as u32,
            size: access_size(op),
        },
        op if op.is_branch() => FastOp::Branch {
            op,
            rs1,
            rs2,
            target: pc.wrapping_add((i.imm as u32).wrapping_mul(4)),
        },
        Opcode::Jal => FastOp::Jal {
            rd,
            target: pc.wrapping_add((i.imm as u32).wrapping_mul(4)),
            link: pc.wrapping_add(4),
        },
        Opcode::Jalr => FastOp::Jalr {
            rd,
            rs1,
            imm: i.imm as u32,
        },
        op if op.format() == Format::I => FastOp::AluImm {
            op,
            rd,
            rs1,
            imm: i.imm as u32,
        },
        op => FastOp::Alu { op, rd, rs1, rs2 },
    }
}

/// The fast-tier interpreter; see the module docs.
pub struct FastModel {
    pc: u32,
    regs: [u32; NUM_ARCH_REGS as usize],
    mem: Vec<u8>,
    cache: Arc<BlockCache>,
    output_addr: u32,
    output_len: u32,
    steps: u64,
    outcome: Option<RefOutcome>,
}

impl FastModel {
    /// Decode `program` and build a model in the reset state the pipeline
    /// (and [`RefModel`]) starts from.
    pub fn new(program: &Program) -> Self {
        Self::with_cache(program, Arc::new(BlockCache::build(program)))
    }

    /// Build a model reusing an already-decoded [`BlockCache`] (campaigns
    /// re-run the same program thousands of times).
    pub fn with_cache(program: &Program, cache: Arc<BlockCache>) -> Self {
        // Flat equivalent of `Program::build_memory`: code words at
        // word-aligned offsets, then the initialized data blobs.
        let mut mem = vec![0u8; MEM_SIZE as usize];
        for (i, w) in program.code.iter().enumerate() {
            mem[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        for (addr, bytes) in &program.data {
            mem[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        FastModel {
            pc: program.entry,
            regs: [0; NUM_ARCH_REGS as usize],
            mem,
            cache,
            output_addr: program.output_addr,
            output_len: program.output_len,
            steps: 0,
            outcome: None,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Architectural register file.
    pub fn regs(&self) -> &[u32; NUM_ARCH_REGS as usize] {
        &self.regs
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `Some` once the program halted or trapped; `None` while runnable.
    pub fn outcome(&self) -> Option<RefOutcome> {
        self.outcome
    }

    /// The program's output window, read straight from memory.
    pub fn output(&self) -> Vec<u8> {
        let a = self.output_addr as usize;
        self.mem[a..a + self.output_len as usize].to_vec()
    }

    /// The decode cache this model dispatches from.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    fn trap_step(&mut self, index: u64, pc: u32, raw: u32, ea: u32, kind: TrapKind) -> RefStep {
        self.outcome = Some(RefOutcome::Trap(kind));
        RefStep {
            index,
            pc,
            raw,
            ea,
            val: 0,
            next_pc: pc,
            effect: Effect::Trap(kind),
        }
    }

    /// Execute one instruction, yielding the identical [`RefStep`] the
    /// reference model would. Returns `None` once the program has finished
    /// (the step that halts or traps is itself returned, with `outcome`
    /// set).
    pub fn step(&mut self) -> Option<RefStep> {
        if self.outcome.is_some() {
            return None;
        }
        let index = self.steps;
        self.steps += 1;
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Some(self.trap_step(
                index,
                pc,
                0,
                0,
                TrapKind::Memory(MemFault::Misaligned(pc)),
            ));
        }
        if pc >= self.cache.code_limit {
            return Some(self.trap_step(
                index,
                pc,
                0,
                0,
                TrapKind::Memory(MemFault::ExecuteFault(pc)),
            ));
        }
        Some(self.exec_slot(index, pc))
    }

    /// Drive the model until it finishes or `max_steps` is exhausted.
    ///
    /// This is the hot path: the fetch check runs once per basic-block
    /// entry, not once per instruction.
    pub fn run(&mut self, max_steps: u64) -> RefRun {
        'blocks: while self.outcome.is_none() && self.steps < max_steps {
            let pc = self.pc;
            if !pc.is_multiple_of(4) || pc >= self.cache.code_limit {
                // Faulting fetch: the single-step path produces the trap.
                self.step();
                continue;
            }
            let slot = (pc >> 2) as usize;
            let block_len = u64::from(self.cache.block_end[slot] - slot as u32) + 1;
            let n = block_len.min(max_steps - self.steps);
            for k in 0..n {
                let index = self.steps;
                self.steps += 1;
                self.exec_slot(index, pc.wrapping_add((k as u32) * 4));
                if self.outcome.is_some() {
                    continue 'blocks;
                }
            }
        }
        RefRun {
            outcome: self.outcome,
            steps: self.steps,
        }
    }

    /// Execute the pre-decoded op at `pc` (fetch already validated) and
    /// advance architectural state. Mirrors `RefModel::step_inner` exactly.
    #[inline(always)]
    fn exec_slot(&mut self, index: u64, pc: u32) -> RefStep {
        let slot = (pc >> 2) as usize;
        let raw = self.cache.raws[slot];
        let mut ea = 0u32;
        let mut val = 0u32;
        let mut next_pc = pc.wrapping_add(4);
        let effect;

        match self.cache.ops[slot] {
            FastOp::Nop => {
                effect = Effect::None;
            }
            FastOp::Halt => {
                self.outcome = Some(RefOutcome::Completed);
                next_pc = pc;
                effect = Effect::Halt;
            }
            FastOp::Invalid => {
                return self.trap_step(index, pc, raw, 0, TrapKind::UndefinedInstruction);
            }
            FastOp::Load {
                op,
                rd,
                rs1,
                imm,
                size,
            } => {
                let vaddr = self.regs[rs1 as usize].wrapping_add(imm);
                if let Err(f) = check_data_access(vaddr, size, false) {
                    return self.trap_step(index, pc, raw, vaddr, TrapKind::Memory(f));
                }
                ea = vaddr;
                let mut bytes = [0u8; 4];
                let a = vaddr as usize;
                bytes[..size as usize].copy_from_slice(&self.mem[a..a + size as usize]);
                val = extend_load(op, u32::from_le_bytes(bytes));
                effect = self.write_reg(rd, val);
            }
            FastOp::Store {
                rs1,
                rs2,
                imm,
                size,
            } => {
                let vaddr = self.regs[rs1 as usize].wrapping_add(imm);
                if let Err(f) = check_data_access(vaddr, size, true) {
                    return self.trap_step(index, pc, raw, vaddr, TrapKind::Memory(f));
                }
                ea = vaddr;
                let data = self.regs[rs2 as usize];
                let masked = match size {
                    1 => data & 0xFF,
                    2 => data & 0xFFFF,
                    _ => data,
                };
                val = masked;
                let a = vaddr as usize;
                self.mem[a..a + size as usize]
                    .copy_from_slice(&masked.to_le_bytes()[..size as usize]);
                effect = Effect::Store {
                    addr: vaddr,
                    size,
                    value: masked,
                };
            }
            FastOp::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond_holds(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                if taken {
                    next_pc = target;
                }
                effect = Effect::Control {
                    taken,
                    target,
                    link: None,
                };
            }
            FastOp::Jal { rd, target, link } => {
                val = link;
                let wb = self.write_reg(rd, link);
                next_pc = target;
                effect = Effect::Control {
                    taken: true,
                    target,
                    link: match wb {
                        Effect::RegWrite { rd, value } => Some((rd, value)),
                        _ => None,
                    },
                };
            }
            FastOp::Jalr { rd, rs1, imm } => {
                let target = self.regs[rs1 as usize].wrapping_add(imm);
                let link = pc.wrapping_add(4);
                val = link;
                let wb = self.write_reg(rd, link);
                next_pc = target;
                effect = Effect::Control {
                    taken: true,
                    target,
                    link: match wb {
                        Effect::RegWrite { rd, value } => Some((rd, value)),
                        _ => None,
                    },
                };
            }
            FastOp::Alu { op, rd, rs1, rs2 } => {
                val = alu_value(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                effect = self.write_reg(rd, val);
            }
            FastOp::AluImm { op, rd, rs1, imm } => {
                val = alu_value(op, self.regs[rs1 as usize], imm);
                effect = self.write_reg(rd, val);
            }
        }

        self.pc = next_pc;
        RefStep {
            index,
            pc,
            raw,
            ea,
            val,
            next_pc,
            effect,
        }
    }

    #[inline(always)]
    fn write_reg(&mut self, rd: u8, v: u32) -> Effect {
        if rd == 0 {
            Effect::None
        } else {
            self.regs[rd as usize] = v;
            Effect::RegWrite { rd, value: v }
        }
    }
}

/// Flat-memory twin of [`avgi_muarch::mem::Memory::check_data_access`]:
/// identical fault kinds in the identical priority order.
#[inline(always)]
fn check_data_access(addr: u32, size: u32, is_store: bool) -> Result<(), MemFault> {
    if !addr.is_multiple_of(size) {
        return Err(MemFault::Misaligned(addr));
    }
    if u64::from(addr) + u64::from(size) > u64::from(MEM_SIZE) {
        return Err(MemFault::OutOfRange(addr));
    }
    if is_store && addr < DATA_BASE {
        return Err(MemFault::WriteToCode(addr));
    }
    Ok(())
}

/// A model of either tier behind one concrete type, so callers can pick a
/// tier at run time without generics.
pub enum TierModel {
    /// The oracle interpreter.
    Reference(RefModel),
    /// The pre-decoded fast tier.
    Fast(FastModel),
}

impl TierModel {
    /// Build a model of the requested tier from reset state.
    pub fn new(program: &Program, tier: ExecTier) -> Self {
        match tier {
            ExecTier::Reference => TierModel::Reference(RefModel::new(program)),
            ExecTier::Fast => TierModel::Fast(FastModel::new(program)),
        }
    }

    /// Which tier this model runs on.
    pub fn tier(&self) -> ExecTier {
        match self {
            TierModel::Reference(_) => ExecTier::Reference,
            TierModel::Fast(_) => ExecTier::Fast,
        }
    }

    /// Execute one instruction; see [`RefModel::step`].
    pub fn step(&mut self) -> Option<RefStep> {
        match self {
            TierModel::Reference(m) => m.step(),
            TierModel::Fast(m) => m.step(),
        }
    }

    /// Drive the model until it finishes or `max_steps` is exhausted.
    pub fn run(&mut self, max_steps: u64) -> RefRun {
        match self {
            TierModel::Reference(m) => m.run(max_steps),
            TierModel::Fast(m) => m.run(max_steps),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        match self {
            TierModel::Reference(m) => m.pc(),
            TierModel::Fast(m) => m.pc(),
        }
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        match self {
            TierModel::Reference(m) => m.steps(),
            TierModel::Fast(m) => m.steps(),
        }
    }

    /// `Some` once the program halted or trapped; `None` while runnable.
    pub fn outcome(&self) -> Option<RefOutcome> {
        match self {
            TierModel::Reference(m) => m.outcome(),
            TierModel::Fast(m) => m.outcome(),
        }
    }

    /// The program's output window.
    pub fn output(&self) -> Vec<u8> {
        match self {
            TierModel::Reference(m) => m.output(),
            TierModel::Fast(m) => m.output(),
        }
    }
}

fn backend_end(outcome: Option<RefOutcome>) -> Option<BackendEnd> {
    outcome.map(|o| match o {
        RefOutcome::Completed => BackendEnd::Completed,
        RefOutcome::Trap(kind) => BackendEnd::Trap(kind),
    })
}

fn arch_commit(step: RefStep) -> ArchCommit {
    ArchCommit {
        pc: step.pc,
        raw: step.raw,
        ea: step.ea,
        val: step.val,
    }
}

impl ExecBackend for RefModel {
    fn label(&self) -> &'static str {
        "reference"
    }
    fn next_commit(&mut self) -> Option<ArchCommit> {
        self.step().map(arch_commit)
    }
    fn end(&self) -> Option<BackendEnd> {
        backend_end(self.outcome())
    }
    fn output_bytes(&self) -> Vec<u8> {
        self.output()
    }
}

impl ExecBackend for FastModel {
    fn label(&self) -> &'static str {
        "fast"
    }
    fn next_commit(&mut self) -> Option<ArchCommit> {
        self.step().map(arch_commit)
    }
    fn end(&self) -> Option<BackendEnd> {
        backend_end(self.outcome())
    }
    fn output_bytes(&self) -> Vec<u8> {
        self.output()
    }
}

impl ExecBackend for TierModel {
    fn label(&self) -> &'static str {
        self.tier().label()
    }
    fn next_commit(&mut self) -> Option<ArchCommit> {
        self.step().map(arch_commit)
    }
    fn end(&self) -> Option<BackendEnd> {
        backend_end(self.outcome())
    }
    fn output_bytes(&self) -> Vec<u8> {
        self.output()
    }
}

/// Step the two tiers side by side through one program and require the
/// identical [`RefStep`] stream, outcome, step count, and output bytes. The
/// batch path ([`FastModel::run`]) is additionally re-run standalone and
/// must land in the same final state as the stepped execution. Returns the
/// number of steps compared.
///
/// This is the tier-vs-tier leg of the `--xtier` cross-check.
pub fn verify_fast_tier(program: &Program, max_steps: u64) -> Result<u64, String> {
    let budget = if max_steps == 0 {
        DEFAULT_MAX_STEPS
    } else {
        max_steps
    };
    let mut reference = RefModel::new(program);
    let mut fast = FastModel::new(program);
    let mut compared = 0u64;
    while compared < budget {
        match (reference.step(), fast.step()) {
            (Some(r), Some(f)) => {
                if r != f {
                    return Err(format!(
                        "step #{compared} differs:\n  reference: {r}\n  fast:      {f}"
                    ));
                }
                compared += 1;
            }
            (None, None) => break,
            (r, f) => {
                return Err(format!(
                    "stream lengths differ at step #{compared}: reference {r:?}, fast {f:?}"
                ));
            }
        }
    }
    if reference.outcome() != fast.outcome() {
        return Err(format!(
            "outcomes differ after {compared} steps: reference {:?}, fast {:?}",
            reference.outcome(),
            fast.outcome()
        ));
    }
    if reference.output() != fast.output() {
        return Err(format!("output bytes differ after {compared} steps"));
    }
    // The block-threaded batch path must land exactly where stepping did.
    let mut batch = FastModel::new(program);
    let run = batch.run(budget);
    if run.steps != fast.steps() || run.outcome != fast.outcome() || batch.output() != fast.output()
    {
        return Err(format!(
            "batch path disagrees with step path: {} steps / {:?} vs {} steps / {:?}",
            run.steps,
            run.outcome,
            fast.steps(),
            fast.outcome()
        ));
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_isa::asm::Assembler;
    use avgi_isa::reg::{A0, A1, ZERO};

    fn countdown() -> Program {
        let mut a = Assembler::new(0);
        a.li32(A0, 100);
        a.label("loop");
        a.addi(A0, A0, -1);
        a.bne(A0, ZERO, "loop");
        a.halt();
        Program::new("countdown", a.assemble().unwrap(), 0)
    }

    #[test]
    fn fast_tier_matches_reference_on_every_workload() {
        for w in avgi_workloads::all() {
            let compared =
                verify_fast_tier(&w.program, 0).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(compared > 0, "{}: empty execution", w.name);
        }
    }

    #[test]
    fn block_cache_finds_straight_line_runs() {
        let p = countdown();
        let cache = BlockCache::build(&p);
        assert_eq!(cache.slots(), p.code.len());
        assert!(cache.blocks() >= 2, "countdown has a loop and a tail");
    }

    #[test]
    fn run_stops_exactly_at_the_step_budget() {
        let p = countdown();
        let mut m = FastModel::new(&p);
        let run = m.run(7);
        assert_eq!(run.steps, 7);
        assert_eq!(run.outcome, None);
        // Resuming finishes the program with the same totals as one run.
        let total = m.run(u64::MAX).steps;
        let mut fresh = FastModel::new(&p);
        assert_eq!(fresh.run(u64::MAX).steps, total);
        assert_eq!(fresh.outcome(), Some(RefOutcome::Completed));
    }

    #[test]
    fn misaligned_jalr_traps_identically_in_both_tiers() {
        let mut a = Assembler::new(0);
        a.addi(A1, ZERO, 2);
        a.jalr(A0, A1, 0);
        a.halt();
        let p = Program::new("misaligned", a.assemble().unwrap(), 0);
        verify_fast_tier(&p, 0).expect("misaligned fetch traps must agree");
        let mut fast = FastModel::new(&p);
        fast.run(100);
        assert_eq!(
            fast.outcome(),
            Some(RefOutcome::Trap(TrapKind::Memory(MemFault::Misaligned(2))))
        );
    }

    #[test]
    fn undecodable_word_and_runaway_pc_trap_identically() {
        // 0xFFFF_FFFF does not decode; falling off the code end execute-faults.
        for code in [vec![0xFFFF_FFFFu32], vec![0x0000_0000]] {
            let p = Program::new("hostile", code, 0);
            verify_fast_tier(&p, 1_000).expect("hostile programs must agree");
        }
    }

    #[test]
    fn empty_program_matches_memory_zero_fill() {
        let p = Program::new("empty", Vec::new(), 0);
        verify_fast_tier(&p, 10).expect("empty code region must agree");
    }
}
