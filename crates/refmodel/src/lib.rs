//! # avgi-refmodel — the architectural oracle of the AVGI reproduction
//!
//! AVGI's acceleration argument rests on the pipeline's commit trace being a
//! trustworthy architectural ground truth: IMM classification compares a
//! faulty commit stream against a golden one, so a latent pipeline bug
//! (renaming, forwarding, speculation, LQ/SQ ordering) would silently corrupt
//! every reproduced figure. This crate provides the independent oracle that
//! keeps the substrate honest:
//!
//! * [`model::RefModel`] — a single-step, in-order, untimed interpreter for
//!   every AvgIsa opcode, including the deliberately-undefined encoding
//!   paths, with the same memory map and trap model as the pipeline but
//!   independently re-implemented semantics;
//! * [`fast::FastModel`] — the production fault-free tier: the same
//!   architecture pre-decoded once into a basic-block threaded
//!   [`fast::BlockCache`] and dispatched over flat memory, bit-identical to
//!   the oracle but several times faster (pick a tier with
//!   [`fast::ExecTier`]);
//! * [`lockstep`] — a differential checker that advances the reference model
//!   one committed instruction at a time against a `muarch` commit trace and
//!   reports the first divergence with full architectural context;
//! * [`fuzz`] — a deterministic coverage-directed program fuzzer that hammers
//!   the pipeline with valid-and-invalid instruction mixes and shrinks any
//!   divergence to a minimal reproducer.
//!
//! Both tiers implement `muarch`'s
//! [`ExecBackend`](avgi_muarch::backend::ExecBackend) trait, the commit-
//! stream boundary the `--xtier` cross-check compares tiers across.
//!
//! The crate is `std`-only and uses only workspace-local dependencies, like
//! the rest of the repository.

pub mod fast;
pub mod fuzz;
pub mod lockstep;
pub mod model;

pub use fast::{verify_fast_tier, BlockCache, ExecTier, FastModel, TierModel};
pub use fuzz::{run_fuzz, Coverage, FuzzConfig, FuzzFailure, FuzzReport};
pub use lockstep::{
    reference_run, reference_run_tier, verify_golden, verify_golden_tier, verify_report,
    verify_report_tier, verify_trace_prefix, Divergence, Lockstep, LockstepReport,
};
pub use model::{Effect, RefModel, RefOutcome, RefRun, RefStep, DEFAULT_MAX_STEPS};

/// FNV-1a 64-bit hash, used to pin workload output bytes in regression tests
/// without embedding the full expected buffers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
