//! Lockstep differential checking of a pipeline commit trace against the
//! reference model.
//!
//! The protocol: every time the pipeline commits an instruction, feed the
//! [`CommitRecord`] to [`Lockstep::on_commit`]. The checker advances the
//! reference model exactly one instruction and compares the architecturally
//! defined fields (`pc`, `raw`, `ea`, `val`) — the `cycle` field is timing
//! and is deliberately ignored. When the run ends, [`Lockstep::finish`]
//! checks that the *outcome* agrees too: a completed run must have committed
//! precisely the reference instruction stream including the halt, a trapping
//! run must trap on the same instruction with the same trap kind, and a
//! watchdog'd run must leave the reference model still unfinished.
//!
//! The first disagreement is reported as a [`Divergence`] carrying the full
//! architectural context: commit index, PC, disassembled opcode, expected
//! effect (register writeback / memory store / control transfer) and the
//! observed commit record.

use crate::fast::{ExecTier, TierModel};
use crate::model::{RefOutcome, RefRun, RefStep, DEFAULT_MAX_STEPS};
use avgi_isa::instr::disassemble;
use avgi_muarch::{CommitRecord, GoldenRun, Program, RunOutcome, RunReport};

/// First point of disagreement between the pipeline and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A committed instruction disagrees on an architectural field.
    Commit {
        /// Zero-based commit index of the mismatch.
        index: u64,
        /// Which field disagreed first (`"pc"`, `"raw"`, `"ea"` or `"val"`).
        field: &'static str,
        /// What the reference model executed at this index.
        expected: RefStep,
        /// What the pipeline committed.
        observed: CommitRecord,
    },
    /// The pipeline committed more instructions than the reference execution
    /// contains (the model already halted or trapped).
    ModelFinished {
        index: u64,
        outcome: RefOutcome,
        observed: CommitRecord,
    },
    /// The runs ended differently (e.g. the pipeline completed but the model
    /// trapped, or trap kinds differ, or the model still had instructions
    /// left when the pipeline claimed completion).
    Outcome {
        committed: u64,
        model: Option<RefOutcome>,
        sim: RunOutcome,
    },
    /// Final output bytes differ even though the commit streams matched.
    Output {
        offset: usize,
        expected: u8,
        observed: u8,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Commit {
                index,
                field,
                expected,
                observed,
            } => write!(
                f,
                "commit #{index} diverges on `{field}`:\n  reference: {expected}\n  pipeline:  \
                 pc={:#010x} raw={:#010x} [{}] ea={:#010x} val={:#010x} (cycle {})",
                observed.pc,
                observed.raw,
                disassemble(observed.raw),
                observed.ea,
                observed.val,
                observed.cycle,
            ),
            Divergence::ModelFinished {
                index,
                outcome,
                observed,
            } => write!(
                f,
                "pipeline committed instruction #{index} (pc={:#010x} raw={:#010x} [{}]) but the \
                 reference execution already ended with {outcome:?}",
                observed.pc,
                observed.raw,
                disassemble(observed.raw),
            ),
            Divergence::Outcome {
                committed,
                model,
                sim,
            } => write!(
                f,
                "outcome mismatch after {committed} commits: reference model {model:?}, \
                 pipeline {sim:?}"
            ),
            Divergence::Output {
                offset,
                expected,
                observed,
            } => write!(
                f,
                "output byte {offset} differs: reference {expected:#04x}, pipeline {observed:#04x}"
            ),
        }
    }
}

/// Summary of a lockstep run that found no divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockstepReport {
    /// Instructions checked in lockstep.
    pub committed: u64,
    /// Reference outcome (`None` for watchdog'd runs whose reference
    /// execution is still in flight).
    pub outcome: Option<RefOutcome>,
}

/// Incremental lockstep checker; see the module docs for the protocol.
pub struct Lockstep {
    model: TierModel,
    committed: u64,
}

impl Lockstep {
    /// Start a lockstep check for one program, from reset state, on the
    /// oracle ([`ExecTier::Reference`]) tier.
    pub fn new(program: &Program) -> Self {
        Lockstep::with_tier(program, ExecTier::Reference)
    }

    /// Start a lockstep check on an explicit execution tier. The fast tier
    /// yields an identical commit stream at a fraction of the cost; the
    /// reference tier is the maximally independent oracle.
    pub fn with_tier(program: &Program, tier: ExecTier) -> Self {
        Lockstep {
            model: TierModel::new(program, tier),
            committed: 0,
        }
    }

    /// Commits checked so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The underlying model (e.g. to inspect the PC on failure).
    pub fn model(&self) -> &TierModel {
        &self.model
    }

    /// Check one pipeline commit against the next reference instruction.
    pub fn on_commit(&mut self, rec: &CommitRecord) -> Result<RefStep, Divergence> {
        let Some(step) = self.model.step() else {
            return Err(Divergence::ModelFinished {
                index: self.committed,
                outcome: self.model.outcome().expect("finished model has outcome"),
                observed: *rec,
            });
        };
        self.committed += 1;
        for (field, expected, observed) in [
            ("pc", step.pc, rec.pc),
            ("raw", step.raw, rec.raw),
            ("ea", step.ea, rec.ea),
            ("val", step.val, rec.val),
        ] {
            if expected != observed {
                return Err(Divergence::Commit {
                    index: step.index,
                    field,
                    expected: step,
                    observed: *rec,
                });
            }
        }
        Ok(step)
    }

    /// Close the check once the pipeline run ended with `sim_outcome`.
    ///
    /// `sim_output` is the output window the pipeline read back after
    /// flushing its caches (pass `None` when the run did not complete).
    pub fn finish(
        self,
        sim_outcome: RunOutcome,
        sim_output: Option<&[u8]>,
    ) -> Result<LockstepReport, Divergence> {
        let model_outcome = self.model.outcome();
        let mismatch = || Divergence::Outcome {
            committed: self.committed,
            model: model_outcome,
            sim: sim_outcome,
        };
        match sim_outcome {
            RunOutcome::Completed => {
                if model_outcome != Some(RefOutcome::Completed) {
                    return Err(mismatch());
                }
                if let Some(observed) = sim_output {
                    let expected = self.model.output();
                    if expected.len() != observed.len() {
                        return Err(mismatch());
                    }
                    for (offset, (e, o)) in expected.iter().zip(observed).enumerate() {
                        if e != o {
                            return Err(Divergence::Output {
                                offset,
                                expected: *e,
                                observed: *o,
                            });
                        }
                    }
                }
            }
            RunOutcome::Trap(kind) => {
                if model_outcome != Some(RefOutcome::Trap(kind)) {
                    return Err(mismatch());
                }
            }
            // The pipeline checks commit before the watchdog each cycle, so a
            // watchdog'd (or wall-clock-expired) run contains no terminal
            // commit: the reference execution must still be in flight.
            RunOutcome::Watchdog | RunOutcome::WallClockExpired => {
                if model_outcome.is_some() {
                    return Err(mismatch());
                }
            }
            // Fault-injection outcomes have no reference-model meaning.
            _ => return Err(mismatch()),
        }
        Ok(LockstepReport {
            committed: self.committed,
            outcome: model_outcome,
        })
    }
}

/// Lockstep-verify a captured golden run: full trace equality, matching
/// completion, and matching output bytes — against the oracle tier.
pub fn verify_golden(program: &Program, golden: &GoldenRun) -> Result<LockstepReport, Divergence> {
    verify_golden_tier(program, golden, ExecTier::Reference)
}

/// [`verify_golden`] on an explicit execution tier. Campaign-time golden
/// verification runs on [`ExecTier::Fast`]; the cross-checks that anchor the
/// fast tier itself use [`ExecTier::Reference`].
pub fn verify_golden_tier(
    program: &Program,
    golden: &GoldenRun,
    tier: ExecTier,
) -> Result<LockstepReport, Divergence> {
    let mut ls = Lockstep::with_tier(program, tier);
    for rec in &golden.trace {
        ls.on_commit(rec)?;
    }
    ls.finish(RunOutcome::Completed, Some(&golden.output))
}

/// Lockstep-verify a fault-free [`RunReport`] that was collected with
/// `record_trace` enabled.
///
/// Supports the three outcomes a fault-free run can produce: `Completed`
/// (trace + output must match), `Trap` (trace must match and end in the same
/// trap) and `Watchdog`/`WallClockExpired` (trace must be a strict prefix of
/// the reference execution).
///
/// # Panics
///
/// Panics if the report has no recorded trace — that is a harness bug, not a
/// divergence.
pub fn verify_report(program: &Program, report: &RunReport) -> Result<LockstepReport, Divergence> {
    verify_report_tier(program, report, ExecTier::Reference)
}

/// [`verify_report`] on an explicit execution tier (same panics).
pub fn verify_report_tier(
    program: &Program,
    report: &RunReport,
    tier: ExecTier,
) -> Result<LockstepReport, Divergence> {
    let trace = report
        .trace
        .as_ref()
        .expect("verify_report requires RunControl::record_trace");
    let mut ls = Lockstep::with_tier(program, tier);
    for rec in trace {
        ls.on_commit(rec)?;
    }
    ls.finish(report.outcome, report.output.as_deref())
}

/// Lockstep-verify the first `upto` records of a commit trace — the
/// fault-free prefix check of the batched-engine cross-check: everything an
/// injected run committed *before* its first deviation must still be the
/// architecturally correct instruction stream. Returns the number of
/// commits checked.
pub fn verify_trace_prefix(
    program: &Program,
    trace: &[CommitRecord],
    upto: usize,
) -> Result<u64, Divergence> {
    let mut ls = Lockstep::new(program);
    for rec in trace.iter().take(upto) {
        ls.on_commit(rec)?;
    }
    Ok(ls.committed())
}

/// Run the reference model alone and return its outcome (used to sanity-check
/// a program before fuzzing it, and by the workload startup validation).
pub fn reference_run(program: &Program, max_steps: u64) -> (crate::model::RefModel, RefRun) {
    let mut model = crate::model::RefModel::new(program);
    let run = model.run(if max_steps == 0 {
        DEFAULT_MAX_STEPS
    } else {
        max_steps
    });
    (model, run)
}

/// [`reference_run`] on an explicit execution tier.
pub fn reference_run_tier(
    program: &Program,
    tier: ExecTier,
    max_steps: u64,
) -> (TierModel, RefRun) {
    let mut model = TierModel::new(program, tier);
    let run = model.run(if max_steps == 0 {
        DEFAULT_MAX_STEPS
    } else {
        max_steps
    });
    (model, run)
}
