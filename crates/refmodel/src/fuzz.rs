//! Deterministic, coverage-directed differential fuzzer.
//!
//! Generates random AvgIsa programs — valid and invalid instruction mixes —
//! runs each on the out-of-order pipeline with trace recording, and lockstep
//! checks the committed stream against the reference model
//! ([`verify_report`]). The generator is seeded with the in-repo
//! [`avgi_rng::Rng`], so a `(seed, index)` pair fully reproduces a program.
//!
//! ## Bias knobs (what the generator stresses, and why)
//!
//! * **Branches and jumps** (~20% of body slots): forward skips of 1–4
//!   instructions train/mispredict the branch predictor and exercise squash
//!   paths; ~30% of programs wrap their body in a counted backward loop, and
//!   `jalr` uses absolute byte targets (the one control op that is *not*
//!   PC-relative word-scaled).
//! * **Load/store aliasing** (~30%): all regular accesses land in two 64-byte
//!   windows (scratch and output), so stores and loads of mixed sizes overlap
//!   constantly — exact-match store-to-load forwarding, partial-overlap
//!   blocking, and unresolved-store stalls all fire. A small fraction of
//!   accesses is deliberately misaligned or uses a junk base register to
//!   exercise the memory-trap commit path.
//! * **Unknown encodings** (~4%): undefined opcode bytes, undefined register
//!   fields (24..32) and non-zero pad bits. Half of these are placed in the
//!   shadow of an always-taken branch: the pipeline fetches and decodes them
//!   on the wrong path and must squash them without committing — the other
//!   half commits and must trap exactly like the reference model.
//!
//! Coverage is measured on the *committed* trace: which opcodes committed,
//! and which ordered pairs of instruction formats committed back-to-back.
//! Each program's generator sees a snapshot of the coverage so far and steers
//! a fraction of its slots toward still-uncovered opcodes.
//!
//! Failing programs are shrunk with a delta-debugging pass (chunk deletion,
//! then NOP substitution) to a minimal reproducer; see [`shrink_with`].

use crate::fast::ExecTier;
use crate::lockstep::{verify_report_tier, Divergence, LockstepReport};
use avgi_isa::encoding::{pack_i, pack_n, pack_r};
use avgi_isa::opcode::{Format, Opcode};
use avgi_isa::reg::Reg;
use avgi_isa::Instr;
use avgi_muarch::{CommitRecord, MuarchConfig, Program, RunControl, RunOutcome, Sim};
use avgi_rng::Rng;

/// Size in bytes of the two data windows (scratch at `DATA_BASE`, output at
/// `OUTPUT_BASE`) the generator aims loads and stores into.
pub const WINDOW_BYTES: u32 = 64;

/// Base register pinned to `OUTPUT_BASE` by the generated prologue.
const OUT_BASE_REG: u8 = 18;
/// Base register pinned to `DATA_BASE` by the generated prologue.
const DATA_BASE_REG: u8 = 19;
/// Loop counter register (loop-wrapped programs only).
const LOOP_REG: u8 = 20;

/// Fuzzing campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of programs to generate and check.
    pub programs: usize,
    /// Master seed; program `i` uses a seed derived from `(seed, i)`.
    pub seed: u64,
    /// Maximum body length in instructions (prologue/epilogue excluded).
    pub max_instrs: usize,
    /// Pipeline watchdog per program (cycles).
    pub max_cycles: u64,
    /// Pipeline configuration to fuzz against.
    pub config: MuarchConfig,
    /// Shrink failing programs to minimal reproducers.
    pub shrink: bool,
    /// Worker threads; `0` = all available cores. Results are deterministic
    /// regardless of thread count.
    pub threads: usize,
}

impl FuzzConfig {
    /// Defaults matched to the CI smoke budget; raise `programs` for soak.
    pub fn new(programs: usize, seed: u64) -> Self {
        FuzzConfig {
            programs,
            seed,
            max_instrs: 96,
            max_cycles: 2_000_000,
            config: MuarchConfig::big(),
            shrink: true,
            threads: 0,
        }
    }
}

/// Number of distinct instruction formats.
const NUM_FORMATS: usize = 5;

fn format_index(f: Format) -> usize {
    match f {
        Format::R => 0,
        Format::I => 1,
        Format::S => 2,
        Format::J => 3,
        Format::N => 4,
    }
}

const FORMAT_NAMES: [&str; NUM_FORMATS] = ["R", "I", "S", "J", "N"];

/// Commit-stream coverage accumulated over a fuzzing campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Commit counts indexed by opcode bits.
    opcode_commits: [u64; 256],
    /// Commit counts of ordered (previous format, next format) pairs.
    pair_commits: [[u64; NUM_FORMATS]; NUM_FORMATS],
    /// Committed records whose raw word does not decode (fetch faults and
    /// committed unknown encodings).
    pub invalid_commits: u64,
    /// Programs that ran to `Completed`.
    pub completed: u64,
    /// Programs that ended in a trap.
    pub trapped: u64,
    /// Programs stopped by the cycle watchdog (should stay 0: generated
    /// control flow always terminates).
    pub watchdogged: u64,
}

impl Default for Coverage {
    fn default() -> Self {
        Self::new()
    }
}

impl Coverage {
    pub fn new() -> Self {
        Coverage {
            opcode_commits: [0; 256],
            pair_commits: [[0; NUM_FORMATS]; NUM_FORMATS],
            invalid_commits: 0,
            completed: 0,
            trapped: 0,
            watchdogged: 0,
        }
    }

    /// Account one committed trace.
    pub fn record_trace(&mut self, trace: &[CommitRecord]) {
        let mut prev: Option<usize> = None;
        for rec in trace {
            match avgi_isa::decode(rec.raw) {
                Ok(i) => {
                    self.opcode_commits[i.op.to_bits() as usize] += 1;
                    let f = format_index(i.op.format());
                    if let Some(p) = prev {
                        self.pair_commits[p][f] += 1;
                    }
                    prev = Some(f);
                }
                Err(_) => {
                    self.invalid_commits += 1;
                    prev = None;
                }
            }
        }
    }

    /// Fold another campaign's coverage into this one (multi-seed corpora).
    pub fn merge(&mut self, other: &Coverage) {
        for (a, b) in self.opcode_commits.iter_mut().zip(&other.opcode_commits) {
            *a += b;
        }
        for (ra, rb) in self.pair_commits.iter_mut().zip(&other.pair_commits) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
        self.invalid_commits += other.invalid_commits;
        self.completed += other.completed;
        self.trapped += other.trapped;
        self.watchdogged += other.watchdogged;
    }

    fn record_outcome(&mut self, outcome: RunOutcome) {
        match outcome {
            RunOutcome::Completed => self.completed += 1,
            RunOutcome::Trap(_) => self.trapped += 1,
            _ => self.watchdogged += 1,
        }
    }

    /// Commits observed for one opcode.
    pub fn commits_of(&self, op: Opcode) -> u64 {
        self.opcode_commits[op.to_bits() as usize]
    }

    /// Defined opcodes that have committed at least once, out of all defined.
    pub fn opcode_coverage(&self) -> (usize, usize) {
        let all = Opcode::all();
        let covered = all.iter().filter(|op| self.commits_of(**op) > 0).count();
        (covered, all.len())
    }

    /// Ordered format pairs observed back-to-back, out of all 25.
    pub fn format_pair_coverage(&self) -> (usize, usize) {
        let covered = self
            .pair_commits
            .iter()
            .flatten()
            .filter(|c| **c > 0)
            .count();
        (covered, NUM_FORMATS * NUM_FORMATS)
    }

    /// Defined opcodes that have never committed.
    pub fn uncovered_opcodes(&self) -> Vec<Opcode> {
        Opcode::all()
            .iter()
            .copied()
            .filter(|op| self.commits_of(*op) == 0)
            .collect()
    }

    /// Human-readable coverage table (printed by the `fuzz_diff` bin and the
    /// corpus test).
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let (oc, ot) = self.opcode_coverage();
        let (pc, pt) = self.format_pair_coverage();
        let _ = writeln!(s, "opcode coverage: {oc}/{ot}");
        for chunk in Opcode::all().chunks(6) {
            let mut line = String::from(" ");
            for op in chunk {
                let _ = write!(line, " {:>5}={:<8}", op.mnemonic(), self.commits_of(*op));
            }
            let _ = writeln!(s, "{}", line.trim_end());
        }
        let _ = writeln!(s, "format-pair coverage (prev row -> next col): {pc}/{pt}");
        let _ = writeln!(
            s,
            "        {:>9} {:>9} {:>9} {:>9} {:>9}",
            "R", "I", "S", "J", "N"
        );
        for (p, row) in self.pair_commits.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {} {:>9} {:>9} {:>9} {:>9} {:>9}",
                FORMAT_NAMES[p], row[0], row[1], row[2], row[3], row[4]
            );
        }
        let _ = writeln!(
            s,
            "programs: completed={} trapped={} watchdogged={}; invalid-raw commits={}",
            self.completed, self.trapped, self.watchdogged, self.invalid_commits
        );
        s
    }
}

/// A divergent program, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the program within the campaign.
    pub index: usize,
    /// Derived per-program seed (reproduce with `gen_program`).
    pub seed: u64,
    /// The full generated code words.
    pub original: Vec<u32>,
    /// Minimized code words that still diverge.
    pub minimized: Vec<u32>,
    /// Divergence of the minimized program.
    pub divergence: Divergence,
}

/// Result of [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub coverage: Coverage,
    pub failures: Vec<FuzzFailure>,
    pub programs: usize,
}

/// Derive the generator seed for program `index` of a campaign.
pub fn program_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn reg(i: u8) -> Reg {
    Reg::new(i).expect("generator register index in range")
}

fn word(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: i32) -> u32 {
    Instr::new(op, reg(rd), reg(rs1), reg(rs2), imm).raw
}

/// Redirect a destination away from the generator's reserved base/loop regs.
fn remap_rd(rd: u8) -> u8 {
    if (OUT_BASE_REG..=LOOP_REG).contains(&rd) {
        rd - 10
    } else {
        rd
    }
}

const R_ALU: [Opcode; 14] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Mul,
    Opcode::Mulh,
    Opcode::Divu,
    Opcode::Remu,
];
const I_ALU: [Opcode; 9] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
    Opcode::Lui,
];
const LOADS: [Opcode; 5] = [Opcode::Lw, Opcode::Lb, Opcode::Lbu, Opcode::Lh, Opcode::Lhu];
const STORES: [Opcode; 3] = [Opcode::Sw, Opcode::Sb, Opcode::Sh];
const BRANCHES: [Opcode; 6] = [
    Opcode::Beq,
    Opcode::Bne,
    Opcode::Blt,
    Opcode::Bge,
    Opcode::Bltu,
    Opcode::Bgeu,
];

fn access_bytes(op: Opcode) -> u32 {
    match op {
        Opcode::Lw | Opcode::Sw => 4,
        Opcode::Lh | Opcode::Lhu | Opcode::Sh => 2,
        _ => 1,
    }
}

struct BodyCtx {
    /// Code-word index of body slot 0 (prologue length).
    body_base: usize,
    /// Body length in words.
    body_n: usize,
    /// Forward skips must not jump past the loop's decrement instruction.
    in_loop: bool,
}

impl BodyCtx {
    /// Largest forward skip allowed from body slot `i` (0 = none allowed).
    fn max_skip(&self, i: usize) -> usize {
        if self.in_loop {
            // Landing slot i+1+k may be at most body_n (the loop decrement),
            // otherwise a skip could hop over the decrement onto the backward
            // branch and never terminate.
            (self.body_n - i).saturating_sub(1).min(4)
        } else {
            // The epilogue's 4-NOP landing pad absorbs any skip of <= 4.
            4
        }
    }
}

fn random_reg(rng: &mut Rng) -> u8 {
    rng.gen_range_u64(u64::from(avgi_isa::NUM_ARCH_REGS)) as u8
}

fn gen_mem_access(rng: &mut Rng, op: Opcode) -> u32 {
    let size = access_bytes(op);
    let base = if rng.gen_bool(0.02) {
        random_reg(rng) // junk base: usually traps, sometimes aliases code
    } else if rng.gen_bool(0.5) {
        OUT_BASE_REG
    } else {
        DATA_BASE_REG
    };
    let mut offset = (rng.gen_range_u64(u64::from(WINDOW_BYTES / size)) as u32) * size;
    if size > 1 && rng.gen_bool(0.03) {
        offset += 1 + rng.gen_range_u64(u64::from(size - 1)) as u32; // misaligned -> trap
    }
    if op.is_store() {
        word(op, 0, base, random_reg(rng), offset as i32)
    } else {
        word(op, remap_rd(random_reg(rng)), base, 0, offset as i32)
    }
}

/// Generate one valid word for `op` at body slot `i`, or `None` if `op`
/// cannot be placed here (e.g. a branch with no room to land).
fn synth_for(rng: &mut Rng, op: Opcode, ctx: &BodyCtx, i: usize) -> Option<u32> {
    Some(match op.format() {
        Format::N => pack_n(Opcode::Nop.to_bits()),
        Format::R => word(
            op,
            remap_rd(random_reg(rng)),
            random_reg(rng),
            random_reg(rng),
            0,
        ),
        Format::I if op.is_load() => gen_mem_access(rng, op),
        Format::S if op.is_store() => gen_mem_access(rng, op),
        Format::S => {
            let k = ctx.max_skip(i);
            if k == 0 {
                return None;
            }
            let skip = 1 + rng.gen_range_usize(k);
            word(op, 0, random_reg(rng), random_reg(rng), skip as i32 + 1)
        }
        Format::J => {
            let k = ctx.max_skip(i);
            if k == 0 {
                return None;
            }
            let skip = 1 + rng.gen_range_usize(k);
            word(op, remap_rd(random_reg(rng)), 0, 0, skip as i32 + 1)
        }
        Format::I if op == Opcode::Jalr => {
            let k = ctx.max_skip(i);
            if k == 0 {
                return None;
            }
            let skip = 1 + rng.gen_range_usize(k);
            let target_word = ctx.body_base + i + 1 + skip;
            word(
                op,
                remap_rd(random_reg(rng)),
                0,
                0,
                (target_word * 4) as i32,
            )
        }
        Format::I => word(
            op,
            remap_rd(random_reg(rng)),
            random_reg(rng),
            0,
            rng.gen_range_i32(-2048, 2048),
        ),
    })
}

/// One raw word that does not decode: undefined opcode byte, undefined
/// register field, or non-zero pad bits.
fn gen_invalid_word(rng: &mut Rng) -> u32 {
    match rng.gen_range_u64(4) {
        0 => {
            let b = loop {
                let b = rng.gen_range_u64(256) as u8;
                if Opcode::from_bits(b).is_none() {
                    break b;
                }
            };
            (u32::from(b) << 24) | (rng.next_u32() & 0x00FF_FFFF)
        }
        1 => pack_i(
            Opcode::Addi.to_bits(),
            24 + rng.gen_range_u64(8) as u8, // undefined register encoding
            random_reg(rng),
            rng.gen_range_i32(0, 64),
        ),
        2 => {
            let pad = 1 + rng.next_u32() % 0x1FF; // non-zero R-format pad9
            pack_r(
                Opcode::Add.to_bits(),
                random_reg(rng),
                random_reg(rng),
                random_reg(rng),
            ) | pad
        }
        _ => pack_n(Opcode::Nop.to_bits()) | (1 + rng.next_u32() % 0x00FF_FFFF),
    }
}

/// Generate a complete program (prologue + body + landing pad + halt) for one
/// fuzz iteration. `coverage` is a snapshot used to steer some slots toward
/// opcodes that have not committed yet; pass a fresh [`Coverage`] for an
/// unbiased program.
pub fn gen_program(rng: &mut Rng, coverage: &Coverage, max_instrs: usize) -> Vec<u32> {
    let body_n = 1 + rng.gen_range_usize(max_instrs.max(1));
    let in_loop = body_n >= 4 && rng.gen_bool(0.3);
    let uncovered = coverage.uncovered_opcodes();

    let mut code: Vec<u32> = Vec::with_capacity(body_n + 12);
    // OUTPUT_BASE = 2 << 18, DATA_BASE = 1 << 18; `lui` shifts its imm by 18.
    code.push(word(Opcode::Lui, OUT_BASE_REG, 0, 0, 2));
    code.push(word(Opcode::Lui, DATA_BASE_REG, 0, 0, 1));
    if in_loop {
        let iters = 2 + rng.gen_range_i32(0, 3);
        code.push(word(Opcode::Addi, LOOP_REG, 0, 0, iters));
    }
    let ctx = BodyCtx {
        body_base: code.len(),
        body_n,
        in_loop,
    };

    let mut body: Vec<u32> = Vec::with_capacity(body_n + 2);
    while body.len() < body_n {
        let i = body.len();
        let remaining = body_n - i;

        if !uncovered.is_empty() && rng.gen_bool(0.15) {
            let op = *rng.choose(&uncovered);
            if let Some(w) = synth_for(rng, op, &ctx, i) {
                body.push(w);
                continue;
            }
        }

        match rng.gen_range_u64(100) {
            0..=27 => {
                let op = *rng.choose(&R_ALU);
                body.push(synth_for(rng, op, &ctx, i).expect("R-format always placeable"));
            }
            28..=46 => {
                let op = *rng.choose(&I_ALU);
                body.push(synth_for(rng, op, &ctx, i).expect("I-format ALU always placeable"));
            }
            47..=49 => body.push(pack_n(Opcode::Nop.to_bits())),
            50..=63 => {
                let op = *rng.choose(&LOADS);
                body.push(gen_mem_access(rng, op));
            }
            64..=77 => {
                let op = *rng.choose(&STORES);
                body.push(gen_mem_access(rng, op));
            }
            78..=89 => {
                let op = *rng.choose(&BRANCHES);
                match synth_for(rng, op, &ctx, i) {
                    Some(w) => body.push(w),
                    None => body.push(pack_n(Opcode::Nop.to_bits())),
                }
            }
            90..=93 => match synth_for(rng, Opcode::Jal, &ctx, i) {
                Some(w) => body.push(w),
                None => body.push(pack_n(Opcode::Nop.to_bits())),
            },
            94..=95 => match synth_for(rng, Opcode::Jalr, &ctx, i) {
                Some(w) => body.push(w),
                None => body.push(pack_n(Opcode::Nop.to_bits())),
            },
            _ => {
                // Invalid encoding; half the time hide it behind an
                // always-taken branch so it is fetched but must never commit.
                if remaining >= 2 && rng.gen_bool(0.5) {
                    body.push(word(Opcode::Beq, 0, 0, 0, 2));
                    body.push(gen_invalid_word(rng));
                } else {
                    body.push(gen_invalid_word(rng));
                }
            }
        }
    }
    debug_assert_eq!(body.len(), body_n);
    code.extend_from_slice(&body);

    if in_loop {
        code.push(word(Opcode::Addi, LOOP_REG, LOOP_REG, 0, -1));
        // Branch back to body slot 0: imm is in instruction words.
        let back = ctx.body_base as i32 - code.len() as i32;
        code.push(word(Opcode::Bne, 0, LOOP_REG, 0, back));
    }
    // Landing pad for forward skips of up to 4, then halt.
    for _ in 0..4 {
        code.push(pack_n(Opcode::Nop.to_bits()));
    }
    code.push(pack_n(Opcode::Halt.to_bits()));
    code
}

/// Run one generated program on the pipeline and lockstep-check it.
pub fn run_one(
    code: &[u32],
    config: &MuarchConfig,
    max_cycles: u64,
) -> (
    RunOutcome,
    Option<Vec<CommitRecord>>,
    Result<LockstepReport, Divergence>,
) {
    let program = Program::new("fuzz", code.to_vec(), WINDOW_BYTES);
    let mut sim = Sim::new(&program, config.clone());
    let ctl = RunControl {
        max_cycles,
        record_trace: true,
        ..RunControl::default()
    };
    let report = sim.run(&ctl);
    // The reference side of the differential runs on the fast tier: the
    // block-cache decode and trap paths get hammered by the same hostile
    // corpus the pipeline does (the tiers themselves are pinned equal by
    // `verify_fast_tier` and the `--xtier` cross-check).
    let verdict = verify_report_tier(&program, &report, ExecTier::Fast);
    (report.outcome, report.trace, verdict)
}

/// Delta-debugging shrinker: repeatedly delete chunks (halving the chunk
/// size), then replace surviving words with NOPs, keeping every candidate for
/// which `still_fails` holds. Bounded by an attempt budget so pathological
/// predicates terminate.
pub fn shrink_with(code: &[u32], mut still_fails: impl FnMut(&[u32]) -> bool) -> Vec<u32> {
    const MAX_ATTEMPTS: usize = 768;
    let mut best = code.to_vec();
    let mut attempts = 0usize;

    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < best.len() && attempts < MAX_ATTEMPTS {
            let end = (i + chunk).min(best.len());
            let mut cand = best.clone();
            cand.drain(i..end);
            attempts += 1;
            if !cand.is_empty() && still_fails(&cand) {
                best = cand;
                progressed = true; // retry the same position
            } else {
                i += chunk;
            }
        }
        if attempts >= MAX_ATTEMPTS || (chunk == 1 && !progressed) {
            break;
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        }
    }

    let nop = pack_n(Opcode::Nop.to_bits());
    for i in 0..best.len() {
        if attempts >= MAX_ATTEMPTS || best[i] == nop {
            continue;
        }
        let mut cand = best.clone();
        cand[i] = nop;
        attempts += 1;
        if still_fails(&cand) {
            best = cand;
        }
    }
    best
}

fn shrink_failure(code: &[u32], config: &MuarchConfig, max_cycles: u64) -> (Vec<u32>, Divergence) {
    let minimized = shrink_with(code, |cand| run_one(cand, config, max_cycles).2.is_err());
    let divergence = run_one(&minimized, config, max_cycles)
        .2
        .expect_err("shrinker preserves failure");
    (minimized, divergence)
}

/// Run a full fuzzing campaign.
///
/// Programs are generated and checked in chunks; within a chunk the coverage
/// snapshot used for steering is frozen, so results are bit-identical for any
/// `threads` setting.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    const CHUNK: usize = 256;

    let mut coverage = Coverage::new();
    let mut failures = Vec::new();
    let mut next = 0usize;
    while next < cfg.programs {
        let count = CHUNK.min(cfg.programs - next);
        let frozen = coverage.clone();
        let frozen_ref = &frozen;
        // (index, code, outcome, trace, divergence) per program, index-sorted.
        type ProgramResult = (
            usize,
            Vec<u32>,
            RunOutcome,
            Option<Vec<CommitRecord>>,
            Option<Divergence>,
        );
        let results: Vec<ProgramResult> = std::thread::scope(|s| {
            let mut joins = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = next + count * t / threads;
                let hi = next + count * (t + 1) / threads;
                let cfg = &*cfg;
                joins.push(s.spawn(move || {
                    let mut out = Vec::with_capacity(hi - lo);
                    for idx in lo..hi {
                        let mut rng = Rng::seed_from_u64(program_seed(cfg.seed, idx));
                        let code = gen_program(&mut rng, frozen_ref, cfg.max_instrs);
                        let (outcome, trace, verdict) = run_one(&code, &cfg.config, cfg.max_cycles);
                        out.push((idx, code, outcome, trace, verdict.err()));
                    }
                    out
                }));
            }
            joins
                .into_iter()
                .flat_map(|j| j.join().expect("fuzz worker panicked"))
                .collect()
        });
        for (idx, code, outcome, trace, err) in results {
            coverage.record_outcome(outcome);
            if let Some(trace) = &trace {
                coverage.record_trace(trace);
            }
            if let Some(divergence) = err {
                let (minimized, divergence) = if cfg.shrink {
                    shrink_failure(&code, &cfg.config, cfg.max_cycles)
                } else {
                    (code.clone(), divergence)
                };
                failures.push(FuzzFailure {
                    index: idx,
                    seed: program_seed(cfg.seed, idx),
                    original: code,
                    minimized,
                    divergence,
                });
            }
        }
        next += count;
    }
    FuzzReport {
        coverage,
        failures,
        programs: cfg.programs,
    }
}
