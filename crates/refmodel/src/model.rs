//! The single-step architectural reference model.
//!
//! [`RefModel`] executes AvgIsa programs one instruction at a time with *no*
//! microarchitecture: no pipeline, no caches, no speculation. It is an
//! independent re-implementation of the ISA semantics — it deliberately does
//! **not** call into `avgi_muarch::exec`, so a bug in the pipeline's ALU or
//! branch unit cannot hide by being mirrored here.
//!
//! Every step yields a [`RefStep`] whose `(pc, raw, ea, val)` fields are
//! defined to match the corresponding fields of the pipeline's
//! [`CommitRecord`](avgi_muarch::CommitRecord) for the same committed
//! instruction (the `cycle` field of a commit record is timing, not
//! architecture, and has no reference-model counterpart):
//!
//! * `pc`  — address of the instruction, or of the faulting fetch;
//! * `raw` — the fetched instruction word (`0` when the fetch itself faults);
//! * `ea`  — effective byte address for loads and stores (including the ones
//!   that trap with a memory fault), `0` otherwise;
//! * `val` — the ALU result / loaded value (after sign- or zero-extension) /
//!   size-masked store data / link address. Note `val` is defined even when
//!   the destination is `r0` and no architectural write happens.
//!
//! The model reuses [`avgi_muarch::mem::Memory`] (and the program loader) so
//! that address-space layout and access checks are shared with the pipeline;
//! the *semantics* on top of them are independent.

use avgi_isa::instr::{decode, disassemble};
use avgi_isa::opcode::{Format, Opcode};
use avgi_isa::reg::Reg;
use avgi_isa::NUM_ARCH_REGS;
use avgi_muarch::mem::Memory;
use avgi_muarch::{Program, TrapKind};

/// Step budget used by [`RefModel::run`] callers that just want "don't hang".
///
/// Workload programs commit a few million instructions at most; anything
/// beyond this is a runaway (diverging loop) by definition.
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// How a finished reference execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefOutcome {
    /// A `halt` instruction committed.
    Completed,
    /// The program trapped (undefined instruction or memory fault).
    Trap(TrapKind),
}

/// The architectural effect of one committed instruction, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// No architectural state changed beyond the PC (nop, untaken branch,
    /// or a write to the hardwired zero register).
    None,
    /// A register writeback.
    RegWrite { rd: u8, value: u32 },
    /// A memory store of `size` bytes.
    Store { addr: u32, size: u32, value: u32 },
    /// A control transfer (branch or jump). `link` records the register
    /// writeback of `jal`/`jalr` when the destination is not `r0`.
    Control {
        taken: bool,
        target: u32,
        link: Option<(u8, u32)>,
    },
    /// The program halted.
    Halt,
    /// The instruction trapped; no architectural state changed.
    Trap(TrapKind),
}

/// One committed instruction of the reference execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefStep {
    /// Zero-based commit index.
    pub index: u64,
    /// Address of the instruction (or faulting fetch).
    pub pc: u32,
    /// Fetched instruction word; `0` if the fetch itself faulted.
    pub raw: u32,
    /// Effective address for loads/stores (even trapping ones), else `0`.
    pub ea: u32,
    /// Result value (see module docs), else `0`.
    pub val: u32,
    /// PC after this instruction (== `pc` for halt/trap).
    pub next_pc: u32,
    /// Architectural effect, for divergence reports.
    pub effect: Effect,
}

impl std::fmt::Display for RefStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} pc={:#010x} raw={:#010x} [{}] ea={:#010x} val={:#010x} -> {:?}",
            self.index,
            self.pc,
            self.raw,
            disassemble(self.raw),
            self.ea,
            self.val,
            self.effect
        )
    }
}

/// Result of driving a [`RefModel`] to completion with a step budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefRun {
    /// `None` means the step budget expired first (runaway program).
    pub outcome: Option<RefOutcome>,
    /// Instructions executed.
    pub steps: u64,
}

/// In-order, untimed architectural interpreter for AvgIsa.
pub struct RefModel {
    pc: u32,
    regs: [u32; NUM_ARCH_REGS as usize],
    mem: Memory,
    output_addr: u32,
    output_len: u32,
    steps: u64,
    outcome: Option<RefOutcome>,
}

impl RefModel {
    /// Build a model with the program's initial memory image, entry point and
    /// all registers zeroed (the same reset state the pipeline starts from).
    pub fn new(program: &Program) -> Self {
        RefModel {
            pc: program.entry,
            regs: [0; NUM_ARCH_REGS as usize],
            mem: program.build_memory(),
            output_addr: program.output_addr,
            output_len: program.output_len,
            steps: 0,
            outcome: None,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Architectural register file.
    pub fn regs(&self) -> &[u32; NUM_ARCH_REGS as usize] {
        &self.regs
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `Some` once the program halted or trapped; `None` while runnable.
    pub fn outcome(&self) -> Option<RefOutcome> {
        self.outcome
    }

    /// The program's output window, read straight from memory.
    pub fn output(&self) -> Vec<u8> {
        self.mem.read_range(self.output_addr, self.output_len)
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn write_reg(&mut self, r: Reg, v: u32) -> Effect {
        if r.is_zero() {
            Effect::None
        } else {
            self.regs[r.index() as usize] = v;
            Effect::RegWrite {
                rd: r.index(),
                value: v,
            }
        }
    }

    /// Execute one instruction. Returns `None` once the program has finished
    /// (the step that halts or traps is itself returned, with `outcome` set).
    pub fn step(&mut self) -> Option<RefStep> {
        self.step_inner()
    }

    /// Drive the model until it finishes or `max_steps` is exhausted.
    pub fn run(&mut self, max_steps: u64) -> RefRun {
        while self.outcome.is_none() && self.steps < max_steps {
            self.step();
        }
        RefRun {
            outcome: self.outcome,
            steps: self.steps,
        }
    }
}

/// Bytes accessed by a load/store opcode.
pub(crate) fn access_size(op: Opcode) -> u32 {
    match op {
        Opcode::Lw | Opcode::Sw => 4,
        Opcode::Lh | Opcode::Lhu | Opcode::Sh => 2,
        _ => 1,
    }
}

/// ALU semantics, re-derived from the ISA definition (not from `muarch`).
pub(crate) fn alu_value(op: Opcode, a: u32, b: u32) -> u32 {
    match op {
        Opcode::Add | Opcode::Addi => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::And | Opcode::Andi => a & b,
        Opcode::Or | Opcode::Ori => a | b,
        Opcode::Xor | Opcode::Xori => a ^ b,
        Opcode::Sll | Opcode::Slli => a.wrapping_shl(b & 31),
        Opcode::Srl | Opcode::Srli => a.wrapping_shr(b & 31),
        Opcode::Sra | Opcode::Srai => ((a as i32).wrapping_shr(b & 31)) as u32,
        Opcode::Slt | Opcode::Slti => u32::from((a as i32) < (b as i32)),
        Opcode::Sltu => u32::from(a < b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        Opcode::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        Opcode::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        Opcode::Lui => b << 18,
        _ => unreachable!("alu_value called on non-ALU opcode {op:?}"),
    }
}

/// Branch condition semantics, re-derived from the ISA definition.
pub(crate) fn cond_holds(op: Opcode, a: u32, b: u32) -> bool {
    match op {
        Opcode::Beq => a == b,
        Opcode::Bne => a != b,
        Opcode::Blt => (a as i32) < (b as i32),
        Opcode::Bge => (a as i32) >= (b as i32),
        Opcode::Bltu => a < b,
        Opcode::Bgeu => a >= b,
        _ => unreachable!("cond_holds called on non-branch opcode {op:?}"),
    }
}

/// Zero/sign extension applied to a loaded value.
pub(crate) fn extend_load(op: Opcode, raw: u32) -> u32 {
    match op {
        Opcode::Lw => raw,
        Opcode::Lb => raw as u8 as i8 as i32 as u32,
        Opcode::Lbu => raw & 0xFF,
        Opcode::Lh => raw as u16 as i16 as i32 as u32,
        Opcode::Lhu => raw & 0xFFFF,
        _ => unreachable!("extend_load called on non-load opcode {op:?}"),
    }
}

impl RefModel {
    fn trap_step(&mut self, index: u64, pc: u32, raw: u32, ea: u32, kind: TrapKind) -> RefStep {
        self.outcome = Some(RefOutcome::Trap(kind));
        RefStep {
            index,
            pc,
            raw,
            ea,
            val: 0,
            next_pc: pc,
            effect: Effect::Trap(kind),
        }
    }

    fn step_inner(&mut self) -> Option<RefStep> {
        if self.outcome.is_some() {
            return None;
        }
        let index = self.steps;
        self.steps += 1;
        let pc = self.pc;

        if let Err(f) = self.mem.check_fetch(pc) {
            return Some(self.trap_step(index, pc, 0, 0, TrapKind::Memory(f)));
        }
        let raw = self.mem.read_u32(pc);
        let i = match decode(raw) {
            Ok(i) => i,
            Err(_) => {
                return Some(self.trap_step(index, pc, raw, 0, TrapKind::UndefinedInstruction));
            }
        };

        let mut ea = 0u32;
        let mut val = 0u32;
        let mut next_pc = pc.wrapping_add(4);
        let effect;

        match i.op {
            Opcode::Nop => {
                effect = Effect::None;
            }
            Opcode::Halt => {
                self.outcome = Some(RefOutcome::Completed);
                next_pc = pc;
                effect = Effect::Halt;
            }
            op if op.is_load() => {
                let vaddr = self.reg(i.rs1).wrapping_add(i.imm as u32);
                let size = access_size(op);
                if let Err(f) = self.mem.check_data_access(vaddr, size, false) {
                    return Some(self.trap_step(index, pc, raw, vaddr, TrapKind::Memory(f)));
                }
                ea = vaddr;
                let mut bytes = [0u8; 4];
                for (k, b) in bytes.iter_mut().take(size as usize).enumerate() {
                    *b = self.mem.read_u8(vaddr + k as u32);
                }
                val = extend_load(op, u32::from_le_bytes(bytes));
                effect = self.write_reg(i.rd, val);
            }
            op if op.is_store() => {
                let vaddr = self.reg(i.rs1).wrapping_add(i.imm as u32);
                let size = access_size(op);
                if let Err(f) = self.mem.check_data_access(vaddr, size, true) {
                    return Some(self.trap_step(index, pc, raw, vaddr, TrapKind::Memory(f)));
                }
                ea = vaddr;
                let data = self.reg(i.rs2);
                let masked = match size {
                    1 => data & 0xFF,
                    2 => data & 0xFFFF,
                    _ => data,
                };
                val = masked;
                let bytes = masked.to_le_bytes();
                for (k, b) in bytes.iter().take(size as usize).enumerate() {
                    self.mem.write_u8(vaddr + k as u32, *b);
                }
                effect = Effect::Store {
                    addr: vaddr,
                    size,
                    value: masked,
                };
            }
            op if op.is_branch() => {
                let taken = cond_holds(op, self.reg(i.rs1), self.reg(i.rs2));
                let target = pc.wrapping_add((i.imm as u32).wrapping_mul(4));
                if taken {
                    next_pc = target;
                }
                effect = Effect::Control {
                    taken,
                    target,
                    link: None,
                };
            }
            Opcode::Jal => {
                let target = pc.wrapping_add((i.imm as u32).wrapping_mul(4));
                let link = pc.wrapping_add(4);
                val = link;
                let wb = self.write_reg(i.rd, link);
                next_pc = target;
                effect = Effect::Control {
                    taken: true,
                    target,
                    link: match wb {
                        Effect::RegWrite { rd, value } => Some((rd, value)),
                        _ => None,
                    },
                };
            }
            Opcode::Jalr => {
                // `jalr` targets are *byte* addresses: base + imm, unscaled.
                let target = self.reg(i.rs1).wrapping_add(i.imm as u32);
                let link = pc.wrapping_add(4);
                val = link;
                let wb = self.write_reg(i.rd, link);
                next_pc = target;
                effect = Effect::Control {
                    taken: true,
                    target,
                    link: match wb {
                        Effect::RegWrite { rd, value } => Some((rd, value)),
                        _ => None,
                    },
                };
            }
            op => {
                // Remaining opcodes are the ALU group (R- and I-format).
                let a = self.reg(i.rs1);
                let b = if i.op.format() == Format::I {
                    i.imm as u32
                } else {
                    self.reg(i.rs2)
                };
                val = alu_value(op, a, b);
                effect = self.write_reg(i.rd, val);
            }
        }

        self.pc = next_pc;
        Some(RefStep {
            index,
            pc,
            raw,
            ea,
            val,
            next_pc,
            effect,
        })
    }
}
