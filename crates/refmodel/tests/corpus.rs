//! Committed fuzz seed corpus and coverage record.
//!
//! The differential fuzzer found **no divergence** between the pipeline and
//! the reference model over the seed corpus below (10 500 programs). Per the
//! issue contract, the corpus seeds and the coverage achieved are committed
//! here so the exact campaign is reproducible bit-for-bit:
//!
//! * seeds: `0xD1FF_5EED_0001` × 10 000 programs, `0xD1FF_5EED_0002` × 500;
//! * coverage achieved (asserted below): 41/41 defined opcodes committed and
//!   25/25 ordered format pairs observed back-to-back in a committed stream
//!   (the gate requires 100% opcodes and ≥90% pairs).
//!
//! Run the `fuzz_diff` bench bin for ad-hoc campaigns with other budgets.

use avgi_refmodel::fuzz::{gen_program, program_seed, run_one, shrink_with, FuzzConfig};
use avgi_refmodel::{run_fuzz, Coverage};
use avgi_rng::Rng;

/// Seed corpus: `(master seed, programs)` campaigns making up the ≥10k run.
const CORPUS: [(u64, usize); 2] = [(0xD1FF_5EED_0001, 10_000), (0xD1FF_5EED_0002, 500)];

fn render_failures(cfg: &FuzzConfig, report: &avgi_refmodel::FuzzReport) -> String {
    report
        .failures
        .iter()
        .map(|f| {
            format!(
                "program #{} (seed {:#x}, campaign seed {:#x}) minimized to {} words:\n  {:?}\n{}",
                f.index,
                f.seed,
                cfg.seed,
                f.minimized.len(),
                f.minimized
                    .iter()
                    .map(|w| format!("{w:#010x}"))
                    .collect::<Vec<_>>(),
                f.divergence
            )
        })
        .collect::<Vec<_>>()
        .join("\n\n")
}

/// The tentpole soak: ≥10k deterministic programs, zero divergence, full
/// opcode coverage and ≥90% format-pair coverage.
#[test]
fn fuzz_corpus_finds_no_divergence() {
    let mut coverage = Coverage::new();
    for (seed, programs) in CORPUS {
        let cfg = FuzzConfig::new(programs, seed);
        let report = run_fuzz(&cfg);
        assert!(
            report.failures.is_empty(),
            "fuzzer found divergences:\n{}",
            render_failures(&cfg, &report)
        );
        assert_eq!(report.coverage.watchdogged, 0, "generated program hung");
        coverage.merge(&report.coverage);
    }
    println!("{}", coverage.table());
    let (oc, ot) = coverage.opcode_coverage();
    assert_eq!(
        oc,
        ot,
        "uncovered opcodes: {:?}",
        coverage.uncovered_opcodes()
    );
    let (pc, pt) = coverage.format_pair_coverage();
    assert!(
        pc * 100 >= pt * 90,
        "format-pair coverage {pc}/{pt} below 90%:\n{}",
        coverage.table()
    );
}

/// The campaign must be bit-identical regardless of worker-thread count.
#[test]
fn fuzz_is_deterministic_across_thread_counts() {
    let mut one = FuzzConfig::new(96, 0xDE7E_2217);
    one.threads = 1;
    let mut four = one.clone();
    four.threads = 4;
    let a = run_fuzz(&one);
    let b = run_fuzz(&four);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.failures.len(), b.failures.len());
}

/// Generated programs are a pure function of the derived seed.
#[test]
fn generator_is_reproducible() {
    let cov = Coverage::new();
    for idx in [0usize, 7, 63] {
        let seed = program_seed(0xABCD, idx);
        let mut r1 = Rng::seed_from_u64(seed);
        let mut r2 = Rng::seed_from_u64(seed);
        assert_eq!(
            gen_program(&mut r1, &cov, 96),
            gen_program(&mut r2, &cov, 96)
        );
    }
}

/// Every generated program terminates on the pipeline (no watchdog) and
/// lockstep-verifies; spot-check a slice outside the corpus seeds.
#[test]
fn spot_check_off_corpus_seed() {
    let cfg = FuzzConfig::new(48, 0x0FF5_EED5);
    let report = run_fuzz(&cfg);
    assert!(
        report.failures.is_empty(),
        "divergence:\n{}",
        render_failures(&cfg, &report)
    );
    assert_eq!(report.coverage.watchdogged, 0);
}

/// The delta-debugging shrinker reduces to a minimal failing core.
#[test]
fn shrinker_minimizes_to_the_failing_word() {
    let magic = 0xDEAD_BEEF;
    let mut code = vec![0x1111_1111; 40];
    code[23] = magic;
    let minimized = shrink_with(&code, |cand| cand.contains(&magic));
    assert_eq!(minimized, vec![magic]);
}

/// `run_one` agrees with the reference model on a hand-written trap program:
/// an undefined opcode must commit as an `UndefinedInstruction` trap.
#[test]
fn run_one_checks_trap_outcomes() {
    // addi r1, r0, 5 ; <undefined opcode 0x00> ; halt (never reached)
    let code = vec![
        avgi_isa::encoding::pack_i(avgi_isa::Opcode::Addi.to_bits(), 1, 0, 5),
        0x0000_0000,
        avgi_isa::encoding::pack_n(avgi_isa::Opcode::Halt.to_bits()),
    ];
    let cfg = FuzzConfig::new(1, 0);
    let (outcome, trace, verdict) = run_one(&code, &cfg.config, cfg.max_cycles);
    assert_eq!(
        outcome,
        avgi_muarch::RunOutcome::Trap(avgi_muarch::TrapKind::UndefinedInstruction)
    );
    assert_eq!(trace.expect("trace recorded").len(), 2);
    verdict.expect("trap run must lockstep-verify");
}
