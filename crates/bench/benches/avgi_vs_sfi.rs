//! Wall-clock confirmation that the simulated-cycle accounting of
//! Table II tracks real time: compares the three run modes (traditional
//! end-to-end, insights 1&2, full AVGI) on the same fault sample, plus raw
//! simulator throughput and the checkpointing speedup.
//!
//! Originally a Criterion benchmark; the repository must build fully
//! offline, so this is now a `harness = false` binary with its own tiny
//! timing loop (median of N wall-clock samples). Run with
//! `cargo bench -p avgi-bench`.

use avgi_core::ert::default_ert_window;
use avgi_faultsim::{golden_for, run_one, sample_faults, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::pipeline::Sim;
use avgi_muarch::run::RunControl;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` `samples` times and reports the median wall-clock duration.
fn median_time(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn report(group: &str, name: &str, t: Duration) {
    println!("{group:<24} {name:<28} {:>12.3} ms", t.as_secs_f64() * 1e3);
}

fn bench_run_modes(samples: usize) {
    let w = avgi_workloads::by_name("sha").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let faults = sample_faults(Structure::RegFile, &cfg, golden.cycles, 10, 7).unwrap();
    let window = default_ert_window(Structure::RegFile, golden.cycles);

    let g = "rf_injection_10_faults";
    let t = median_time(samples, || {
        for &f in &faults {
            black_box(run_one(&w, &cfg, &golden, f, RunMode::EndToEnd, 1));
        }
    });
    report(g, "traditional_end_to_end", t);
    let t = median_time(samples, || {
        for &f in &faults {
            black_box(run_one(
                &w,
                &cfg,
                &golden,
                f,
                RunMode::FirstDeviation { ert_window: None },
                1,
            ));
        }
    });
    report(g, "avgi_insights_1_2", t);
    let t = median_time(samples, || {
        for &f in &faults {
            black_box(run_one(
                &w,
                &cfg,
                &golden,
                f,
                RunMode::FirstDeviation {
                    ert_window: Some(window),
                },
                1,
            ));
        }
    });
    report(g, "avgi_full", t);
}

fn bench_simulator_throughput(samples: usize) {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = MuarchConfig::big();
    let t = median_time(samples, || {
        let mut sim = Sim::new(&w.program, cfg.clone());
        black_box(sim.run(&RunControl {
            max_cycles: 10_000_000,
            ..Default::default()
        }));
    });
    report("simulator", "bitcount_end_to_end", t);
}

fn bench_checkpointing(samples: usize) {
    use avgi_faultsim::{run_campaign, CampaignConfig};
    let w = avgi_workloads::by_name("crc32").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let base = CampaignConfig::new(Structure::RegFile, 30, RunMode::EndToEnd);

    let g = "campaign_30_faults";
    let t = median_time(samples, || {
        black_box(run_campaign(
            &w,
            &cfg,
            &golden,
            &base.clone().with_checkpoints(0),
        ));
    });
    report(g, "without_checkpoints", t);
    let t = median_time(samples, || {
        black_box(run_campaign(
            &w,
            &cfg,
            &golden,
            &base.clone().with_checkpoints(8),
        ));
    });
    report(g, "with_checkpoints", t);
}

fn main() {
    // `cargo bench` / `cargo test` pass harness flags; a bare `--quick`
    // keeps CI smoke runs fast, and `--test` (from `cargo test --benches`)
    // means "just prove it runs".
    let args: Vec<String> = std::env::args().collect();
    let samples = if args.iter().any(|a| a == "--test" || a == "--quick") {
        1
    } else {
        10
    };
    println!("{:<24} {:<28} {:>15}", "group", "benchmark", "median");
    bench_run_modes(samples);
    bench_simulator_throughput(samples);
    bench_checkpointing(samples);
}
