//! Wall-clock confirmation that the simulated-cycle accounting of
//! Table II tracks real time: one Criterion group comparing the three run
//! modes (traditional end-to-end, insights 1&2, full AVGI) on the same
//! fault sample, plus raw simulator throughput.

use avgi_core::ert::default_ert_window;
use avgi_faultsim::{golden_for, run_one, sample_faults, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::pipeline::Sim;
use avgi_muarch::run::RunControl;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_run_modes(c: &mut Criterion) {
    let w = avgi_workloads::by_name("sha").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let faults = sample_faults(Structure::RegFile, &cfg, golden.cycles, 10, 7);
    let window = default_ert_window(Structure::RegFile, golden.cycles);

    let mut g = c.benchmark_group("rf_injection_10_faults");
    g.sample_size(10);
    g.bench_function("traditional_end_to_end", |b| {
        b.iter(|| {
            for &f in &faults {
                black_box(run_one(&w, &cfg, &golden, f, RunMode::EndToEnd, 1));
            }
        })
    });
    g.bench_function("avgi_insights_1_2", |b| {
        b.iter(|| {
            for &f in &faults {
                black_box(run_one(
                    &w,
                    &cfg,
                    &golden,
                    f,
                    RunMode::FirstDeviation { ert_window: None },
                    1,
                ));
            }
        })
    });
    g.bench_function("avgi_full", |b| {
        b.iter(|| {
            for &f in &faults {
                black_box(run_one(
                    &w,
                    &cfg,
                    &golden,
                    f,
                    RunMode::FirstDeviation { ert_window: Some(window) },
                    1,
                ));
            }
        })
    });
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = MuarchConfig::big();
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("bitcount_end_to_end", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&w.program, cfg.clone());
            black_box(sim.run(&RunControl { max_cycles: 10_000_000, ..Default::default() }))
        })
    });
    g.finish();
}

fn bench_checkpointing(c: &mut Criterion) {
    use avgi_faultsim::{run_campaign, CampaignConfig};
    let w = avgi_workloads::by_name("crc32").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let base = CampaignConfig::new(Structure::RegFile, 30, RunMode::EndToEnd);

    let mut g = c.benchmark_group("campaign_30_faults");
    g.sample_size(10);
    g.bench_function("without_checkpoints", |b| {
        b.iter(|| black_box(run_campaign(&w, &cfg, &golden, &base.clone().with_checkpoints(0))))
    });
    g.bench_function("with_checkpoints", |b| {
        b.iter(|| black_box(run_campaign(&w, &cfg, &golden, &base.clone().with_checkpoints(8))))
    });
    g.finish();
}

criterion_group!(benches, bench_run_modes, bench_simulator_throughput, bench_checkpointing);
criterion_main!(benches);
