//! Per-run setup cost: full `Sim` clone versus in-place snapshot restore,
//! plus end-to-end campaign throughput (runs/sec).
//!
//! The numbers are written to `BENCH_snapshot.json` at the repository root
//! so future changes can be compared against this baseline. Like the other
//! benches this is a `harness = false` binary (the repository builds
//! offline, without criterion); run with
//! `cargo bench -p avgi-bench --bench snapshot_restore` (add `-- --quick`
//! for the CI smoke variant).

use avgi_core::ert::default_ert_window;
use avgi_faultsim::telemetry::ProgressObserver;
use avgi_faultsim::{golden_for, run_campaign, watchdog_budget, CampaignConfig, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::pipeline::Sim;
use avgi_muarch::run::RunControl;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Cycles a scratch simulator runs past the checkpoint before being rewound
/// — a stand-in for the short post-injection window of an AVGI run.
const DIRTY_WINDOW: u64 = 500;

/// Times `f` `samples` times and reports the median wall-clock duration.
fn median_time(samples: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut times: Vec<Duration> = (0..samples).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--quick");
    let (samples, iters, campaign_faults) = if quick { (3, 20, 20) } else { (9, 200, 120) };

    let w = avgi_workloads::by_name("crc32").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let ctl = RunControl {
        max_cycles: watchdog_budget(golden.cycles),
        golden: Some(golden.clone()),
        ..Default::default()
    };

    // Checkpoint mid-run, like the campaign engine does.
    let mut sim = Sim::new(&w.program, cfg.clone());
    assert!(sim.run_to_cycle(golden.cycles / 2, &ctl).is_none());
    let snap = sim.snapshot();

    // Old per-run setup path: a full clone of the checkpointed simulator.
    let clone_med = median_time(samples, || {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(snap.spawn());
        }
        start.elapsed()
    }) / iters as u32;

    // New path: rewind one scratch simulator in place after it dirtied a
    // short post-injection window. Only the restore itself is timed.
    let mut scratch = snap.spawn();
    let restore_med = median_time(samples, || {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            assert!(scratch
                .run_to_cycle(snap.cycle() + DIRTY_WINDOW, &ctl)
                .is_none());
            let start = Instant::now();
            scratch.restore_from(&snap);
            total += start.elapsed();
            black_box(&mut scratch);
        }
        total
    }) / iters as u32;

    let clone_us = clone_med.as_secs_f64() * 1e6;
    let restore_us = restore_med.as_secs_f64() * 1e6;
    let speedup = clone_us / restore_us.max(1e-9);
    println!("{:<28} {clone_us:>12.2} us", "sim_clone_setup");
    println!("{:<28} {restore_us:>12.2} us", "snapshot_restore_setup");
    println!("{:<28} {speedup:>12.1} x", "restore_speedup");

    // End-to-end campaign throughput in the AVGI production mode.
    let window = default_ert_window(Structure::RegFile, golden.cycles);
    let ccfg = CampaignConfig::new(
        Structure::RegFile,
        campaign_faults,
        RunMode::FirstDeviation {
            ert_window: Some(window),
        },
    )
    .with_checkpoints(8);
    let start = Instant::now();
    let c = run_campaign(&w, &cfg, &golden, &ccfg);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(c.len(), campaign_faults);
    let runs_per_sec = campaign_faults as f64 / secs.max(1e-9);
    println!(
        "{:<28} {runs_per_sec:>12.0} runs/sec",
        "campaign_throughput"
    );

    // Same campaign with the full telemetry stack attached (IMM-classifying
    // collector + periodic progress emission). The acceptance bar is that
    // the observed runs/sec stays within 2% of the bare run above.
    let progress = std::sync::Arc::new(ProgressObserver::stderr(
        std::sync::Arc::new(avgi_core::imm_collector()),
        Duration::from_millis(500),
    ));
    let occfg = ccfg.clone().with_observer(progress.clone());
    let start = Instant::now();
    let oc = run_campaign(&w, &cfg, &golden, &occfg);
    let osecs = start.elapsed().as_secs_f64();
    let snap = progress.collector().snapshot();
    // The collector's counters must agree exactly with the campaign result.
    assert_eq!(snap.completed, oc.len() as u64);
    assert_eq!(snap.aborted(), oc.aborted_count() as u64);
    let runs_per_sec_observed = campaign_faults as f64 / osecs.max(1e-9);
    let overhead_pct = 100.0 * (runs_per_sec - runs_per_sec_observed) / runs_per_sec.max(1e-9);
    println!(
        "{:<28} {runs_per_sec_observed:>12.0} runs/sec",
        "campaign_observed"
    );
    println!("{:<28} {overhead_pct:>12.2} %", "telemetry_overhead");

    let metrics_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../metrics.json");
    match std::fs::write(metrics_path, snap.to_json() + "\n") {
        Ok(()) => println!("wrote {metrics_path}"),
        Err(e) => eprintln!("could not write {metrics_path}: {e}"),
    }

    // Hand-rolled JSON baseline at the repository root.
    let json = format!(
        "{{\n  \"bench\": \"snapshot_restore\",\n  \"quick\": {quick},\n  \
         \"workload\": \"{}\",\n  \"dirty_window_cycles\": {DIRTY_WINDOW},\n  \
         \"clone_us\": {clone_us:.3},\n  \"restore_us\": {restore_us:.3},\n  \
         \"restore_speedup\": {speedup:.2},\n  \
         \"campaign_faults\": {campaign_faults},\n  \
         \"campaign_runs_per_sec\": {runs_per_sec:.1},\n  \
         \"campaign_runs_per_sec_observed\": {runs_per_sec_observed:.1},\n  \
         \"telemetry_overhead_pct\": {overhead_pct:.2}\n}}\n",
        w.name
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
