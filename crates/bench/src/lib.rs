//! # avgi-bench — the experiment harness
//!
//! One runnable binary per table/figure of the paper (see `DESIGN.md` §3
//! for the index), plus shared plumbing: argument parsing, golden-run
//! caching, campaign grids, and fixed-width table printing.
//!
//! Every binary accepts `--faults N` (sample size per campaign, default
//! tuned to finish in minutes), `--seed S`, and `--small` (use the
//! Cortex-A15-like configuration).

use avgi_core::JointAnalysis;
use avgi_faultsim::telemetry::{
    CampaignObserver, MetricsCollector, MetricsSnapshot, ProgressObserver,
};
use avgi_faultsim::{
    config_hash, golden_for, run_campaign, CampaignConfig, CampaignResult, RunMode,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::trace::GoldenRun;
use avgi_workloads::Workload;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Common command-line options for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Faults per (structure, workload) campaign.
    pub faults: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Use the small (Cortex-A15-like) configuration.
    pub small: bool,
    /// Restrict to one workload by name (tools that support it).
    pub workload: Option<String>,
    /// Write a machine-readable `metrics.json` telemetry dump here.
    pub metrics: Option<PathBuf>,
    /// Minimum milliseconds between live progress lines.
    pub progress_ms: u64,
    /// Offline sharding: run only interleaved shard `I` of `N` of every
    /// campaign (`--shard I/N`). Each shard is a uniform subsample, so
    /// per-shard statistics remain unbiased; `N` processes (or machines)
    /// cover the full sample between them.
    pub shard: Option<(usize, usize)>,
}

impl ExpArgs {
    /// Parses `--faults N`, `--seed S`, `--small`, `--workload NAME`,
    /// `--metrics PATH`, `--progress-ms N` from `std::env::args`, with the
    /// given default sample size.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_faults: usize) -> Self {
        let mut args = ExpArgs {
            faults: default_faults,
            seed: 0xA461_0001,
            small: false,
            workload: None,
            metrics: None,
            progress_ms: 2_000,
            shard: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--faults" => {
                    args.faults = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--faults needs a number");
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--small" => args.small = true,
                "--workload" => {
                    args.workload = Some(it.next().expect("--workload needs a name"));
                }
                "--metrics" => {
                    args.metrics = Some(PathBuf::from(it.next().expect("--metrics needs a path")));
                }
                "--progress-ms" => {
                    args.progress_ms = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--progress-ms needs a number");
                }
                "--shard" => {
                    let spec = it.next().expect("--shard needs I/N");
                    args.shard = Some(parse_shard(&spec));
                }
                other => panic!(
                    "unknown argument `{other}` (supported: --faults N --seed S --small \
                     --workload NAME --metrics PATH --progress-ms N --shard I/N)"
                ),
            }
        }
        validate_workloads();
        args
    }

    /// The selected microarchitecture configuration as a named preset.
    pub fn preset(&self) -> avgi_grid::ConfigPreset {
        if self.small {
            avgi_grid::ConfigPreset::Small
        } else {
            avgi_grid::ConfigPreset::Big
        }
    }

    /// The selected microarchitecture configuration.
    pub fn config(&self) -> MuarchConfig {
        if self.small {
            MuarchConfig::small()
        } else {
            MuarchConfig::big()
        }
    }
}

/// The experiment binaries' telemetry bundle: an IMM-tallying
/// [`MetricsCollector`] behind a stderr [`ProgressObserver`], plus the
/// optional `metrics.json` destination from `--metrics`.
///
/// One bundle observes every campaign a binary runs; [`finish`]
/// (ExpTelemetry::finish) prints the folded summary and writes the dump.
pub struct ExpTelemetry {
    collector: Arc<MetricsCollector>,
    observer: Arc<ProgressObserver>,
    metrics_path: Option<PathBuf>,
}

impl ExpTelemetry {
    /// Builds the bundle from parsed arguments.
    pub fn from_args(args: &ExpArgs) -> Self {
        let collector = Arc::new(avgi_core::imm_collector());
        let observer = Arc::new(ProgressObserver::stderr(
            collector.clone(),
            Duration::from_millis(args.progress_ms),
        ));
        ExpTelemetry {
            collector,
            observer,
            metrics_path: args.metrics.clone(),
        }
    }

    /// The observer to attach to campaigns.
    pub fn observer(&self) -> Arc<dyn CampaignObserver> {
        self.observer.clone()
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.collector.snapshot()
    }

    /// Prints the folded telemetry summary to stderr and, when `--metrics`
    /// was given, writes the machine-readable dump.
    pub fn finish(&self) {
        let snap = self.collector.snapshot();
        if snap.completed == 0 {
            return;
        }
        eprint!("{}", avgi_core::TelemetrySummary(&snap));
        if let Some(path) = &self.metrics_path {
            match std::fs::write(path, snap.to_json()) {
                Ok(()) => eprintln!("[telemetry] wrote {}", path.display()),
                Err(e) => eprintln!("[telemetry] could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Parses a `--shard I/N` specification (0-based shard index).
///
/// # Panics
///
/// Panics with a usage message when the spec is malformed or `I >= N`.
pub fn parse_shard(spec: &str) -> (usize, usize) {
    let parse = || -> Option<(usize, usize)> {
        let (i, n) = spec.split_once('/')?;
        let i: usize = i.parse().ok()?;
        let n: usize = n.parse().ok()?;
        (i < n).then_some((i, n))
    };
    parse().unwrap_or_else(|| panic!("--shard wants I/N with 0 <= I < N, got `{spec}`"))
}

/// Architectural startup validation: executes every registered workload on
/// the `avgi-refmodel` reference interpreter and panics if any fails to
/// reach a clean halt. Runs automatically from [`ExpArgs::parse`], so a
/// workload image corrupted by a bad edit (or a reference-model regression)
/// aborts every experiment binary before any campaign spends cycles on it.
///
/// The interpreter is untimed, so this costs milliseconds for the full
/// suite. Returns the number of workloads validated.
///
/// # Panics
///
/// Panics naming the first workload whose reference execution does not
/// complete.
pub fn validate_workloads() -> usize {
    let workloads = avgi_workloads::all();
    for w in &workloads {
        let (model, run) =
            avgi_refmodel::reference_run_tier(&w.program, avgi_refmodel::ExecTier::Fast, 0);
        assert_eq!(
            run.outcome,
            Some(avgi_refmodel::RefOutcome::Completed),
            "workload `{}` fails architectural validation: {:?} after {} steps (pc {:#x})",
            w.name,
            run.outcome,
            run.steps,
            model.pc()
        );
        assert!(
            model.output().iter().any(|&b| b != 0),
            "workload `{}` produced an all-zero output region",
            w.name
        );
    }
    workloads.len()
}

/// Caches golden runs per workload (they are identical across campaigns).
///
/// Every capture is lockstep-verified against the `avgi-refmodel`
/// architectural interpreter before being handed out: the cache refuses to
/// serve a golden trace the reference model disagrees with, so experiment
/// statistics can never be built on a miscommitting substrate.
///
/// When the `AVGI_GOLDEN_CACHE` environment variable names a directory (or
/// [`GoldenCache::with_dir`] is used), captures additionally persist to disk
/// keyed by workload name and microarchitecture config hash, so *separate
/// experiment processes* — e.g. the figure bins `run_experiments.sh` invokes
/// one after another — capture each golden run once per sweep instead of
/// once per bin. Loaded files are CRC-sealed and re-verified against the
/// reference model before use; any corruption or mismatch silently falls
/// back to a fresh capture (which then rewrites the file).
#[derive(Default)]
pub struct GoldenCache {
    cache: HashMap<String, Arc<GoldenRun>>,
    disk_dir: Option<PathBuf>,
}

impl GoldenCache {
    /// Creates an empty cache, with disk persistence when the
    /// `AVGI_GOLDEN_CACHE` environment variable names a directory.
    pub fn new() -> Self {
        GoldenCache {
            cache: HashMap::new(),
            disk_dir: std::env::var_os("AVGI_GOLDEN_CACHE").map(PathBuf::from),
        }
    }

    /// Creates an empty cache persisting to `dir` (`None` = memory only,
    /// ignoring the environment).
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        GoldenCache {
            cache: HashMap::new(),
            disk_dir: dir,
        }
    }

    /// The golden run for `workload` under `cfg`, captured (or loaded from
    /// the disk cache) and lockstep-verified on first use.
    ///
    /// # Panics
    ///
    /// Panics with the first architectural divergence if the simulator's
    /// golden commit trace disagrees with the reference model.
    pub fn get(&mut self, workload: &Workload, cfg: &MuarchConfig) -> Arc<GoldenRun> {
        if let Some(g) = self.cache.get(workload.name) {
            return g.clone();
        }
        let path = self.disk_dir.as_ref().map(|d| {
            d.join(format!(
                "{}-{:016x}.golden",
                workload.name,
                config_hash(cfg)
            ))
        });
        let golden = path
            .as_ref()
            .and_then(|p| load_golden(p, workload, cfg))
            .unwrap_or_else(|| {
                let golden = golden_for(workload, cfg);
                if let Err(d) = avgi_refmodel::verify_golden_tier(
                    &workload.program,
                    &golden,
                    avgi_refmodel::ExecTier::Fast,
                ) {
                    panic!(
                        "golden run of `{}` fails architectural lockstep:\n{d}",
                        workload.name
                    );
                }
                if let Some(p) = &path {
                    if let Err(e) = store_golden(p, cfg, &golden) {
                        eprintln!("[golden-cache] could not write {}: {e}", p.display());
                    }
                }
                golden
            });
        self.cache.insert(workload.name.to_string(), golden.clone());
        golden
    }
}

/// Magic + version prefix of the on-disk golden format.
const GOLDEN_MAGIC: &[u8; 8] = b"AVGIGLD1";

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a golden run: magic, config hash, cycles, trace, output, and
/// stats, sealed with a trailing CRC32 of everything before it.
fn golden_bytes(cfg: &MuarchConfig, golden: &GoldenRun) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + golden.trace.len() * 24 + golden.output.len());
    buf.extend_from_slice(GOLDEN_MAGIC);
    push_u64(&mut buf, config_hash(cfg));
    push_u64(&mut buf, golden.cycles);
    push_u64(&mut buf, golden.trace.len() as u64);
    for rec in &golden.trace {
        push_u64(&mut buf, rec.cycle);
        push_u32(&mut buf, rec.pc);
        push_u32(&mut buf, rec.raw);
        push_u32(&mut buf, rec.ea);
        push_u32(&mut buf, rec.val);
    }
    push_u64(&mut buf, golden.output.len() as u64);
    buf.extend_from_slice(&golden.output);
    let s = &golden.stats;
    for v in [
        s.fetched,
        s.committed,
        s.l1i_misses,
        s.l1d_misses,
        s.l2_misses,
        s.itlb_misses,
        s.dtlb_misses,
        s.mispredicts,
        s.squashed,
        s.rf_ace_cycles,
    ] {
        push_u64(&mut buf, v);
    }
    let seal = avgi_faultsim::crc32(&buf);
    push_u32(&mut buf, seal);
    buf
}

fn store_golden(
    path: &std::path::Path,
    cfg: &MuarchConfig,
    golden: &GoldenRun,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    // Write-then-rename so a concurrent reader never sees a torn file.
    let tmp = path.with_extension("golden.tmp");
    std::fs::write(&tmp, golden_bytes(cfg, golden))?;
    std::fs::rename(&tmp, path)
}

/// Loads, unseals, and re-verifies a cached golden run. Any failure —
/// missing file, bad magic, config mismatch, CRC breach, or architectural
/// divergence — returns `None` so the caller re-captures.
fn load_golden(
    path: &std::path::Path,
    workload: &Workload,
    cfg: &MuarchConfig,
) -> Option<Arc<GoldenRun>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < GOLDEN_MAGIC.len() + 4 || !bytes.starts_with(GOLDEN_MAGIC) {
        return None;
    }
    let (body, seal) = bytes.split_at(bytes.len() - 4);
    if avgi_faultsim::crc32(body) != u32::from_le_bytes(seal.try_into().ok()?) {
        return None;
    }
    fn read_u64(body: &[u8], at: &mut usize) -> Option<u64> {
        let v = u64::from_le_bytes(body.get(*at..*at + 8)?.try_into().ok()?);
        *at += 8;
        Some(v)
    }
    fn read_u32(body: &[u8], at: &mut usize) -> Option<u32> {
        let v = u32::from_le_bytes(body.get(*at..*at + 4)?.try_into().ok()?);
        *at += 4;
        Some(v)
    }
    let mut cursor = GOLDEN_MAGIC.len();
    let at = &mut cursor;
    if read_u64(body, at)? != config_hash(cfg) {
        return None;
    }
    let cycles = read_u64(body, at)?;
    let trace_len = usize::try_from(read_u64(body, at)?).ok()?;
    let mut trace = Vec::with_capacity(trace_len.min(1 << 22));
    for _ in 0..trace_len {
        trace.push(avgi_muarch::CommitRecord {
            cycle: read_u64(body, at)?,
            pc: read_u32(body, at)?,
            raw: read_u32(body, at)?,
            ea: read_u32(body, at)?,
            val: read_u32(body, at)?,
        });
    }
    let output_len = usize::try_from(read_u64(body, at)?).ok()?;
    let output = body.get(*at..*at + output_len)?.to_vec();
    *at += output_len;
    let mut stats = [0u64; 10];
    for v in &mut stats {
        *v = read_u64(body, at)?;
    }
    let at = *at;
    if at != body.len() {
        return None;
    }
    let golden = Arc::new(GoldenRun {
        trace,
        cycles,
        output,
        stats: avgi_muarch::run::ExecStats {
            fetched: stats[0],
            committed: stats[1],
            l1i_misses: stats[2],
            l1d_misses: stats[3],
            l2_misses: stats[4],
            itlb_misses: stats[5],
            dtlb_misses: stats[6],
            mispredicts: stats[7],
            squashed: stats[8],
            rf_ace_cycles: stats[9],
        },
    });
    // A cached file is still held to the same architectural bar as a fresh
    // capture — but a failure here means stale/corrupt cache, not a broken
    // substrate, so fall back instead of panicking.
    avgi_refmodel::verify_golden_tier(&workload.program, &golden, avgi_refmodel::ExecTier::Fast)
        .ok()
        .map(|_| golden)
}

/// Prints campaign-health diagnostics to stderr — engine warnings (e.g.
/// checkpointing degraded), the per-structure abort rate, and wall-clock
/// expiries — so an unhealthy simulator is visible in experiment output
/// instead of silently folding into the crash column. Healthy campaigns
/// print nothing.
pub fn report_campaign_health(c: &CampaignResult) {
    for msg in &c.warnings {
        eprintln!("[health] {} / {}: {msg}", c.structure, c.workload);
    }
    if c.aborted_count() > 0 {
        eprintln!(
            "[health] {} / {}: {} of {} runs aborted in the simulator (abort rate {:.2}%)",
            c.structure,
            c.workload,
            c.aborted_count(),
            c.len(),
            c.abort_rate() * 100.0
        );
    }
    if c.wall_expired_count() > 0 {
        eprintln!(
            "[health] {} / {}: {} of {} runs exceeded the wall-clock budget",
            c.structure,
            c.workload,
            c.wall_expired_count(),
            c.len()
        );
    }
}

/// Runs an instrumented (end-to-end + deviation capture) campaign and
/// returns its joint analysis. `observer` attaches campaign telemetry
/// (`None` = unobserved). With `shard = Some((i, n))` only interleaved
/// shard `i` of `n` executes — a uniform subsample of the campaign, for
/// splitting a figure's work across independent processes.
#[allow(clippy::too_many_arguments)]
pub fn instrumented_analysis(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    structure: Structure,
    faults: usize,
    seed: u64,
    observer: Option<Arc<dyn CampaignObserver>>,
    shard: Option<(usize, usize)>,
) -> JointAnalysis {
    let mut ccfg = CampaignConfig::new(structure, faults, RunMode::Instrumented).with_seed(seed);
    let c = match shard {
        None => {
            ccfg.observer = observer;
            run_campaign(workload, cfg, golden, &ccfg)
        }
        Some((index, count)) => {
            let runner = avgi_faultsim::ShardRunner::new(workload, cfg, golden, &ccfg);
            let results = runner
                .run_interleaved(index, count, observer)
                .expect("interleaved shard indices are always in range");
            CampaignResult {
                workload: workload.name.to_string(),
                structure,
                mode: ccfg.mode,
                golden_cycles: golden.cycles,
                results: results.into_iter().map(|(_, r)| r).collect(),
                warnings: runner.warnings().to_vec(),
            }
        }
    };
    report_campaign_health(&c);
    JointAnalysis::from_campaign(&c)
}

/// Runs instrumented campaigns for every (structure, workload) pair in the
/// grid, printing progress to stderr. `telemetry` observes every campaign
/// in the grid when given.
pub fn analysis_grid(
    structures: &[Structure],
    workloads: &[Workload],
    cfg: &MuarchConfig,
    faults: usize,
    seed: u64,
    telemetry: Option<&ExpTelemetry>,
    shard: Option<(usize, usize)>,
) -> Vec<JointAnalysis> {
    let mut cache = GoldenCache::new();
    let mut out = Vec::with_capacity(structures.len() * workloads.len());
    for &s in structures {
        for w in workloads {
            match shard {
                None => eprintln!("[grid] {} / {} ({} faults)", s, w.name, faults),
                Some((i, n)) => eprintln!(
                    "[grid] {} / {} ({} faults, shard {i}/{n})",
                    s, w.name, faults
                ),
            }
            let golden = cache.get(w, cfg);
            let observer = telemetry.map(ExpTelemetry::observer);
            out.push(instrumented_analysis(
                w, cfg, &golden, s, faults, seed, observer, shard,
            ));
        }
    }
    out
}

/// One row of a leave-one-out accuracy study: the exhaustive ground truth
/// next to the AVGI prediction for a held-out workload.
#[derive(Debug, Clone)]
pub struct LooRow {
    /// Held-out workload.
    pub workload: String,
    /// Ground-truth Masked/SDC/Crash from exhaustive SFI.
    pub real: avgi_core::EffectDistribution,
    /// AVGI prediction with weights learned on the other workloads.
    pub predicted: avgi_core::EffectDistribution,
    /// Post-injection cycles of the exhaustive campaign.
    pub real_cost: u64,
    /// Post-injection cycles of the AVGI campaign.
    pub avgi_cost: u64,
}

/// Runs the full leave-one-out evaluation of the AVGI methodology for one
/// structure (the protocol behind Figs. 10–12); thin wrapper over
/// [`avgi_core::study::leave_one_out`] keeping the row shape the binaries
/// print.
pub fn leave_one_out_study(
    structure: Structure,
    workloads: &[Workload],
    cfg: &MuarchConfig,
    faults: usize,
    seed: u64,
) -> Vec<LooRow> {
    use avgi_core::pipeline::AvgiOptions;
    eprintln!(
        "[loo:{structure}] {} workloads x {faults} faults",
        workloads.len()
    );
    let opts = AvgiOptions {
        faults,
        seed,
        ..Default::default()
    };
    avgi_core::study::leave_one_out(structure, workloads, cfg, &opts)
        .rows
        .into_iter()
        .map(|r| LooRow {
            workload: r.workload,
            real: r.real,
            predicted: r.predicted,
            real_cost: r.real_cost,
            avgi_cost: r.avgi_cost,
        })
        .collect()
}

/// Formats a fraction as a fixed-width percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Prints a header row followed by a separator, for fixed-width tables.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_cache_reuses_runs() {
        let cfg = MuarchConfig::big();
        let w = avgi_workloads::by_name("sha").unwrap();
        let mut cache = GoldenCache::new();
        let a = cache.get(&w, &cfg);
        let b = cache.get(&w, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn golden_cache_round_trips_through_disk() {
        let cfg = MuarchConfig::small();
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let dir = std::env::temp_dir().join(format!("avgi-golden-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First cache captures and persists.
        let mut writer = GoldenCache::with_dir(Some(dir.clone()));
        let captured = writer.get(&w, &cfg);
        let path = dir.join(format!("bitcount-{:016x}.golden", config_hash(&cfg)));
        assert!(path.exists(), "capture must persist to {}", path.display());

        // A fresh cache (new process stand-in) loads the exact same run.
        let loaded = load_golden(&path, &w, &cfg).expect("stored golden must load");
        assert_eq!(loaded.trace, captured.trace);
        assert_eq!(loaded.cycles, captured.cycles);
        assert_eq!(loaded.output, captured.output);
        assert_eq!(loaded.stats, captured.stats);

        // A config mismatch or a flipped byte must be rejected, not served.
        assert!(load_golden(&path, &w, &MuarchConfig::big()).is_none());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_golden(&path, &w, &cfg).is_none());

        // The poisoned file falls back to capture and is repaired in place.
        let mut reader = GoldenCache::with_dir(Some(dir.clone()));
        let recaptured = reader.get(&w, &cfg);
        assert_eq!(recaptured.trace, captured.trace);
        assert!(
            load_golden(&path, &w, &cfg).is_some(),
            "rewrite must repair"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_validation_accepts_every_workload() {
        assert_eq!(validate_workloads(), avgi_workloads::all().len());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(pct(0.012), "  1.2%");
    }
}
