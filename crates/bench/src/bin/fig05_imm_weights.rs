//! Fig. 5 — the IMM weighting factors: mean P(Masked/SDC/Crash | IMM) per
//! hardware structure across all workloads.
//!
//! These are the phase-4 weights of the methodology. One panel per
//! structure; rows of IMMs never observed for a structure print as `-`
//! (e.g. IRP on the register file — the paper's "practically cannot
//! happen" entries).

use avgi_bench::{analysis_grid, pct, print_header, ExpArgs};
use avgi_core::imm::{FaultEffect, Imm};
use avgi_core::weights::learn_weights;
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(300);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 5 — IMM weights per structure ({}, {} faults/cell)",
        cfg.name, args.faults
    );
    let telemetry = avgi_bench::ExpTelemetry::from_args(&args);
    for &s in Structure::all() {
        let analyses = analysis_grid(
            &[s],
            &workloads,
            &cfg,
            args.faults,
            args.seed,
            Some(&telemetry),
            args.shard,
        );
        let table = learn_weights(&analyses, None);
        println!("\n--- {} ---", s.label());
        print_header(
            &["IMM", "Masked", "SDC", "Crash", "support"],
            &[8, 10, 10, 10, 9],
        );
        for imm in Imm::all() {
            if table.observed(*imm) {
                println!(
                    "{:>8} {:>10} {:>10} {:>10} {:>9}",
                    imm.label(),
                    pct(table.weight(*imm, FaultEffect::Masked)),
                    pct(table.weight(*imm, FaultEffect::Sdc)),
                    pct(table.weight(*imm, FaultEffect::Crash)),
                    table.support[imm.index()],
                );
            } else {
                println!(
                    "{:>8} {:>10} {:>10} {:>10} {:>9}",
                    imm.label(),
                    "-",
                    "-",
                    "-",
                    0
                );
            }
        }
    }
    println!(
        "\npaper comparison: weights are structure-specific; unobserved IMMs (e.g. IRP/UNO/OFS \
         on the register file) match the paper's zero-probability entries."
    );
    telemetry.finish();
}
