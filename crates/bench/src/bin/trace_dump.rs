//! Commit-trace inspector: disassembled golden trace of a workload —
//! the debugging lens for everything the IMM classifier sees.
//!
//! ```sh
//! cargo run --release -p avgi-bench --bin trace_dump -- --workload sha
//! ```

use avgi_bench::{ExpArgs, GoldenCache};
use avgi_isa::instr::disassemble;

fn main() {
    let args = ExpArgs::parse(0);
    let cfg = args.config();
    let name = args
        .workload
        .clone()
        .unwrap_or_else(|| "bitcount".to_string());
    let w = avgi_workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let mut cache = GoldenCache::new();
    let golden = cache.get(&w, &cfg);
    println!(
        "golden trace of `{}` on {}: {} instructions, {} cycles (IPC {:.2})",
        w.name,
        cfg.name,
        golden.trace.len(),
        golden.cycles,
        golden.trace.len() as f64 / golden.cycles as f64,
    );
    println!(
        "stats: {} L1I miss, {} L1D miss, {} L2 miss, {} mispredicts, {} squashed",
        golden.stats.l1i_misses,
        golden.stats.l1d_misses,
        golden.stats.l2_misses,
        golden.stats.mispredicts,
        golden.stats.squashed,
    );
    println!(
        "\n{:>8} {:>10} {:>34} {:>10} {:>10}",
        "cycle", "pc", "instruction", "ea", "val"
    );
    let n = 60.min(golden.trace.len());
    for rec in &golden.trace[..n] {
        println!(
            "{:>8} {:>#10x} {:>34} {:>#10x} {:>#10x}",
            rec.cycle,
            rec.pc,
            disassemble(rec.raw),
            rec.ea,
            rec.val,
        );
    }
    if golden.trace.len() > n {
        println!("... ({} more)", golden.trace.len() - n);
    }
}
