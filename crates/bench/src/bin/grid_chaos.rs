//! Chaos soak harness for the campaign fabric (`DESIGN.md` §12).
//!
//! Runs an in-process coordinator plus N in-process workers over localhost
//! TCP with a seeded [`ChaosTransport`](avgi_grid::ChaosTransport)
//! interposed on *both* sides, so frames get dropped, bit-flipped,
//! duplicated, delayed, and connections severed mid-frame — all
//! deterministically from `--chaos-seed`. Optionally one worker is killed
//! after its first few batches (`--kill-after`) and the campaign journaled
//! (`--journal`). With `--verify` the merged outcome is compared
//! bit-for-bit against a single-process reference run; any divergence
//! exits 1. `--soak N` repeats the whole exercise N times with
//! `chaos-seed + i`, which is what the CI smoke step runs.
//!
//! ```text
//! grid_chaos --workload bitcount --structure RegFile --faults 96 \
//!     --workers 3 --kill-after 1 --drop 0.05 --corrupt 0.05 --dup 0.03 \
//!     --sever 0.02 --delay-ms 5 --chaos-seed 0xC4A0 --soak 2 --verify
//! ```

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig, CampaignResult, MetricsSnapshot, RunMode};
use avgi_grid::{
    ChaosInterposer, ChaosPolicy, ConfigPreset, Coordinator, GridConfig, GridOutcome, WorkerConfig,
};
use avgi_muarch::Structure;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    workload: String,
    structure: Structure,
    faults: usize,
    seed: u64,
    small: bool,
    workers: usize,
    kill_after: Option<usize>,
    chaos_seed: u64,
    drop: f64,
    corrupt: f64,
    dup: f64,
    sever: f64,
    delay: f64,
    delay_ms: u64,
    journal: Option<PathBuf>,
    deadline_s: u64,
    soak: u64,
    verify: bool,
}

const USAGE: &str = "grid_chaos --workload NAME --structure IDENT [--faults N] [--seed S] \
     [--small] [--workers N] [--kill-after N] [--chaos-seed S] [--drop P] [--corrupt P] \
     [--dup P] [--sever P] [--delay P] [--delay-ms N] [--journal PATH] [--deadline-s N] \
     [--soak N] [--verify]";

fn parse_u64(flag: &str, v: &str) -> u64 {
    let (v, radix) = match v.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (v, 10),
    };
    u64::from_str_radix(v, radix).unwrap_or_else(|_| panic!("{flag} needs a number, got `{v}`"))
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "bitcount".into(),
        structure: Structure::RegFile,
        faults: 96,
        seed: 0xA461_0001,
        small: false,
        workers: 3,
        kill_after: None,
        chaos_seed: 0xC4A0_0001,
        drop: 0.05,
        corrupt: 0.05,
        dup: 0.03,
        sever: 0.02,
        delay: 0.05,
        delay_ms: 5,
        journal: None,
        deadline_s: 180,
        soak: 1,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    let next = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = next("--workload", &mut it),
            "--structure" => {
                let s = next("--structure", &mut it);
                args.structure =
                    Structure::from_ident(&s).unwrap_or_else(|| panic!("unknown structure `{s}`"));
            }
            "--faults" => args.faults = next("--faults", &mut it).parse().expect("--faults N"),
            "--seed" => args.seed = parse_u64("--seed", &next("--seed", &mut it)),
            "--small" => args.small = true,
            "--workers" => args.workers = next("--workers", &mut it).parse().expect("--workers N"),
            "--kill-after" => {
                args.kill_after = Some(
                    next("--kill-after", &mut it)
                        .parse()
                        .expect("--kill-after N"),
                );
            }
            "--chaos-seed" => {
                args.chaos_seed = parse_u64("--chaos-seed", &next("--chaos-seed", &mut it));
            }
            "--drop" => args.drop = next("--drop", &mut it).parse().expect("--drop P"),
            "--corrupt" => args.corrupt = next("--corrupt", &mut it).parse().expect("--corrupt P"),
            "--dup" => args.dup = next("--dup", &mut it).parse().expect("--dup P"),
            "--sever" => args.sever = next("--sever", &mut it).parse().expect("--sever P"),
            "--delay" => args.delay = next("--delay", &mut it).parse().expect("--delay P"),
            "--delay-ms" => {
                args.delay_ms = next("--delay-ms", &mut it).parse().expect("--delay-ms N");
            }
            "--journal" => args.journal = Some(PathBuf::from(next("--journal", &mut it))),
            "--deadline-s" => {
                args.deadline_s = next("--deadline-s", &mut it)
                    .parse()
                    .expect("--deadline-s N");
            }
            "--soak" => args.soak = next("--soak", &mut it).parse().expect("--soak N"),
            "--verify" => args.verify = true,
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    args
}

fn preset(args: &Args) -> ConfigPreset {
    if args.small {
        ConfigPreset::Small
    } else {
        ConfigPreset::Big
    }
}

fn campaign_config(args: &Args) -> CampaignConfig {
    CampaignConfig::new(args.structure, args.faults, RunMode::Instrumented).with_seed(args.seed)
}

fn policy(args: &Args, seed: u64) -> ChaosPolicy {
    ChaosPolicy {
        drop: args.drop,
        corrupt: args.corrupt,
        duplicate: args.dup,
        sever: args.sever,
        delay: args.delay,
        max_delay: Duration::from_millis(args.delay_ms.max(1)),
        ..ChaosPolicy::calm(seed)
    }
}

/// One full chaotic campaign under `chaos_seed`; returns the merged outcome
/// alongside the chaos tallies from both sides of the link.
fn run_round(args: &Args, chaos_seed: u64) -> GridOutcome {
    let w = avgi_workloads::by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload `{}`", args.workload));
    let coord_chaos = Arc::new(ChaosInterposer::new(policy(args, chaos_seed)));
    let worker_chaos = Arc::new(ChaosInterposer::new(policy(args, chaos_seed ^ 0xFF)));
    let grid = GridConfig {
        batch: 8,
        lease_timeout: Duration::from_secs(2),
        journal: args.journal.clone(),
        deadline: Some(Duration::from_secs(args.deadline_s)),
        chaos: Some(coord_chaos.clone()),
        ..GridConfig::default()
    };
    let coord = Coordinator::bind(&w, preset(args), &campaign_config(args), &grid)
        .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = coord.local_addr().expect("bound socket has an address");
    let coord_thread = std::thread::spawn(move || coord.run());
    let workers: Vec<_> = (0..args.workers.max(1))
        .map(|i| {
            let mut wcfg = WorkerConfig::new(addr.to_string());
            wcfg.threads = 2;
            // Short retry budgets: a worker whose final exchange chaos ate
            // should give up on the exited coordinator in seconds, not
            // grind through the production-sized reconnect budget.
            wcfg.connect_timeout = Duration::from_secs(1);
            wcfg.reconnect_attempts = 4;
            wcfg.read_timeout = Duration::from_secs(2);
            wcfg.backoff_base = Duration::from_millis(20);
            wcfg.backoff_cap = Duration::from_millis(250);
            wcfg.jitter_seed = chaos_seed.wrapping_add(i as u64);
            wcfg.chaos = Some(worker_chaos.clone());
            if i == 0 {
                // The designated victim dies abruptly mid-campaign, lease
                // in hand; its work must be reassigned, never recounted.
                wcfg.max_batches = args.kill_after;
            }
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();
    let outcome = coord_thread
        .join()
        .unwrap()
        .unwrap_or_else(|e| panic!("coordinator failed: {e}"));
    // Workers whose final exchange chaos ate die retrying against the
    // now-exited coordinator; the merged outcome is what's under test.
    for t in workers {
        let _ = t.join().unwrap();
    }
    eprintln!(
        "[chaos {chaos_seed:#x}] coordinator link: {}",
        coord_chaos.stats().summary()
    );
    eprintln!(
        "[chaos {chaos_seed:#x}] worker link:      {}",
        worker_chaos.stats().summary()
    );
    eprintln!(
        "[chaos {chaos_seed:#x}] fabric: workers {} (+{} re-attached) | leases {} / {} reassigned \
         | rejected {} | protocol errors {} ({} corrupt) | resumed {}",
        outcome.stats.workers_seen,
        outcome.stats.sessions_reattached,
        outcome.stats.leases_granted,
        outcome.stats.leases_reassigned,
        outcome.stats.batches_rejected,
        outcome.stats.protocol_errors,
        outcome.stats.corrupt_frames,
        outcome.stats.resumed,
    );
    if coord_chaos.stats().injected() + worker_chaos.stats().injected() == 0 {
        eprintln!("[chaos {chaos_seed:#x}] warning: no faults injected — rates too low?");
    }
    outcome
}

/// The single-process reference: merged results plus observed telemetry.
fn reference(args: &Args) -> (CampaignResult, MetricsSnapshot) {
    let w = avgi_workloads::by_name(&args.workload).expect("workload verified at bind");
    let cfg = preset(args).config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let collector = Arc::new(MetricsCollector::new());
    let ccfg = campaign_config(args).with_observer(collector.clone());
    let result = run_campaign(&w, &cfg, &golden, &ccfg);
    (result, collector.snapshot())
}

fn main() {
    let args = parse_args();
    let reference = args.verify.then(|| reference(&args));
    let mut failed = false;
    for i in 0..args.soak.max(1) {
        let chaos_seed = args.chaos_seed.wrapping_add(i);
        if let Some(path) = &args.journal {
            let _ = std::fs::remove_file(path);
        }
        let outcome = run_round(&args, chaos_seed);
        match &reference {
            None => {
                eprintln!(
                    "[chaos {chaos_seed:#x}] campaign merged: {} results",
                    outcome.result.results.len()
                );
            }
            Some((reference, telemetry)) => {
                let results_ok = outcome.result.results == reference.results;
                let counters_ok = outcome.telemetry.deterministic_counters_json()
                    == telemetry.deterministic_counters_json();
                if results_ok && counters_ok {
                    eprintln!(
                        "[chaos {chaos_seed:#x}] verify OK: {} results and telemetry counters \
                         bit-identical to single-process",
                        reference.results.len()
                    );
                } else {
                    eprintln!(
                        "[chaos {chaos_seed:#x}] verify FAIL: results {} | telemetry {}",
                        if results_ok { "ok" } else { "DIVERGED" },
                        if counters_ok { "ok" } else { "DIVERGED" },
                    );
                    failed = true;
                }
            }
        }
    }
    if let Some(path) = &args.journal {
        let _ = std::fs::remove_file(path);
    }
    if failed {
        std::process::exit(1);
    }
}
