//! Fig. 12 — case study on a second ISA/microarchitecture (§VI).
//!
//! The paper validates transfer by repeating the accuracy experiment on a
//! Cortex-A15-like model; here, the `small` configuration. As in the
//! paper, three major structures are shown: L1I data, L1D data, and the
//! register file ("Real" vs. "Predict").

use avgi_bench::{leave_one_out_study, pct, print_header, ExpArgs};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(250);
    let cfg = MuarchConfig::small(); // the case-study microarchitecture
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 12 — case study on the second microarchitecture ({}, {} faults/campaign)",
        cfg.name, args.faults
    );

    let mut worst = 0.0f64;
    let mut sdc_worst = 0.0f64;
    for s in [Structure::L1IData, Structure::L1DData, Structure::RegFile] {
        println!("\n--- {} ---", s.label());
        print_header(
            &[
                "workload", "real Msk", "pred Msk", "real SDC", "pred SDC", "real Crs", "pred Crs",
                "maxdiff",
            ],
            &[14, 9, 9, 9, 9, 9, 9, 8],
        );
        let rows = leave_one_out_study(s, &workloads, &cfg, args.faults, args.seed);
        for r in &rows {
            let diff = r.real.max_abs_diff(r.predicted);
            worst = worst.max(diff);
            sdc_worst = sdc_worst.max((r.real.sdc - r.predicted.sdc).abs());
            println!(
                "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
                r.workload,
                pct(r.real.masked),
                pct(r.predicted.masked),
                pct(r.real.sdc),
                pct(r.predicted.sdc),
                pct(r.real.crash),
                pct(r.predicted.crash),
                pct(diff),
            );
        }
    }
    let margin =
        avgi_faultsim::error_margin(args.faults, avgi_faultsim::Confidence::C99).unwrap_or(1.0);
    println!(
        "\nworst per-class |real - predict| on the second microarchitecture: {} \
         (SDC only: {}); SFI error margin at n={}: {} \
         (paper: divergences mostly below the error margin; SDC virtually equal)",
        pct(worst),
        pct(sdc_worst),
        args.faults,
        pct(margin),
    );
}
