//! The multi-campaign control plane (`DESIGN.md` §15).
//!
//! Serves many concurrent fault-injection campaigns over one shared worker
//! fleet: campaigns arrive over HTTP (`grid_submit`), survive restarts in
//! a durable submission queue, and are leased out fair-share to whatever
//! `grid_worker`s connect — v3 (binary wire) and v2 (JSON) alike.
//!
//! ```text
//! grid_service --bind 127.0.0.1:4810 --http 127.0.0.1:4811 \
//!     --queue PATH [--journal-dir DIR] [--batch N] [--lease-ms N] \
//!     [--fsync-every N] [--deadline-s N] [--exit-after N]
//! ```
//!
//! `--exit-after N` makes the service drain the fleet and exit once `N`
//! campaigns have completed — what the CI smoke uses for clean shutdown.

use avgi_grid::{Service, ServiceConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "grid_service --bind ADDR --http ADDR --queue PATH [--journal-dir DIR] \
     [--batch N] [--lease-ms N] [--fsync-every N] [--deadline-s N] [--exit-after N]";

fn main() {
    let mut cfg = ServiceConfig {
        bind: "127.0.0.1:4810".into(),
        http_bind: Some("127.0.0.1:4811".into()),
        ..ServiceConfig::default()
    };
    let mut fsync_every = 0u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
        };
        match a.as_str() {
            "--bind" => cfg.bind = next("--bind"),
            "--http" => cfg.http_bind = Some(next("--http")),
            "--queue" => cfg.queue = PathBuf::from(next("--queue")),
            "--journal-dir" => cfg.journal_dir = Some(PathBuf::from(next("--journal-dir"))),
            "--batch" => cfg.batch = next("--batch").parse().expect("--batch N"),
            "--lease-ms" => {
                cfg.lease_timeout =
                    Duration::from_millis(next("--lease-ms").parse().expect("--lease-ms N"));
            }
            "--fsync-every" => {
                fsync_every = next("--fsync-every").parse().expect("--fsync-every N");
            }
            "--deadline-s" => {
                cfg.deadline = Some(Duration::from_secs(
                    next("--deadline-s").parse().expect("--deadline-s N"),
                ));
            }
            "--exit-after" => {
                cfg.exit_after = Some(next("--exit-after").parse().expect("--exit-after N"));
            }
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    if fsync_every > 0 {
        cfg.durability = avgi_faultsim::DurabilityPolicy::FsyncEveryN(fsync_every);
    }
    let service = match Service::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[service] bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[service] fabric on {}, http on {}",
        service
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".into()),
        service
            .http_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "-".into()),
    );
    match service.run() {
        Ok(stats) => {
            eprintln!(
                "[service] exit: {} submitted, {} resumed, {} completed, {} leases \
                 ({} reassigned), {} workers, {} http requests",
                stats.campaigns_submitted,
                stats.campaigns_resumed,
                stats.campaigns_completed,
                stats.leases_granted,
                stats.leases_reassigned,
                stats.workers_seen,
                stats.http_requests,
            );
        }
        Err(e) => {
            eprintln!("[service] failed: {e}");
            std::process::exit(1);
        }
    }
}
