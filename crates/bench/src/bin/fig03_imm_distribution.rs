//! Fig. 3 — IMM breakdown per hardware structure across workloads.
//!
//! The paper's insight 1: for a given structure, the IMM distribution over
//! corruptions is approximately *workload-invariant*. Print the
//! per-workload breakdown plus the AVG column for the paper's four panels
//! (L1I data, L1D data, RF, ROB/LQ/SQ) and report the cross-workload
//! spread.

use avgi_bench::{analysis_grid, pct, print_header, ExpArgs};
use avgi_core::imm::{Imm, NUM_IMMS};
use avgi_core::JointAnalysis;
use avgi_muarch::fault::Structure;

fn panel(analyses: &[JointAnalysis], structure: Structure) {
    println!("\n--- {} ---", structure.label());
    let mut cols = vec!["workload", "corrupt"];
    cols.extend(Imm::all().iter().map(|i| i.label()));
    print_header(&cols, &[14; NUM_IMMS + 2]);
    let group: Vec<&JointAnalysis> = analyses
        .iter()
        .filter(|a| a.structure == structure)
        .collect();
    let mut avg = [0.0f64; NUM_IMMS];
    let mut per_workload: Vec<[f64; NUM_IMMS]> = Vec::new();
    for a in &group {
        // Trace-visible distribution: the paper's panels exclude ESC.
        let d = a.visible_imm_distribution();
        per_workload.push(d);
        let mut row = format!("{:>14} {:>14}", a.workload, a.corruption_count());
        for v in d {
            row.push_str(&format!(" {:>13}", pct(v)));
        }
        println!("{row}");
        for k in 0..NUM_IMMS {
            avg[k] += d[k] / group.len() as f64;
        }
    }
    let mut row = format!("{:>14} {:>14}", "AVG", "");
    for v in avg {
        row.push_str(&format!(" {:>13}", pct(v)));
    }
    println!("{row}");
    // Cross-workload spread per IMM (only workloads with corruptions).
    let active: Vec<&[f64; NUM_IMMS]> = per_workload
        .iter()
        .filter(|d| d.iter().sum::<f64>() > 0.0)
        .collect();
    if active.len() > 1 {
        let worst = (0..NUM_IMMS)
            .map(|k| {
                let mean = active.iter().map(|d| d[k]).sum::<f64>() / active.len() as f64;
                let var =
                    active.iter().map(|d| (d[k] - mean).powi(2)).sum::<f64>() / active.len() as f64;
                var.sqrt()
            })
            .fold(0.0, f64::max);
        println!("max per-IMM std-dev across workloads: {}", pct(worst));
    }
}

fn main() {
    let args = ExpArgs::parse(300);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 3 — IMM distribution per structure across workloads ({}, {} faults/cell)",
        cfg.name, args.faults
    );
    let structures = [
        Structure::L1IData,
        Structure::L1DData,
        Structure::RegFile,
        Structure::Rob,
        Structure::Lq,
        Structure::Sq,
    ];
    let telemetry = avgi_bench::ExpTelemetry::from_args(&args);
    let analyses = analysis_grid(
        &structures,
        &workloads,
        &cfg,
        args.faults,
        args.seed,
        Some(&telemetry),
        args.shard,
    );
    for s in structures {
        panel(&analyses, s);
    }
    println!(
        "\npaper comparison: distributions are structure-specific and roughly uniform \
         across workloads; ROB/LQ/SQ manifest only as PRE."
    );
    telemetry.finish();
}
