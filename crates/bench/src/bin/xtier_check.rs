//! CI smoke prover for the execution tiers.
//!
//! Runs the four-leg [`avgi_faultsim::run_xtier`] cross-check — reference
//! substrate, interpreter identity, pipeline identity, and campaign
//! equality across verification tiers — on a couple of workloads, and exits
//! non-zero on the first divergence. The full sweep lives in
//! `bench_trajectory --xtier`; this binary is the seconds-cheap gate that
//! keeps every push honest.
//!
//! Usage:
//!   xtier_check [--workloads a,b] [--faults N] [--small]

use avgi_bench::GoldenCache;
use avgi_core::ert::default_ert_window;
use avgi_faultsim::{run_xtier, CampaignConfig, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

fn main() {
    let mut workloads = vec!["bitcount".to_string(), "crc32".to_string()];
    let mut faults = 24usize;
    let mut small = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => {
                workloads = it
                    .next()
                    .expect("--workloads needs a comma-separated list")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--faults" => {
                faults = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--faults needs a positive number")
            }
            "--small" => small = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    let cfg = if small {
        MuarchConfig::small()
    } else {
        MuarchConfig::big()
    };

    let mut cache = GoldenCache::new();
    for name in &workloads {
        let w = avgi_workloads::by_name(name).unwrap_or_else(|| panic!("no workload {name}"));
        let golden = cache.get(&w, &cfg);
        let window = default_ert_window(Structure::RegFile, golden.cycles);
        let ccfg = CampaignConfig::new(
            Structure::RegFile,
            faults,
            RunMode::FirstDeviation {
                ert_window: Some(window),
            },
        );
        match run_xtier(&w, &cfg, &golden, &ccfg) {
            Ok(r) => println!("{r}"),
            Err(e) => {
                eprintln!("FAIL: {name}: execution-tier cross-check failed:\n{e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "xtier: all {} workloads bit-identical across tiers",
        workloads.len()
    );
}
