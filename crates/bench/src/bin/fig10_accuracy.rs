//! Fig. 10 — accuracy of AVGI vs. the exhaustive ("Real") AVF analysis.
//!
//! For every structure and workload: ground-truth Masked/SDC/Crash from
//! exhaustive SFI next to the AVGI prediction made with leave-one-out
//! weights (the held-out workload never contributes to its own weights).
//! The paper's claim: the distributions are virtually identical, SDC
//! included.

use avgi_bench::{leave_one_out_study, pct, print_header, ExpArgs};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(250);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 10 — Real vs. AVGI fault-effect distributions ({}, {} faults/campaign)",
        cfg.name, args.faults
    );

    let mut global_worst = 0.0f64;
    let mut global_sdc_worst = 0.0f64;
    for &s in Structure::all() {
        println!("\n--- {} ---", s.label());
        print_header(
            &[
                "workload", "real Msk", "avgi Msk", "real SDC", "avgi SDC", "real Crs", "avgi Crs",
                "maxdiff",
            ],
            &[14, 9, 9, 9, 9, 9, 9, 8],
        );
        let rows = leave_one_out_study(s, &workloads, &cfg, args.faults, args.seed);
        for r in &rows {
            let diff = r.real.max_abs_diff(r.predicted);
            global_worst = global_worst.max(diff);
            global_sdc_worst = global_sdc_worst.max((r.real.sdc - r.predicted.sdc).abs());
            println!(
                "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
                r.workload,
                pct(r.real.masked),
                pct(r.predicted.masked),
                pct(r.real.sdc),
                pct(r.predicted.sdc),
                pct(r.real.crash),
                pct(r.predicted.crash),
                pct(diff),
            );
        }
    }
    let margin =
        avgi_faultsim::error_margin(args.faults, avgi_faultsim::Confidence::C99).unwrap_or(1.0);
    println!(
        "\nworst per-class |real - AVGI| across all structures/workloads: {} \
         (SDC only: {}); statistical error margin at n={}: {}",
        pct(global_worst),
        pct(global_sdc_worst),
        args.faults,
        pct(margin),
    );
}
