//! Table II — AVF assessment cost: AVGI vs. traditional (accelerated)
//! SFI, per structure, summed over all workloads.
//!
//! The paper reports wall-clock days on two 192-core servers; the
//! host-independent analogue here is *post-injection simulated cycles*
//! (both flows skip pre-injection cycles via checkpointing, §IV.B). Three
//! campaigns per structure:
//!
//! * traditional — end-to-end runs (the baseline column),
//! * insights 1&2 — stop at the first commit-trace deviation,
//! * insight 3 — additionally stop Benign runs at the ERT window
//!   (the full AVGI flow; the paper's "Maximum Sim Cycles" column is the
//!   window used).

use avgi_bench::{print_header, report_campaign_health, ExpArgs, GoldenCache};
use avgi_core::ert::default_ert_window;
use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(200);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Table II — assessment cost per structure, {} faults x {} workloads ({})",
        args.faults,
        workloads.len(),
        cfg.name
    );
    print_header(
        &[
            "structure",
            "ERT window",
            "AVGI Mcyc",
            "trad Mcyc",
            "ins1&2",
            "ins3",
            "total",
        ],
        &[11, 11, 11, 11, 8, 8, 8],
    );

    let mut cache = GoldenCache::new();
    let mut grand = [0u64; 3];
    for &s in Structure::all() {
        let mut cost = [0u64; 3]; // [traditional, first-deviation, full AVGI]
        let mut window_desc = String::new();
        for w in &workloads {
            eprintln!("[table2] {} / {}", s, w.name);
            let golden = cache.get(w, &cfg);
            let window = default_ert_window(s, golden.cycles);
            window_desc = match s {
                Structure::Rob | Structure::Lq | Structure::Sq => "3%".to_string(),
                _ => format!("{window}"),
            };
            let modes = [
                RunMode::EndToEnd,
                RunMode::FirstDeviation { ert_window: None },
                RunMode::FirstDeviation {
                    ert_window: Some(window),
                },
            ];
            for (k, mode) in modes.into_iter().enumerate() {
                let c = run_campaign(
                    w,
                    &cfg,
                    &golden,
                    &CampaignConfig::new(s, args.faults, mode).with_seed(args.seed),
                );
                report_campaign_health(&c);
                cost[k] += c.total_post_inject_cycles();
            }
        }
        for k in 0..3 {
            grand[k] += cost[k];
        }
        let s12 = cost[0] as f64 / cost[1].max(1) as f64;
        let s3 = cost[0] as f64 / cost[2].max(1) as f64;
        println!(
            "{:>11} {:>11} {:>11.1} {:>11.1} {:>7.1}x {:>7.1}x {:>7.1}x",
            s.label(),
            window_desc,
            cost[2] as f64 / 1e6,
            cost[0] as f64 / 1e6,
            s12,
            s3,
            s3,
        );
    }
    println!(
        "\nTOTAL: AVGI {:.1} Mcycles vs traditional {:.1} Mcycles -> full-CPU speedup {:.1}x \
         (paper: 18.9 days vs 414.5 days, 22x; per-structure 6x-337x)",
        grand[2] as f64 / 1e6,
        grand[0] as f64 / 1e6,
        grand[0] as f64 / grand[2].max(1) as f64,
    );
    println!(
        "insights 1&2 alone: {:.1} Mcycles -> {:.1}x",
        grand[1] as f64 / 1e6,
        grand[0] as f64 / grand[1].max(1) as f64,
    );
}
