//! Ablation: next-line prefetching vs. cache-fault phenomenology.
//!
//! The paper attributes the long L1D/L2 residency windows partly to
//! prefetch traffic (§V.A). This ablation toggles the simulator's
//! next-line L2 prefetcher and compares, for the L2 data array: run time,
//! Benign fraction, and the escape (`ESC`) count on a streaming workload.

use avgi_bench::{pct, print_header, report_campaign_health, ExpArgs};
use avgi_core::{Imm, JointAnalysis};
use avgi_faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(300);
    let workloads =
        ["blowfish", "rijndael", "nas_mg"].map(|n| avgi_workloads::by_name(n).expect("known"));
    println!("Ablation — next-line L2 prefetch ({} faults)", args.faults);
    print_header(
        &["workload", "prefetch", "cycles", "l2miss", "benign", "ESC"],
        &[12, 9, 9, 8, 8, 6],
    );
    for w in &workloads {
        for prefetch in [false, true] {
            let mut cfg = args.config();
            cfg.prefetch_next_line = prefetch;
            let golden = golden_for(w, &cfg);
            let c = run_campaign(
                w,
                &cfg,
                &golden,
                &CampaignConfig::new(Structure::L2Data, args.faults, RunMode::Instrumented)
                    .with_seed(args.seed),
            );
            report_campaign_health(&c);
            let a = JointAnalysis::from_campaign(&c);
            println!(
                "{:>12} {:>9} {:>9} {:>8} {:>8} {:>6}",
                w.name,
                if prefetch { "on" } else { "off" },
                golden.cycles,
                golden.stats.l2_misses,
                pct(a.benign_count() as f64 / a.total as f64),
                a.imm_count(Imm::Esc),
            );
        }
    }
    println!(
        "\nprefetching shortens runs (fewer demand misses) and changes how long lines \
         sit in L2 — the residency mechanism the paper discusses."
    );
}
