//! Exploration tool: per-structure IMM distributions, final effects, and
//! manifestation latencies across workloads. Not a paper figure — the
//! fast way to inspect the simulator's fault phenomenology and derive ERT
//! windows and ESC calibration.

use avgi_bench::{analysis_grid, pct, print_header, ExpArgs};
use avgi_core::imm::{FaultEffect, Imm};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(200);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    let telemetry = avgi_bench::ExpTelemetry::from_args(&args);
    let analyses = analysis_grid(
        Structure::all(),
        &workloads,
        &cfg,
        args.faults,
        args.seed,
        Some(&telemetry),
        args.shard,
    );

    println!("\n== IMM distribution over corruptions (mean across workloads) ==");
    let mut cols = vec!["structure", "benign%"];
    cols.extend(Imm::all().iter().map(|i| i.label()));
    cols.extend(["masked%", "sdc%", "crash%", "maxlat"]);
    let widths = vec![11usize; cols.len()];
    print_header(&cols, &widths);
    for &s in Structure::all() {
        let group: Vec<_> = analyses.iter().filter(|a| a.structure == s).collect();
        let n = group.len() as f64;
        let benign: f64 = group
            .iter()
            .map(|a| a.benign_count() as f64 / a.total as f64)
            .sum::<f64>()
            / n;
        let mut dist = [0.0f64; 8];
        for a in &group {
            let d = a.imm_distribution();
            for k in 0..8 {
                dist[k] += d[k] / n;
            }
        }
        let mut eff = [0.0f64; 3];
        for a in &group {
            let d = a.effect_distribution();
            for k in 0..3 {
                eff[k] += d[k] / n;
            }
        }
        let maxlat = group
            .iter()
            .map(|a| a.max_manifestation_latency)
            .max()
            .unwrap_or(0);
        let mut row = format!("{:>11} {:>11}", s.label(), pct(benign));
        for &d in dist.iter().take(8) {
            row.push_str(&format!(" {:>10}", pct(d)));
        }
        row.push_str(&format!(
            " {:>10} {:>10} {:>10} {:>10}",
            pct(eff[FaultEffect::Masked.index()]),
            pct(eff[FaultEffect::Sdc.index()]),
            pct(eff[FaultEffect::Crash.index()]),
            maxlat
        ));
        println!("{row}");
    }

    println!("\n== per-workload ESC (no-deviation SDC) counts on cache data arrays ==");
    for &s in &[Structure::L1DData, Structure::L2Data] {
        for a in analyses.iter().filter(|a| a.structure == s) {
            let esc = a.imm_count(Imm::Esc);
            if esc > 0 {
                println!(
                    "{:>10} {:>14}: {} ESC of {} faults",
                    s.label(),
                    a.workload,
                    esc,
                    a.total
                );
            }
        }
    }
    telemetry.finish();
}
