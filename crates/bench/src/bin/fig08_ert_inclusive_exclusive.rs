//! Fig. 8 — IMM distribution: full execution ("inclusive") vs.
//! residency-window stop ("exclusive") for the L1 instruction cache.
//!
//! Insight 3's validation: stopping every simulation at the
//! effective-residency-time window loses (virtually) no manifestations,
//! so the IMM distribution is unchanged while the simulated cycles drop.

use avgi_bench::{pct, print_header, report_campaign_health, ExpArgs, GoldenCache};
use avgi_core::classify::classify_injection;
use avgi_core::ert::default_ert_window;
use avgi_core::imm::{Imm, ImmClass, NUM_IMMS};
use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(400);
    let cfg = args.config();
    let structure = Structure::L1IData;
    println!(
        "Fig. 8 — IMM distribution inclusive vs. exclusive (ERT stop) for {} ({}, {} faults)",
        structure.label(),
        cfg.name,
        args.faults
    );
    let mut cols = vec!["workload", "mode", "cost Mcyc"];
    cols.extend(Imm::all().iter().map(|i| i.label()));
    print_header(&cols, &[14; NUM_IMMS + 3]);

    let mut cache = GoldenCache::new();
    let mut worst_diff = 0.0f64;
    let mut pooled_inc = [0u64; NUM_IMMS];
    let mut pooled_exc = [0u64; NUM_IMMS];
    for w in avgi_workloads::all() {
        let golden = cache.get(&w, &cfg);
        // Inclusive: instrumented end-to-end.
        let inc_campaign = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(structure, args.faults, RunMode::Instrumented)
                .with_seed(args.seed),
        );
        report_campaign_health(&inc_campaign);
        let inc = avgi_core::JointAnalysis::from_campaign(&inc_campaign);
        // Trace-visible distribution (ESC excluded), matching what the
        // exclusive (early-stopped) flow can observe.
        let inc_dist = inc.visible_imm_distribution();
        let inc_cost = inc_campaign.total_post_inject_cycles();
        // Exclusive: first-deviation + ERT window.
        let window = default_ert_window(structure, golden.cycles);
        let exc_campaign = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(
                structure,
                args.faults,
                RunMode::FirstDeviation {
                    ert_window: Some(window),
                },
            )
            .with_seed(args.seed),
        );
        report_campaign_health(&exc_campaign);
        let mut exc_counts = [0u64; NUM_IMMS];
        let mut corruptions = 0u64;
        let mut exc_cost = 0u64;
        for r in &exc_campaign.results {
            exc_cost += r.post_inject_cycles;
            if let ImmClass::Manifested(i) = classify_injection(r) {
                exc_counts[i.index()] += 1;
                corruptions += 1;
            }
        }
        let exc_dist: Vec<f64> = exc_counts
            .iter()
            .map(|&c| {
                if corruptions > 0 {
                    c as f64 / corruptions as f64
                } else {
                    0.0
                }
            })
            .collect();

        let mut row = format!(
            "{:>14} {:>14} {:>14.1}",
            w.name,
            "inclusive",
            inc_cost as f64 / 1e6
        );
        for v in inc_dist {
            row.push_str(&format!(" {:>13}", pct(v)));
        }
        println!("{row}");
        let mut row = format!(
            "{:>14} {:>14} {:>14.1}",
            "",
            "exclusive",
            exc_cost as f64 / 1e6
        );
        for (k, v) in exc_dist.iter().enumerate() {
            // Per-workload comparison only where the sample is meaningful;
            // single-corruption cells swing by construction.
            if inc.corruption_count() >= 10 && corruptions >= 10 {
                worst_diff = worst_diff.max((v - inc_dist[k]).abs());
            }
            row.push_str(&format!(" {:>13}", pct(*v)));
        }
        println!("{row}");
        for imm in Imm::all() {
            pooled_inc[imm.index()] += inc.imm_count(*imm);
            pooled_exc[imm.index()] += exc_counts[imm.index()];
        }
    }
    let tot_inc: u64 = pooled_inc.iter().sum();
    let tot_exc: u64 = pooled_exc.iter().sum();
    let pooled_diff = Imm::all()
        .iter()
        .map(|i| {
            let a = pooled_inc[i.index()] as f64 / tot_inc.max(1) as f64;
            let b = pooled_exc[i.index()] as f64 / tot_exc.max(1) as f64;
            (a - b).abs()
        })
        .fold(0.0, f64::max);
    println!(
        "\npooled over all workloads: {tot_inc} corruptions inclusive vs {tot_exc} exclusive; \
         max per-IMM distribution difference {} \
         (per-workload max, where >=10 corruptions: {}) \
         (paper: virtually identical distributions)",
        pct(pooled_diff),
        pct(worst_diff),
    );
}
