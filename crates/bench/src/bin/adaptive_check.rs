//! CI smoke prover for the adaptive importance-sampled campaign driver.
//!
//! Two legs per workload, exiting non-zero on the first violation:
//!
//! 1. **Agreement** — a uniform campaign of `--faults` runs and an
//!    adaptive campaign budgeted at a third of that must produce AVF
//!    estimates whose 95 % Wilson intervals overlap. A reweighting bug
//!    (wrong likelihood ratio, weight on the wrong draw, broken fallback)
//!    separates the intervals immediately.
//! 2. **Determinism** — the same adaptive campaign on 1 and 4 worker
//!    threads must produce bit-identical results, weights, estimates and
//!    posterior grids: the schedule may adapt, but only on batch
//!    boundaries, so thread count must be invisible.
//!
//! The exhaustive statistical harness lives in
//! `faultsim/tests/adaptive_stats.rs`; this binary is the seconds-cheap
//! gate that keeps every push honest (the `xtier_check` idiom).
//!
//! Usage:
//!   adaptive_check [--workloads a,b] [--faults N] [--ci-target H]
//!                  [--seed S] [--small]

use avgi_bench::GoldenCache;
use avgi_faultsim::{
    run_adaptive, run_campaign, weighted_estimate, wilson_interval, AdaptiveConfig, AdaptiveReport,
    CampaignConfig, RunMode,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut workloads = vec!["crc32".to_string()];
    let mut faults = 480usize;
    let mut ci_target: Option<f64> = None;
    let mut seed = 1u64;
    let mut small = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => {
                workloads = it
                    .next()
                    .expect("--workloads needs a comma-separated list")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--faults" => {
                faults = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 30)
                    .expect("--faults needs a number >= 30")
            }
            "--ci-target" => {
                ci_target = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&h: &f64| h > 0.0)
                        .expect("--ci-target needs a positive half-width"),
                )
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--small" => small = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    let cfg = if small {
        MuarchConfig::small()
    } else {
        MuarchConfig::big()
    };

    let mut cache = GoldenCache::new();
    for name in &workloads {
        let w = avgi_workloads::by_name(name).unwrap_or_else(|| panic!("no workload {name}"));
        let golden = cache.get(&w, &cfg);

        // Uniform baseline at the full fault count.
        let ucfg =
            CampaignConfig::new(Structure::RegFile, faults, RunMode::EndToEnd).with_seed(seed);
        let uniform = run_campaign(&w, &cfg, &golden, &ucfg);
        let uw = vec![1.0; uniform.results.len()];
        let uest = weighted_estimate(&uniform.results, &uw, 0.95).expect("uniform estimate");
        let uci = wilson_interval(uest.avf, faults as f64, 0.95).expect("uniform interval");

        // Adaptive campaign at a third of the budget, 1 vs 4 threads.
        let budget = faults / 3;
        let adaptive = |threads: usize| -> AdaptiveReport {
            let base = CampaignConfig {
                threads,
                ..CampaignConfig::new(Structure::RegFile, budget, RunMode::EndToEnd)
            }
            .with_seed(seed);
            let mut acfg = AdaptiveConfig::new(base)
                .with_batch_runs(40)
                .with_explore(0.5);
            acfg.ci_target = ci_target;
            run_adaptive(&w, &cfg, &golden, &acfg)
                .unwrap_or_else(|e| fail(&format!("{name}: adaptive campaign failed: {e}")))
        };
        let a1 = adaptive(1);
        let a4 = adaptive(4);

        if a1.campaign.results != a4.campaign.results
            || a1.weights != a4.weights
            || a1.estimate != a4.estimate
            || a1.grid.to_json() != a4.grid.to_json()
            || a1.batches != a4.batches
        {
            fail(&format!(
                "{name}: adaptive schedule differs between 1 and 4 threads"
            ));
        }

        let est = &a1.estimate;
        let (alo, ahi) = est.avf_interval;
        if ahi < uci.0 || uci.1 < alo {
            fail(&format!(
                "{name}: adaptive AVF {:.4} [{alo:.4}, {ahi:.4}] ({} runs) disagrees with \
                 uniform AVF {:.4} [{:.4}, {:.4}] ({faults} runs)",
                est.avf, est.runs, uest.avf, uci.0, uci.1
            ));
        }
        if let Some(target) = ci_target {
            if a1.stopped_early && est.half_width() > target {
                fail(&format!(
                    "{name}: stopped early at half-width {:.4} above target {target}",
                    est.half_width()
                ));
            }
        }
        println!(
            "adaptive: {name}: avf {:.4} [{alo:.4}, {ahi:.4}] from {} of {budget} budgeted runs \
             (n_eff {:.0}, saved {:.0}%) vs uniform {:.4} [{:.4}, {:.4}] from {faults} runs; \
             1- and 4-thread schedules bit-identical",
            est.avf,
            est.runs,
            est.n_eff,
            a1.runs_saved_pct(),
            uest.avf,
            uci.0,
            uci.1
        );
    }
    println!(
        "adaptive: all {} workloads agree with their uniform baselines",
        workloads.len()
    );
}
