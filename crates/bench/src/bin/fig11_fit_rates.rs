//! Fig. 11 — Failures-in-Time rates per structure and for the whole chip,
//! exhaustive ("Real") vs. AVGI.
//!
//! FIT = 9.39e-6 FIT/bit × structure bits × AVF, consolidated over all
//! workloads (mean AVF). The paper's accuracy claim: ≤1.45 % per
//! structure, 0.2 % for the whole chip.

use avgi_bench::{leave_one_out_study, print_header, ExpArgs};
use avgi_core::fit::{structure_fit, RAW_FIT_PER_BIT};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(250);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 11 — FIT rates per structure and whole chip ({}, {} faults/campaign, raw {} FIT/bit)",
        cfg.name, args.faults, RAW_FIT_PER_BIT
    );
    print_header(
        &[
            "structure",
            "bits",
            "real AVF",
            "avgi AVF",
            "real FIT",
            "avgi FIT",
            "diff%",
        ],
        &[11, 10, 9, 9, 10, 10, 7],
    );

    let mut chip_real = 0.0;
    let mut chip_avgi = 0.0;
    let mut worst = 0.0f64;
    for &s in Structure::all() {
        let rows = leave_one_out_study(s, &workloads, &cfg, args.faults, args.seed);
        let n = rows.len() as f64;
        let real_avf = rows.iter().map(|r| r.real.avf()).sum::<f64>() / n;
        let avgi_avf = rows.iter().map(|r| r.predicted.avf()).sum::<f64>() / n;
        let real_fit = structure_fit(s, &cfg, real_avf);
        let avgi_fit = structure_fit(s, &cfg, avgi_avf);
        chip_real += real_fit;
        chip_avgi += avgi_fit;
        let diff = if real_fit > 0.0 {
            (avgi_fit - real_fit).abs() / real_fit * 100.0
        } else {
            0.0
        };
        worst = worst.max(diff);
        println!(
            "{:>11} {:>10} {:>8.2}% {:>8.2}% {:>10.4} {:>10.4} {:>6.2}%",
            s.label(),
            s.bit_count(&cfg),
            real_avf * 100.0,
            avgi_avf * 100.0,
            real_fit,
            avgi_fit,
            diff,
        );
    }
    let chip_diff = if chip_real > 0.0 {
        (chip_avgi - chip_real).abs() / chip_real * 100.0
    } else {
        0.0
    };
    println!(
        "\nCHIP: real {:.4} FIT vs AVGI {:.4} FIT -> {:.2}% difference \
         (paper: <=1.45% per structure, 0.2% chip); worst structure here {:.2}%",
        chip_real, chip_avgi, chip_diff, worst,
    );
}
