//! Fig. 4 — final fault-effect probabilities per IMM for the L1
//! instruction cache, across workloads.
//!
//! The paper's insight 2: P(Masked/SDC/Crash | IMM) is approximately
//! workload-invariant — the standard deviation across workloads stays
//! within a few percent. Print the three probability panels and the
//! per-IMM standard deviations.

use avgi_bench::{analysis_grid, pct, print_header, ExpArgs};
use avgi_core::imm::{FaultEffect, Imm, NUM_IMMS};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(400);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Fig. 4 — P(final effect | IMM) for L1I data across workloads ({}, {} faults/cell)",
        cfg.name, args.faults
    );
    let telemetry = avgi_bench::ExpTelemetry::from_args(&args);
    let analyses = analysis_grid(
        &[Structure::L1IData],
        &workloads,
        &cfg,
        args.faults,
        args.seed,
        Some(&telemetry),
        args.shard,
    );

    for effect in FaultEffect::all() {
        println!("\n--- P({effect} | IMM) ---");
        let mut cols = vec!["workload"];
        cols.extend(Imm::all().iter().map(|i| i.label()));
        print_header(&cols, &[14; NUM_IMMS + 1]);
        // Per-IMM collection for std-dev.
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_IMMS];
        for a in &analyses {
            let mut row = format!("{:>14}", a.workload);
            for imm in Imm::all() {
                match a.effect_given_imm(*imm) {
                    Some(d) => {
                        let p = d[effect.index()];
                        samples[imm.index()].push(p);
                        row.push_str(&format!(" {:>13}", pct(p)));
                    }
                    None => row.push_str(&format!(" {:>13}", "-")),
                }
            }
            println!("{row}");
        }
        let mut row = format!("{:>14}", "std-dev");
        for s in &samples {
            if s.len() > 1 {
                let mean = s.iter().sum::<f64>() / s.len() as f64;
                let sd =
                    (s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64).sqrt();
                row.push_str(&format!(" {:>13}", pct(sd)));
            } else {
                row.push_str(&format!(" {:>13}", "-"));
            }
        }
        println!("{row}");
    }
    println!("\npaper comparison: per-IMM std-dev across workloads in the 0.1%-2.4% band.");
    telemetry.finish();
}
