//! Coverage-directed differential fuzzing of the out-of-order simulator
//! against the `avgi-refmodel` architectural interpreter.
//!
//! Generates random AvgIsa programs (valid and invalid encodings, branches,
//! aliasing loads/stores), runs each on the full pipeline with commit
//! tracing, and lockstep-checks every committed instruction plus the final
//! output bytes against the reference model. Any divergence is shrunk to a
//! minimal reproducer and printed; the process exits nonzero.
//!
//! ```sh
//! cargo run --release -p avgi-bench --bin fuzz_diff -- \
//!     --programs 10000 --seed 0xD1FF5EED0001 --max-instrs 96
//! ```
//!
//! The run is deterministic for a given `--seed`, independent of
//! `--threads`; CI uses a small `--programs` smoke while the committed
//! corpus test (`crates/refmodel/tests/corpus.rs`) pins the full sweep.

use avgi_isa::instr::disassemble;
use avgi_refmodel::{run_fuzz, FuzzConfig};

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut cfg = FuzzConfig::new(2_000, 0xD1FF_5EED_0001);
    let mut small = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--programs" => {
                cfg.programs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--programs needs a number");
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .expect("--seed needs a number (decimal or 0x hex)");
            }
            "--max-instrs" => {
                cfg.max_instrs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-instrs needs a number");
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--small" => small = true,
            "--no-shrink" => cfg.shrink = false,
            other => panic!(
                "unknown argument `{other}` (supported: --programs N --seed S \
                 --max-instrs K --threads T --small --no-shrink)"
            ),
        }
    }
    if small {
        cfg.config = avgi_muarch::config::MuarchConfig::small();
    }

    eprintln!(
        "[fuzz_diff] {} programs, seed {:#x}, max {} instrs, config {}",
        cfg.programs, cfg.seed, cfg.max_instrs, cfg.config.name
    );
    let started = std::time::Instant::now();
    let report = run_fuzz(&cfg);
    let elapsed = started.elapsed();

    println!("{}", report.coverage.table());
    let (ops, all_ops) = report.coverage.opcode_coverage();
    let (pairs, all_pairs) = report.coverage.format_pair_coverage();
    println!(
        "programs {} | opcode coverage {ops}/{all_ops} | format-pair coverage {pairs}/{all_pairs}",
        report.programs
    );
    println!(
        "outcomes: {} completed, {} trapped, {} watchdogged | {} invalid-encoding commits",
        report.coverage.completed,
        report.coverage.trapped,
        report.coverage.watchdogged,
        report.coverage.invalid_commits
    );
    eprintln!(
        "[fuzz_diff] {:.2}s ({:.0} programs/s)",
        elapsed.as_secs_f64(),
        report.programs as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    if !report.coverage.uncovered_opcodes().is_empty() {
        eprintln!(
            "[fuzz_diff] warning: uncovered opcodes {:?} (raise --programs)",
            report.coverage.uncovered_opcodes()
        );
    }

    if report.failures.is_empty() {
        println!("no divergence between pipeline and reference model");
        return;
    }

    for f in &report.failures {
        eprintln!(
            "\n=== divergence: program {} (seed {:#x}, {} words, minimized to {}) ===",
            f.index,
            f.seed,
            f.original.len(),
            f.minimized.len()
        );
        eprintln!("minimized reproducer:");
        for (i, w) in f.minimized.iter().enumerate() {
            eprintln!("  [{i:3}] {w:#010x}  {}", disassemble(*w));
        }
        eprintln!("{}", f.divergence);
    }
    eprintln!(
        "\n[fuzz_diff] {} diverging program(s)",
        report.failures.len()
    );
    std::process::exit(1);
}
