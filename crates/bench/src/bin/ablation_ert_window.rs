//! Ablation: ERT window size vs. accuracy and cost.
//!
//! Insight 3 trades a stop window against manifestation coverage. For the
//! register file and the L1D data array, sweep windows from the measured
//! median latency up to 2× the maximum and report, per window: the
//! fraction of manifestations still captured, and the campaign cost.
//! This quantifies *why* the default windows in
//! [`avgi_core::ert::default_ert_window`] sit where they do.

use avgi_bench::{pct, print_header, report_campaign_health, ExpArgs, GoldenCache};
use avgi_core::classify::classify_injection;
use avgi_core::ImmClass;
use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(250);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    println!(
        "Ablation — ERT window sweep ({}, {} faults x {} workloads)",
        cfg.name,
        args.faults,
        workloads.len()
    );

    for structure in [Structure::RegFile, Structure::L1DData] {
        // Reference: unlimited window (insights 1&2 only).
        let mut cache = GoldenCache::new();
        let mut reference_manifested = 0u64;
        let mut per_workload = Vec::new();
        for w in &workloads {
            let golden = cache.get(w, &cfg);
            let c = run_campaign(
                w,
                &cfg,
                &golden,
                &CampaignConfig::new(
                    structure,
                    args.faults,
                    RunMode::FirstDeviation { ert_window: None },
                )
                .with_seed(args.seed),
            );
            report_campaign_health(&c);
            let manifested = c
                .results
                .iter()
                .filter(|r| matches!(classify_injection(r), ImmClass::Manifested(_)))
                .count() as u64;
            reference_manifested += manifested;
            per_workload.push((w.clone(), golden));
        }

        println!(
            "\n--- {} (reference: {} manifestations) ---",
            structure.label(),
            reference_manifested
        );
        print_header(
            &["window", "captured", "coverage", "cost Mcyc"],
            &[10, 9, 9, 10],
        );
        for window in [200u64, 800, 2_000, 5_000, 12_000, 30_000] {
            let mut captured = 0u64;
            let mut cost = 0u64;
            for (w, golden) in &per_workload {
                let c = run_campaign(
                    w,
                    &cfg,
                    golden,
                    &CampaignConfig::new(
                        structure,
                        args.faults,
                        RunMode::FirstDeviation {
                            ert_window: Some(window),
                        },
                    )
                    .with_seed(args.seed),
                );
                report_campaign_health(&c);
                cost += c.total_post_inject_cycles();
                captured += c
                    .results
                    .iter()
                    .filter(|r| matches!(classify_injection(r), ImmClass::Manifested(_)))
                    .count() as u64;
            }
            println!(
                "{window:>10} {captured:>9} {:>9} {:>10.1}",
                pct(captured as f64 / reference_manifested.max(1) as f64),
                cost as f64 / 1e6,
            );
        }
    }
    println!(
        "\nthe knee of coverage-vs-cost is where the default windows sit; the paper's \
         'pessimistic timeframes' (§V.A) correspond to the high-coverage end."
    );
}
