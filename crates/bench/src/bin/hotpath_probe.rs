//! Breaks down where campaign wall-clock goes: golden capture, checkpoint
//! construction, per-cycle simulation rate, snapshot spawn/restore cost, and
//! the per-run prefix/window split. Companion to the `bench-prof` cargo
//! profile for `perf`/flamegraph sessions.
//!
//! Usage: `hotpath_probe [--workload NAME] [--faults N] [--small]`

use avgi_core::ert::default_ert_window;
use avgi_faultsim::{
    golden_for, run_campaign, watchdog_budget, CampaignConfig, CheckpointSet, RunMode,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::pipeline::Sim;
use avgi_muarch::run::RunControl;
use std::time::Instant;

fn main() {
    let mut workload = "crc32".to_string();
    let mut faults = 120usize;
    let mut small = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => workload = it.next().expect("--workload needs a name"),
            "--faults" => {
                faults = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--faults needs a number")
            }
            "--small" => small = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    let w = avgi_workloads::by_name(&workload).unwrap_or_else(|| panic!("no workload {workload}"));
    let cfg = if small {
        MuarchConfig::small()
    } else {
        MuarchConfig::big()
    };

    let t0 = Instant::now();
    let golden = golden_for(&w, &cfg);
    let golden_t = t0.elapsed();
    println!(
        "golden_capture               {:>12.2} ms  ({} cycles, {:.0} ns/cycle)",
        golden_t.as_secs_f64() * 1e3,
        golden.cycles,
        golden_t.as_secs_f64() * 1e9 / golden.cycles as f64
    );

    let t0 = Instant::now();
    let ckpts = CheckpointSet::build(&w, &cfg, &golden, 8).unwrap();
    println!(
        "checkpoint_build (8)         {:>12.2} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Raw fault-free simulation rate with a golden comparison attached (the
    // per-cycle cost every injected run pays).
    let ctl = RunControl {
        max_cycles: watchdog_budget(golden.cycles),
        golden: Some(golden.clone()),
        ..Default::default()
    };
    let mut sim = Sim::new(&w.program, cfg.clone());
    let t0 = Instant::now();
    assert!(sim.run_to_cycle(golden.cycles - 1, &ctl).is_none());
    let dt = t0.elapsed();
    println!(
        "fault_free_resim             {:>12.2} ms  ({:.0} ns/cycle)",
        dt.as_secs_f64() * 1e3,
        dt.as_secs_f64() * 1e9 / golden.cycles as f64
    );

    // Architectural interpreter tiers: the reference step loop vs the
    // pre-decoded fast tier (what golden verification and masked re-runs
    // actually pay per invocation, block-cache build included).
    let t0 = Instant::now();
    let (_, ref_run) =
        avgi_refmodel::reference_run_tier(&w.program, avgi_refmodel::ExecTier::Reference, 0);
    let ref_dt = t0.elapsed();
    println!(
        "ref_model_run                {:>12.2} ms  ({} steps, {:.0} ns/step)",
        ref_dt.as_secs_f64() * 1e3,
        ref_run.steps,
        ref_dt.as_secs_f64() * 1e9 / ref_run.steps.max(1) as f64
    );
    let t0 = Instant::now();
    let (_, fast_run) =
        avgi_refmodel::reference_run_tier(&w.program, avgi_refmodel::ExecTier::Fast, 0);
    let fast_dt = t0.elapsed();
    assert_eq!(
        ref_run.steps, fast_run.steps,
        "tiers must retire in lockstep"
    );
    println!(
        "fast_tier_run                {:>12.2} ms  ({:.0} ns/step, {:.1}x vs reference)",
        fast_dt.as_secs_f64() * 1e3,
        fast_dt.as_secs_f64() * 1e9 / fast_run.steps.max(1) as f64,
        ref_dt.as_secs_f64() / fast_dt.as_secs_f64().max(1e-9)
    );

    // Snapshot spawn + restore costs at a mid-run checkpoint.
    let snap = ckpts.nearest(golden.cycles / 2);
    let t0 = Instant::now();
    let mut scratch = snap.spawn();
    println!(
        "snapshot_spawn               {:>12.2} us",
        t0.elapsed().as_secs_f64() * 1e6
    );
    assert!(scratch.run_to_cycle(snap.cycle() + 500, &ctl).is_none());
    let t0 = Instant::now();
    scratch.restore_from(snap);
    println!(
        "snapshot_restore             {:>12.2} us",
        t0.elapsed().as_secs_f64() * 1e6
    );

    // End-to-end campaign at several thread counts.
    let window = default_ert_window(Structure::RegFile, golden.cycles);
    for threads in [1usize, 4] {
        let ccfg = CampaignConfig {
            threads,
            ..CampaignConfig::new(
                Structure::RegFile,
                faults,
                RunMode::FirstDeviation {
                    ert_window: Some(window),
                },
            )
        };
        let t0 = Instant::now();
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(c.len(), faults);
        println!(
            "campaign t={threads} ({faults} faults)  {:>12.0} runs/sec  ({:.2} ms/run)",
            faults as f64 / secs,
            secs * 1e3 / faults as f64
        );
    }
}
