//! Distributed-campaign coordinator (`DESIGN.md` §10).
//!
//! Binds a TCP endpoint, serves cycle-sorted fault leases to any
//! `grid_worker` that connects, and prints the merged campaign report once
//! every index has exactly one accepted result. With `--verify` the same
//! campaign is additionally run single-process in this process and the
//! merged results plus telemetry deterministic counters are compared
//! bit-for-bit — the acceptance check the CI smoke test leans on.
//!
//! ```text
//! grid_coordinator --workload bitcount --structure RegFile --faults 200 \
//!     --bind 127.0.0.1:4810 [--batch N] [--lease-ms N] [--journal PATH] \
//!     [--deadline-s N] [--seed S] [--small] [--mode end|instr] [--verify]
//! ```

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_grid::{Coordinator, GridConfig, GridOutcome};
use avgi_muarch::Structure;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    workload: String,
    structure: Structure,
    faults: usize,
    seed: u64,
    small: bool,
    mode: RunMode,
    bind: String,
    batch: usize,
    lease_ms: u64,
    journal: Option<PathBuf>,
    fsync_every: u64,
    deadline_s: Option<u64>,
    verify: bool,
}

const USAGE: &str = "grid_coordinator --workload NAME --structure IDENT [--faults N] \
     [--seed S] [--small] [--mode end|instr] [--bind ADDR] [--batch N] \
     [--lease-ms N] [--journal PATH] [--fsync-every N] [--deadline-s N] [--verify]";

fn parse_args() -> Args {
    let mut args = Args {
        workload: "bitcount".into(),
        structure: Structure::RegFile,
        faults: 200,
        seed: 0xA461_0001,
        small: false,
        mode: RunMode::Instrumented,
        bind: "127.0.0.1:4810".into(),
        batch: 16,
        lease_ms: 30_000,
        journal: None,
        fsync_every: 0,
        deadline_s: None,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    let next = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = next("--workload", &mut it),
            "--structure" => {
                let s = next("--structure", &mut it);
                args.structure =
                    Structure::from_ident(&s).unwrap_or_else(|| panic!("unknown structure `{s}`"));
            }
            "--faults" => args.faults = next("--faults", &mut it).parse().expect("--faults N"),
            "--seed" => args.seed = next("--seed", &mut it).parse().expect("--seed S"),
            "--small" => args.small = true,
            "--mode" => {
                args.mode = match next("--mode", &mut it).as_str() {
                    "end" => RunMode::EndToEnd,
                    "instr" => RunMode::Instrumented,
                    other => panic!("unknown mode `{other}` (end|instr)"),
                };
            }
            "--bind" => args.bind = next("--bind", &mut it),
            "--batch" => args.batch = next("--batch", &mut it).parse().expect("--batch N"),
            "--lease-ms" => {
                args.lease_ms = next("--lease-ms", &mut it).parse().expect("--lease-ms N");
            }
            "--journal" => args.journal = Some(PathBuf::from(next("--journal", &mut it))),
            "--fsync-every" => {
                args.fsync_every = next("--fsync-every", &mut it)
                    .parse()
                    .expect("--fsync-every N");
            }
            "--deadline-s" => {
                args.deadline_s = Some(
                    next("--deadline-s", &mut it)
                        .parse()
                        .expect("--deadline-s N"),
                );
            }
            "--verify" => args.verify = true,
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    args
}

/// Reruns the campaign single-process and compares it to the grid outcome.
/// Returns `false` on any divergence.
fn verify(args: &Args, ccfg: &CampaignConfig, outcome: &GridOutcome) -> bool {
    let w = avgi_workloads::by_name(&args.workload).expect("workload verified at bind");
    let cfg = preset(args).config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let collector = Arc::new(MetricsCollector::new());
    let reference = run_campaign(
        &w,
        &cfg,
        &golden,
        &ccfg.clone().with_observer(collector.clone()),
    );
    let mut ok = true;
    if outcome.result.results != reference.results {
        eprintln!("[verify] FAIL: merged results differ from single-process reference");
        ok = false;
    }
    let grid_counters = outcome.telemetry.deterministic_counters_json();
    let ref_counters = collector.snapshot().deterministic_counters_json();
    if grid_counters != ref_counters {
        eprintln!("[verify] FAIL: merged telemetry counters differ");
        eprintln!("[verify]   grid: {grid_counters}");
        eprintln!("[verify]    ref: {ref_counters}");
        ok = false;
    }
    if ok {
        eprintln!(
            "[verify] OK: {} results and telemetry counters bit-identical to single-process",
            reference.results.len()
        );
    }
    ok
}

fn preset(args: &Args) -> avgi_grid::ConfigPreset {
    if args.small {
        avgi_grid::ConfigPreset::Small
    } else {
        avgi_grid::ConfigPreset::Big
    }
}

fn main() {
    let args = parse_args();
    let w = avgi_workloads::by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload `{}`", args.workload));
    let ccfg = CampaignConfig::new(args.structure, args.faults, args.mode).with_seed(args.seed);
    let grid = GridConfig {
        bind: args.bind.clone(),
        batch: args.batch,
        lease_timeout: Duration::from_millis(args.lease_ms),
        journal: args.journal.clone(),
        durability: if args.fsync_every > 0 {
            avgi_faultsim::DurabilityPolicy::FsyncEveryN(args.fsync_every)
        } else {
            avgi_faultsim::DurabilityPolicy::Flush
        },
        deadline: args.deadline_s.map(Duration::from_secs),
        ..GridConfig::default()
    };
    let coord = Coordinator::bind(&w, preset(&args), &ccfg, &grid)
        .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let addr = coord.local_addr().expect("bound socket has an address");
    eprintln!(
        "[coordinator] serving {} / {} ({} faults, batch {}, lease {}ms) on {addr}",
        args.structure, args.workload, args.faults, args.batch, args.lease_ms
    );
    let outcome = match coord.run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("[coordinator] campaign failed: {e}");
            std::process::exit(1);
        }
    };
    print!(
        "{}",
        avgi_core::grid_report(&outcome.result, &outcome.telemetry)
    );
    eprintln!(
        "[coordinator] workers {} (+{} re-attached) | leases {} granted / {} reassigned | \
         batches rejected {} | protocol errors {} ({} corrupt frames) | \
         panics {} | shed {} | resumed {}",
        outcome.stats.workers_seen,
        outcome.stats.sessions_reattached,
        outcome.stats.leases_granted,
        outcome.stats.leases_reassigned,
        outcome.stats.batches_rejected,
        outcome.stats.protocol_errors,
        outcome.stats.corrupt_frames,
        outcome.stats.handler_panics,
        outcome.stats.connections_shed,
        outcome.stats.resumed,
    );
    if args.verify && !verify(&args, &ccfg, &outcome) {
        std::process::exit(1);
    }
}
