//! Full AVF + FIT report for one workload across all twelve structures —
//! the end-user tool a reliability engineer would actually run.
//!
//! ```sh
//! cargo run --release -p avgi-bench --bin avf_report -- --faults 300
//! ```

use avgi_bench::{pct, print_header, ExpArgs, ExpTelemetry, GoldenCache};
use avgi_core::fit::structure_fit;
use avgi_core::pipeline::exhaustive_observed;
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(250);
    let telemetry = ExpTelemetry::from_args(&args);
    let cfg = args.config();
    let name = args
        .workload
        .clone()
        .unwrap_or_else(|| "dijkstra".to_string());
    let w = avgi_workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`; see avgi_workloads::names()"));
    let mut cache = GoldenCache::new();
    {
        let golden = cache.get(&w, &cfg);
        println!(
            "\n=== {} ({} cycles, {} B output, {}) ===",
            w.name,
            golden.cycles,
            w.output_bytes(),
            cfg.name
        );
        print_header(
            &["structure", "Masked", "SDC", "Crash", "AVF", "FIT"],
            &[11, 8, 8, 8, 8, 10],
        );
        let mut chip_fit = 0.0;
        for &s in Structure::all() {
            let e = exhaustive_observed(
                &w,
                &cfg,
                &golden,
                s,
                args.faults,
                args.seed,
                Some(telemetry.observer()),
            );
            let fit = structure_fit(s, &cfg, e.effect.avf());
            chip_fit += fit;
            println!(
                "{:>11} {:>8} {:>8} {:>8} {:>8} {:>10.4}",
                s.label(),
                pct(e.effect.masked),
                pct(e.effect.sdc),
                pct(e.effect.crash),
                pct(e.effect.avf()),
                fit,
            );
        }
        println!("{:>11} {:>46.4}", "CHIP FIT", chip_fit);
    }
    telemetry.finish();
}
