//! Campaign submission client for `grid_service` (`DESIGN.md` §15).
//!
//! Talks to the service's HTTP surface: submits one campaign, optionally
//! waits for completion, and with `--verify` reruns the identical campaign
//! single-process in this process and compares the service's merged report
//! byte-for-byte — the per-tenant bit-identity acceptance check.
//!
//! ```text
//! grid_submit --addr 127.0.0.1:4811 --workload bitcount --structure RegFile \
//!     --faults 200 [--seed S] [--small] [--mode end|instr] [--burst N] \
//!     [--checkpoints N] [--priority N] [--weight N] [--quota N] \
//!     [--wait] [--verify] [--timeout-s N]
//! ```

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig};
use avgi_grid::service::reference_report;
use avgi_grid::{ConfigPreset, SubmitSpec};
use avgi_muarch::Structure;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "grid_submit --addr ADDR --workload NAME --structure IDENT [--faults N] \
     [--seed S] [--small] [--mode end|instr] [--burst N] [--checkpoints N] \
     [--priority N] [--weight N] [--quota N] [--wait] [--verify] [--timeout-s N]";

/// One blocking request/response exchange (the surface is one-shot:
/// `Connection: close`). Returns `(status, body)`.
fn http(addr: &str, request: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n"),
    )
}

/// Pulls the integer value of a top-level `"key":N` out of a flat JSON
/// object (the status body is service-generated, so this stays simple).
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat)? + pat.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn main() {
    let mut addr = "127.0.0.1:4811".to_string();
    let mut spec = SubmitSpec::new("bitcount", Structure::RegFile, 200, 0xA461_0001);
    let mut wait = false;
    let mut verify = false;
    let mut timeout = Duration::from_secs(600);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
        };
        match a.as_str() {
            "--addr" => addr = next("--addr"),
            "--workload" => spec.workload = next("--workload"),
            "--structure" => {
                let s = next("--structure");
                spec.structure =
                    Structure::from_ident(&s).unwrap_or_else(|| panic!("unknown structure `{s}`"));
            }
            "--faults" => spec.faults = next("--faults").parse().expect("--faults N"),
            "--seed" => spec.seed = next("--seed").parse().expect("--seed S"),
            "--small" => spec.preset = ConfigPreset::Small,
            "--mode" => {
                spec.mode = match next("--mode").as_str() {
                    "end" => avgi_faultsim::RunMode::EndToEnd,
                    "instr" => avgi_faultsim::RunMode::Instrumented,
                    other => panic!("unknown mode `{other}` (end|instr)"),
                };
            }
            "--burst" => spec.burst_width = next("--burst").parse().expect("--burst N"),
            "--checkpoints" => {
                spec.checkpoints = next("--checkpoints").parse().expect("--checkpoints N");
            }
            "--priority" => spec.priority = next("--priority").parse().expect("--priority N"),
            "--weight" => spec.weight = next("--weight").parse().expect("--weight N"),
            "--quota" => spec.quota = next("--quota").parse().expect("--quota N"),
            "--wait" => wait = true,
            "--verify" => verify = true,
            "--timeout-s" => {
                timeout = Duration::from_secs(next("--timeout-s").parse().expect("--timeout-s N"));
            }
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }

    let body = spec.to_json();
    let request = format!(
        "POST /campaigns HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, resp) = http(&addr, &request).unwrap_or_else(|e| panic!("submit failed: {e}"));
    if status != 201 {
        eprintln!("[submit] rejected ({status}): {resp}");
        std::process::exit(1);
    }
    let id = json_u64(&resp, "id").expect("submit response carries an id");
    eprintln!("[submit] campaign {id} accepted ({} faults)", spec.faults);
    if !wait && !verify {
        println!("{resp}");
        return;
    }

    let started = Instant::now();
    let final_body = loop {
        if started.elapsed() > timeout {
            eprintln!("[submit] timed out waiting for campaign {id}");
            std::process::exit(1);
        }
        match get(&addr, &format!("/campaigns/{id}")) {
            Ok((200, body)) if body.contains("\"done\":true") => break body,
            Ok((200, _)) | Err(_) => {}
            Ok((status, body)) => {
                eprintln!("[submit] status poll failed ({status}): {body}");
                std::process::exit(1);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    println!("{final_body}");
    if !verify {
        return;
    }

    // The report is the tail of the status body: `...,"report":{...}}`.
    let report = final_body
        .find("\"report\":")
        .map(|at| &final_body[at + "\"report\":".len()..final_body.len() - 1])
        .expect("finished campaign carries a report");
    let w = avgi_workloads::by_name(&spec.workload).expect("workload accepted by the service");
    let cfg = spec.preset.config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let mut ccfg = CampaignConfig::new(spec.structure, spec.faults, spec.mode)
        .with_seed(spec.seed)
        .with_burst(spec.burst_width);
    ccfg.checkpoints = spec.checkpoints;
    let collector = Arc::new(MetricsCollector::new());
    let reference = run_campaign(&w, &cfg, &golden, &ccfg.with_observer(collector.clone()));
    let expect = reference_report(
        &spec.workload,
        spec.structure,
        golden.cycles,
        &reference.results,
        &collector.snapshot(),
    );
    if report == expect {
        eprintln!(
            "[verify] OK: campaign {id} report bit-identical to single-process ({} results)",
            reference.results.len()
        );
    } else {
        eprintln!("[verify] FAIL: campaign {id} report differs from single-process reference");
        eprintln!("[verify] service: {report}");
        eprintln!("[verify]   local: {expect}");
        std::process::exit(1);
    }
}
