//! Multi-workload campaign throughput trajectory, the CI ratchet, and the
//! `--xcheck` entry point of the batched engine.
//!
//! For each benched workload this measures end-to-end campaign throughput in
//! the AVGI production mode (`FirstDeviation` + default ERT window,
//! checkpointed, shared-prefix batched) and then — unless `--no-xcheck` —
//! cross-checks the batched engine against the unbatched engine and the
//! architectural reference model ([`avgi_faultsim::run_xcheck`]). The
//! numbers land in `BENCH_trajectory.json` at the repository root; CI
//! re-runs the bench with `--check BENCH_trajectory.json`, which fails the
//! job if any workload regresses more than 10% below its committed
//! throughput.
//!
//! Each row also times one full architectural run on both execution tiers
//! (the classic reference interpreter vs the pre-decoded fast tier) and
//! records the speedup — the figure of merit for fast-tier golden
//! verification and masked re-runs. `--xtier` additionally runs the
//! four-leg execution-tier prover ([`avgi_faultsim::run_xtier`]) per
//! workload.
//!
//! `--adaptive` appends an importance-sampling leg per workload: an
//! adaptive campaign ([`avgi_faultsim::run_adaptive`]) budgeted at the
//! uniform Leveugle sample size for the `--ci-target` half-width, stopping
//! early once its Wilson interval meets the target. The recorded
//! `adaptive_runs_saved_pct` tracks how much of the uniform prescription
//! the adaptive campaign left unspent — the run-count reduction headline.
//! The leg is measured only when (re)generating the JSON; `--check` mode
//! skips it so the ratchet stays cheap.
//!
//! Usage:
//!   bench_trajectory [--workloads a,b,c] [--faults N] [--trials N]
//!                    [--small] [--no-xcheck] [--xtier] [--adaptive]
//!                    [--ci-target H] [--check PATH] [--out PATH]
//!
//! Golden captures honor the `AVGI_GOLDEN_CACHE` directory, so a sweep over
//! several invocations captures each golden run once.

use avgi_bench::GoldenCache;
use avgi_core::ert::default_ert_window;
use avgi_faultsim::json::{self, Json};
use avgi_faultsim::{
    run_adaptive, run_campaign, run_xcheck, run_xtier, sample_size_at, AdaptiveConfig,
    CampaignConfig, RunMode,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_refmodel::ExecTier;
use std::time::Instant;

/// Throughput may drop this far below the committed number before the
/// ratchet fails (absorbs shared-runner noise; real regressions are bigger).
const RATCHET_TOLERANCE: f64 = 0.10;

struct WorkloadRow {
    name: String,
    faults: usize,
    golden_cycles: u64,
    runs_per_sec: u64,
    runs_per_cpu_sec: u64,
    us_per_run: u64,
    ref_steps_per_sec: u64,
    fast_steps_per_sec: u64,
    tier_speedup: f64,
    xcheck: Option<avgi_faultsim::XcheckReport>,
    xtier: Option<avgi_faultsim::XtierReport>,
    adaptive: Option<AdaptiveLeg>,
}

/// The importance-sampling leg: how far under the uniform Leveugle
/// prescription the CI-early-stopped adaptive campaign landed.
struct AdaptiveLeg {
    /// Run budget = uniform sample size for the `--ci-target` half-width.
    budget: usize,
    /// Runs the adaptive campaign actually spent.
    runs: usize,
    /// Budget left unspent by CI early stopping, in percent.
    runs_saved_pct: f64,
    /// Horvitz–Thompson AVF estimate.
    avf: f64,
    /// Achieved Wilson half-width at stop.
    half_width: f64,
}

/// Times one full architectural run of `program` on `tier`, best of five
/// (scheduling noise is one-sided). Returns (steps, seconds). The fast
/// tier's block cache is built once outside the timed region — in real use
/// it is `Arc`-shared across every execution of the program (golden
/// verification, masked re-runs, fuzz reference sides), so the steady-state
/// per-run figure is the one a campaign actually pays.
fn time_tier(program: &avgi_muarch::program::Program, tier: ExecTier) -> (u64, f64) {
    let cache = std::sync::Arc::new(avgi_refmodel::BlockCache::build(program));
    let mut best = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..5 {
        let t0 = Instant::now();
        let run = match tier {
            ExecTier::Reference => avgi_refmodel::reference_run_tier(program, tier, 0).1,
            ExecTier::Fast => avgi_refmodel::FastModel::with_cache(program, cache.clone())
                .run(avgi_refmodel::DEFAULT_MAX_STEPS),
        };
        best = best.min(t0.elapsed().as_secs_f64());
        steps = run.steps;
    }
    (steps, best)
}

/// Process CPU seconds (utime + stime) from `/proc/self/stat`, `None` on
/// non-Linux hosts. CPU time does not advance while the process is
/// descheduled, so throughput normalized by it is immune to noisy-neighbor
/// contention on shared runners — which is why the ratchet compares
/// runs-per-CPU-second, not wall-clock.
fn cpu_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; real fields start after the ')'.
    let mut fields = stat.rsplit_once(')')?.1.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every mainstream Linux.
    Some((utime + stime) / 100.0)
}

fn main() {
    let mut workloads = vec![
        "crc32".to_string(),
        "qsort".to_string(),
        "rijndael".to_string(),
    ];
    let mut faults = 240usize;
    let mut trials = 5usize;
    let mut small = false;
    let mut xcheck = true;
    let mut xtier = false;
    let mut adaptive = false;
    let mut ci_target = 0.01f64;
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => {
                workloads = it
                    .next()
                    .expect("--workloads needs a comma-separated list")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--faults" => {
                faults = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--faults needs a number")
            }
            "--trials" => {
                trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--trials needs a positive number")
            }
            "--small" => small = true,
            "--no-xcheck" => xcheck = false,
            "--xcheck" => xcheck = true,
            "--xtier" => xtier = true,
            "--adaptive" => adaptive = true,
            "--ci-target" => {
                ci_target = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&h: &f64| h > 0.0 && h < 0.5)
                    .expect("--ci-target needs a half-width in (0, 0.5)")
            }
            "--check" => check = Some(it.next().expect("--check needs a path")),
            "--out" => out = Some(it.next().expect("--out needs a path")),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let cfg = if small {
        MuarchConfig::small()
    } else {
        MuarchConfig::big()
    };

    let mut cache = GoldenCache::new();
    let subjects: Vec<_> = workloads
        .iter()
        .map(|name| {
            let w = avgi_workloads::by_name(name).unwrap_or_else(|| panic!("no workload {name}"));
            let golden = cache.get(&w, &cfg);
            let window = default_ert_window(Structure::RegFile, golden.cycles);
            let ccfg = CampaignConfig::new(
                Structure::RegFile,
                faults,
                RunMode::FirstDeviation {
                    ert_window: Some(window),
                },
            )
            .with_checkpoints(8);
            (w, golden, ccfg)
        })
        .collect();
    let batch = subjects.first().map_or(0, |(_, _, c)| c.batch);
    let threads = subjects.first().map_or(0, |(_, _, c)| c.threads);

    // Trials are interleaved round-robin across workloads so a host
    // contention burst cannot swallow every trial of one workload. Two
    // statistics per workload: best-of-`trials` wall-clock throughput (the
    // human-facing number — max, because scheduling noise is one-sided) and
    // total-CPU-time throughput (the ratchet number — summed over all
    // trials so the 10 ms USER_HZ granularity averages out).
    let mut best_secs = vec![f64::INFINITY; subjects.len()];
    let mut total_cpu = vec![0.0f64; subjects.len()];
    for _ in 0..trials {
        for (i, (w, golden, ccfg)) in subjects.iter().enumerate() {
            let cpu0 = cpu_secs();
            let t0 = Instant::now();
            let c = run_campaign(w, &cfg, golden, ccfg);
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(c.len(), faults);
            best_secs[i] = best_secs[i].min(secs);
            total_cpu[i] += match (cpu0, cpu_secs()) {
                (Some(a), Some(b)) => (b - a).max(0.0),
                _ => secs,
            };
        }
    }

    let mut rows = Vec::new();
    for (i, (w, golden, ccfg)) in subjects.iter().enumerate() {
        let secs = best_secs[i];
        let rps = (faults as f64 / secs.max(1e-9)).round() as u64;
        let cpu_rps = ((faults * trials) as f64 / total_cpu[i].max(1e-9)).round() as u64;
        println!(
            "{:<14} {rps:>8} runs/sec  ({cpu_rps} runs/cpu-sec, {:>6.0} us/run, {} golden \
             cycles, best of {trials})",
            w.name,
            secs * 1e6 / faults as f64,
            golden.cycles
        );
        // Execution-tier timing: the same program on both interpreter tiers.
        let (ref_steps, ref_secs) = time_tier(&w.program, ExecTier::Reference);
        let (fast_steps, fast_secs) = time_tier(&w.program, ExecTier::Fast);
        assert_eq!(
            ref_steps, fast_steps,
            "{}: tiers retired different step counts",
            w.name
        );
        let tier_speedup = ref_secs / fast_secs.max(1e-9);
        let sps = |steps: u64, secs: f64| (steps as f64 / secs.max(1e-9)).round() as u64;
        println!(
            "  tier: fast {} Msteps/s vs reference {} Msteps/s ({tier_speedup:.1}x)",
            sps(fast_steps, fast_secs) / 1_000_000,
            sps(ref_steps, ref_secs) / 1_000_000,
        );
        let report = if xcheck {
            match run_xcheck(w, &cfg, golden, ccfg) {
                Ok(r) => {
                    println!("  {r}");
                    Some(r)
                }
                Err(e) => {
                    eprintln!("FAIL: {}: batched engine cross-check failed:\n{e}", w.name);
                    std::process::exit(1);
                }
            }
        } else {
            None
        };
        let tier_report = if xtier {
            match run_xtier(w, &cfg, golden, ccfg) {
                Ok(r) => {
                    println!("  {r}");
                    Some(r)
                }
                Err(e) => {
                    eprintln!("FAIL: {}: execution-tier cross-check failed:\n{e}", w.name);
                    std::process::exit(1);
                }
            }
        } else {
            None
        };
        // The adaptive leg is part of JSON (re)generation only: the ratchet
        // compares throughput, and run-count savings are not a throughput.
        let adaptive_leg = if adaptive && check.is_none() {
            let budget = sample_size_at(ci_target, 0.95).expect("validated ci target");
            let base = CampaignConfig {
                faults: budget,
                ..ccfg.clone()
            };
            let acfg = AdaptiveConfig::new(base)
                .with_explore(0.5)
                .with_ci_target(ci_target);
            match run_adaptive(w, &cfg, golden, &acfg) {
                Ok(rep) => {
                    println!(
                        "  adaptive: {} of {budget} uniform-prescribed runs to half-width \
                         {:.4} (target {ci_target}), avf {:.4}, saved {:.1}%",
                        rep.runs_used(),
                        rep.estimate.half_width(),
                        rep.estimate.avf,
                        rep.runs_saved_pct()
                    );
                    Some(AdaptiveLeg {
                        budget,
                        runs: rep.runs_used(),
                        runs_saved_pct: rep.runs_saved_pct(),
                        avf: rep.estimate.avf,
                        half_width: rep.estimate.half_width(),
                    })
                }
                Err(e) => {
                    eprintln!("FAIL: {}: adaptive campaign failed: {e}", w.name);
                    std::process::exit(1);
                }
            }
        } else {
            None
        };
        rows.push(WorkloadRow {
            name: w.name.to_string(),
            faults,
            golden_cycles: golden.cycles,
            runs_per_sec: rps,
            runs_per_cpu_sec: cpu_rps,
            us_per_run: (secs * 1e6 / faults as f64).round() as u64,
            ref_steps_per_sec: sps(ref_steps, ref_secs),
            fast_steps_per_sec: sps(fast_steps, fast_secs),
            tier_speedup,
            xcheck: report,
            xtier: tier_report,
            adaptive: adaptive_leg,
        });
    }

    if let Some(path) = check {
        ratchet(&path, &rows);
        return;
    }

    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        let xc = match &r.xcheck {
            Some(x) => format!(
                ",\n      \"xcheck\": true,\n      \"xcheck_runs_compared\": {},\n      \
                 \"xcheck_forks_traced\": {},\n      \"xcheck_prefix_commits_verified\": {}",
                x.runs_compared, x.forks_traced, x.prefix_commits_verified
            ),
            None => ",\n      \"xcheck\": false".to_string(),
        };
        let xt = match &r.xtier {
            Some(x) => format!(
                ",\n      \"xtier\": true,\n      \"xtier_interp_steps\": {},\n      \
                 \"xtier_commits_compared\": {},\n      \"xtier_runs_compared\": {}",
                x.interp_steps, x.commits_compared, x.runs_compared
            ),
            None => ",\n      \"xtier\": false".to_string(),
        };
        let ad = match &r.adaptive {
            Some(a) => format!(
                ",\n      \"adaptive\": true,\n      \"adaptive_budget\": {},\n      \
                 \"adaptive_runs\": {},\n      \"adaptive_runs_saved_pct\": \"{:.1}\",\n      \
                 \"adaptive_avf\": \"{:.4}\",\n      \"adaptive_half_width\": \"{:.4}\"",
                a.budget, a.runs, a.runs_saved_pct, a.avf, a.half_width
            ),
            None => ",\n      \"adaptive\": false".to_string(),
        };
        // The in-house JSON parser has no float type, so the speedup ratio
        // is written as a string; the steps/sec figures stay integers.
        body.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"faults\": {},\n      \
             \"golden_cycles\": {},\n      \"campaign_runs_per_sec\": {},\n      \
             \"campaign_runs_per_cpu_sec\": {},\n      \"us_per_run\": {},\n      \
             \"tier\": \"fast\",\n      \"ref_steps_per_sec\": {},\n      \
             \"fast_steps_per_sec\": {},\n      \"tier_speedup\": \"{:.2}\"{xc}{xt}{ad}\n    }}",
            json::escape(&r.name),
            r.faults,
            r.golden_cycles,
            r.runs_per_sec,
            r.runs_per_cpu_sec,
            r.us_per_run,
            r.ref_steps_per_sec,
            r.fast_steps_per_sec,
            r.tier_speedup,
        ));
    }
    let doc = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"structure\": \"RegFile\",\n  \
         \"mode\": \"first_deviation\",\n  \"config\": \"{}\",\n  \"threads\": {threads},\n  \
         \"batch\": {batch},\n  \"workloads\": [\n{body}\n  ]\n}}\n",
        if small { "small" } else { "big" },
    );
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json");
    let path = out.as_deref().unwrap_or(default_out);
    match std::fs::write(path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Compares the freshly measured rows against a committed trajectory file;
/// any workload more than [`RATCHET_TOLERANCE`] below its committed
/// throughput fails the process.
///
/// The comparison uses the CPU-time-normalized statistic, which is immune
/// to wall-clock contention on shared runners; older baseline files without
/// it fall back to wall-clock runs/sec.
fn ratchet(path: &str, rows: &[WorkloadRow]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("could not read ratchet baseline {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    let Some(Json::Array(committed)) = doc.get("workloads") else {
        panic!("{path} has no `workloads` array");
    };
    let committed_rps = |name: &str| -> Option<(u64, &'static str)> {
        let entry = committed
            .iter()
            .find(|w| w.get("name").and_then(Json::as_str) == Some(name))?;
        if let Some(v) = entry
            .get("campaign_runs_per_cpu_sec")
            .and_then(Json::as_u64)
        {
            return Some((v, "runs/cpu-sec"));
        }
        entry
            .get("campaign_runs_per_sec")
            .and_then(Json::as_u64)
            .map(|v| (v, "runs/sec"))
    };
    let mut failed = false;
    for r in rows {
        let Some((baseline, unit)) = committed_rps(&r.name) else {
            println!("{:<14} no committed baseline, skipping", r.name);
            continue;
        };
        let current = if unit == "runs/cpu-sec" {
            r.runs_per_cpu_sec
        } else {
            r.runs_per_sec
        };
        let floor = (baseline as f64 * (1.0 - RATCHET_TOLERANCE)).round() as u64;
        let verdict = if current >= floor { "ok" } else { "REGRESSION" };
        println!(
            "{:<14} {current:>8} {unit} vs committed {baseline} (floor {floor}): {verdict}",
            r.name
        );
        failed |= current < floor;
    }
    if failed {
        eprintln!("FAIL: campaign throughput regressed more than 10% below the baseline");
        std::process::exit(1);
    }
}
