//! Fig. 1 — ACE analysis vs. SFI AVF for the physical register file.
//!
//! The paper's motivation figure: ACE analysis is fast (one run) but
//! reports AVFs consistently 1.2–3× above the SFI ground truth because it
//! cannot see logical masking. Reproduce the per-workload comparison and
//! the overestimation ratios.

use avgi_bench::{pct, print_header, ExpArgs, GoldenCache};
use avgi_core::ace::ace_regfile;
use avgi_core::pipeline::exhaustive;
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(400);
    let cfg = args.config();
    let mut cache = GoldenCache::new();
    println!(
        "Fig. 1 — register-file AVF: SFI vs. ACE analysis ({})",
        cfg.name
    );
    print_header(
        &["workload", "SFI AVF", "ACE AVF", "ratio"],
        &[14, 10, 10, 8],
    );

    let mut ratios = Vec::new();
    for w in avgi_workloads::all() {
        let golden = cache.get(&w, &cfg);
        let sfi = exhaustive(
            &w,
            &cfg,
            &golden,
            Structure::RegFile,
            args.faults,
            args.seed,
        )
        .effect
        .avf();
        let ace = ace_regfile(&golden, &cfg).avf();
        let ratio = if sfi > 0.0 { ace / sfi } else { f64::INFINITY };
        ratios.push(ratio);
        println!(
            "{:>14} {:>10} {:>10} {:>7.2}x",
            w.name,
            pct(sfi),
            pct(ace),
            ratio
        );
    }
    let finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
    let mean = finite.iter().sum::<f64>() / finite.len().max(1) as f64;
    println!(
        "\nACE/SFI overestimation: mean {:.2}x, min {:.2}x, max {:.2}x (paper: 1.2x-3x)",
        mean,
        finite.iter().copied().fold(f64::INFINITY, f64::min),
        finite.iter().copied().fold(0.0, f64::max),
    );
}
