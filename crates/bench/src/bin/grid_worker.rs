//! Distributed-campaign worker (`DESIGN.md` §10, §15).
//!
//! Connects to a `grid_coordinator` or `grid_service`, rebuilds campaigns
//! locally from their specs (workload, configuration, golden run, fault
//! list, checkpoints — all deterministic), and executes leases until the
//! peer declares the work done.
//!
//! ```text
//! grid_worker --connect 127.0.0.1:4810 [--threads N] [--connect-timeout-s N] [--proto N]
//! ```
//!
//! `--proto 2` pins the worker to the JSON wire dialect (what a previous
//! release would speak); the default negotiates the binary v3 dialect.

use avgi_grid::proto::WireStats;
use avgi_grid::{run_worker, WorkerConfig};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "grid_worker --connect ADDR [--threads N] [--connect-timeout-s N] [--proto N]";

fn main() {
    let mut wcfg = WorkerConfig::new("127.0.0.1:4810");
    let wire = Arc::new(WireStats::new());
    wcfg.wire = Some(wire.clone());
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
        };
        match a.as_str() {
            "--connect" => wcfg.addr = next("--connect"),
            "--threads" => wcfg.threads = next("--threads").parse().expect("--threads N"),
            "--proto" => wcfg.proto = next("--proto").parse().expect("--proto N"),
            "--connect-timeout-s" => {
                wcfg.connect_timeout = Duration::from_secs(
                    next("--connect-timeout-s")
                        .parse()
                        .expect("--connect-timeout-s N"),
                );
            }
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    eprintln!("[worker] connecting to {}", wcfg.addr);
    match run_worker(&wcfg) {
        Ok(stats) => {
            eprintln!(
                "[worker] done: {} campaigns, {} batches, {} runs",
                stats.campaigns, stats.batches, stats.runs
            );
            eprintln!("[worker] wire: {}", wire.summary());
        }
        Err(e) => {
            eprintln!("[worker] failed: {e}");
            std::process::exit(1);
        }
    }
}
