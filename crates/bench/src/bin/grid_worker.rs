//! Distributed-campaign worker (`DESIGN.md` §10).
//!
//! Connects to a `grid_coordinator`, rebuilds the campaign locally from the
//! welcome spec (workload, configuration, golden run, fault list,
//! checkpoints — all deterministic), and executes leases until the
//! coordinator declares the campaign done.
//!
//! ```text
//! grid_worker --connect 127.0.0.1:4810 [--threads N] [--connect-timeout-s N]
//! ```

use avgi_grid::{run_worker, WorkerConfig};
use std::time::Duration;

const USAGE: &str = "grid_worker --connect ADDR [--threads N] [--connect-timeout-s N]";

fn main() {
    let mut wcfg = WorkerConfig::new("127.0.0.1:4810");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\nusage: {USAGE}"))
        };
        match a.as_str() {
            "--connect" => wcfg.addr = next("--connect"),
            "--threads" => wcfg.threads = next("--threads").parse().expect("--threads N"),
            "--connect-timeout-s" => {
                wcfg.connect_timeout = Duration::from_secs(
                    next("--connect-timeout-s")
                        .parse()
                        .expect("--connect-timeout-s N"),
                );
            }
            other => panic!("unknown argument `{other}`\nusage: {USAGE}"),
        }
    }
    eprintln!("[worker] connecting to {}", wcfg.addr);
    match run_worker(&wcfg) {
        Ok(stats) => {
            eprintln!(
                "[worker] campaign done: {} batches, {} runs",
                stats.batches, stats.runs
            );
        }
        Err(e) => {
            eprintln!("[worker] failed: {e}");
            std::process::exit(1);
        }
    }
}
