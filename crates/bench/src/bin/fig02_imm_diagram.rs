//! Fig. 2 — the IMM classification diagram.
//!
//! Enumerates all 2⁸ = 256 combinations of the eight conditions and prints
//! the per-class combination counts — the "don't-care" labels on the
//! paper's diagram nodes — demonstrating completeness and mutual
//! exclusion.

use avgi_core::classify::{classify_conditions, Conditions};
use std::collections::BTreeMap;

fn main() {
    println!("Fig. 2 — IMM classification diagram: 256-combination census\n");
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    for bits in 0..=255u8 {
        let class = classify_conditions(Conditions::from_bits(bits));
        *counts.entry(class.to_string()).or_insert(0) += 1;
    }
    println!("{:>8} {:>12} {:>12}", "class", "combos", "paper label");
    println!("{}", "-".repeat(36));
    let paper: &[(&str, u32)] = &[
        ("IFC", 128),
        ("IRP", 64),
        ("UNO", 32),
        ("OFS", 16),
        ("DCR", 8),
        ("ETE", 4),
        ("PRE", 2),
        ("ESC", 1),
        ("Benign", 1),
    ];
    let mut total = 0;
    for (label, expect) in paper {
        let got = counts.get(*label).copied().unwrap_or(0);
        total += got;
        let mark = if got == *expect { "" } else { "  <-- MISMATCH" };
        println!("{label:>8} {got:>12} {expect:>12}{mark}");
    }
    println!("{}", "-".repeat(36));
    println!("{:>8} {total:>12} {:>12}", "sum", 256);
    assert_eq!(
        total, 256,
        "diagram must be complete and mutually exclusive"
    );
    println!("\ncomplete and mutually exclusive: every combination reaches exactly one class");
}
