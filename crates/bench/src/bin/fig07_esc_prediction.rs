//! Fig. 7 — accuracy of predicted ESC faults.
//!
//! For the ESC-eligible arrays (L1D tag/data, L2 tag/data), compare the
//! *real* ESC count (no-deviation runs whose output differs, measured by
//! instrumented campaigns) against the §IV.D equation's prediction from
//! output size and Benign count alone. In the paper's scatter plots each
//! workload is one dot; here each row is one dot, with the ideal
//! `predicted == real` diagonal expressed as the error column.

use avgi_bench::{analysis_grid, print_header, ExpArgs};
use avgi_core::esc::EscModel;
use avgi_core::imm::Imm;
use avgi_muarch::fault::Structure;

fn main() {
    let args = ExpArgs::parse(400);
    let cfg = args.config();
    let workloads = avgi_workloads::all();
    let model = EscModel::default();
    println!(
        "Fig. 7 — predicted vs. real ESC fault counts ({}, {} faults/cell, scale {})",
        cfg.name, args.faults, model.scale
    );

    let structures = [
        Structure::L1DTag,
        Structure::L1DData,
        Structure::L2Tag,
        Structure::L2Data,
    ];
    let telemetry = avgi_bench::ExpTelemetry::from_args(&args);
    let mut total_abs_err = 0.0;
    let mut rows = 0u32;
    for &s in &structures {
        let analyses = analysis_grid(
            &[s],
            &workloads,
            &cfg,
            args.faults,
            args.seed,
            Some(&telemetry),
            args.shard,
        );
        println!("\n--- {} ---", s.label());
        print_header(
            &[
                "workload", "out KB", "benign", "real ESC", "pred ESC", "err",
            ],
            &[14, 8, 8, 9, 9, 7],
        );
        for (a, w) in analyses.iter().zip(&workloads) {
            let real = a.imm_count(Imm::Esc);
            let pred = model.esc_count(w.output_bytes(), a.total, a.benign_count());
            let err = pred - real as f64;
            total_abs_err += err.abs();
            rows += 1;
            println!(
                "{:>14} {:>8.1} {:>8} {:>9} {:>9.1} {:>+7.1}",
                a.workload,
                f64::from(w.output_bytes()) / 1024.0,
                a.benign_count(),
                real,
                pred,
                err
            );
        }
    }
    println!(
        "\nmean |predicted - real| = {:.2} faults per (structure, workload); \
         paper reports small divergences around the diagonal that do not move the final AVF.",
        total_abs_err / f64::from(rows.max(1))
    );
    telemetry.finish();
}
