//! # avgi-rng — deterministic pseudo-randomness without external crates
//!
//! The repository must build in fully offline environments, so fault
//! sampling and randomized tests use this small self-contained generator
//! instead of the `rand` crate: xoshiro256** (Blackman & Vigna) seeded via
//! SplitMix64, the same construction the reference implementations use.
//!
//! Streams are deterministic in the seed and stable across platforms and
//! releases — campaign reproducibility (same seed ⇒ same fault sample)
//! depends on this, so the generator is pinned by tests with known vectors.

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** generator: fast, high-quality, 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded, so
    /// similar seeds yield uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniform bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (`n > 0`), without modulo bias (rejection
    /// sampling over the top of the range).
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Largest multiple of n that fits in u64; reject above it.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `0..n` (`n > 0`).
    pub fn gen_range_usize(&mut self, n: usize) -> usize {
        self.gen_range_u64(n as u64) as usize
    }

    /// Uniform `i32` in `lo..hi` (`lo < hi`).
    pub fn gen_range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range");
        let span = (i64::from(hi) - i64::from(lo)) as u64;
        lo.wrapping_add(self.gen_range_u64(span) as i32)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform choice from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range_usize(items.len())]
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_pin_the_stream() {
        // Golden values: once recorded, they must never change — campaign
        // seeds in experiment scripts rely on the stream being stable.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again, "same seed, same stream");
        let mut other = Rng::seed_from_u64(1);
        assert_ne!(
            first[0],
            other.next_u64(),
            "different seed, different stream"
        );
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut r = Rng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1_000 {
            let v = r.gen_range_i32(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Rng::seed_from_u64(7);
        let n = 10_000;
        let lo = (0..n).filter(|_| r.gen_range_u64(100) < 50).count();
        assert!((4_500..5_500).contains(&lo), "skewed halves: {lo}/{n}");
    }
}
