//! Set-associative, write-back cache with fault-injectable tag and data
//! arrays.
//!
//! Both arrays are *authoritative* storage: a flipped data bit is what a
//! subsequent read returns, and a flipped tag/valid/dirty bit changes
//! hit/miss behaviour, can silently drop a dirty line, or can write a line
//! back to the wrong physical address — all fault behaviours the paper's
//! cache experiments exercise.
//!
//! Storage is a single flat backing buffer per cache (no per-line heap
//! objects), evicted lines travel in inline fixed-size buffers
//! ([`Eviction`]), and every mutation is journaled per line so a scratch
//! simulator can be restored to a snapshot by copying back only the lines a
//! run actually touched ([`Cache::restore_from`]) — the O(dirty) half of the
//! snapshot/restore hot path.

use crate::config::CacheGeometry;
use crate::fault::tag_entry_bits;

/// Largest supported cache line, in bytes. Line buffers are inline arrays of
/// this size so the per-cycle miss/eviction path never touches the heap.
pub const MAX_LINE_BYTES: usize = 64;

/// A line evicted during a fill; must be written to the next level if dirty.
///
/// The payload lives in an inline fixed-size buffer (no allocation); use
/// [`Eviction::data`] to get the line's actual bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Writeback address reconstructed from the (possibly corrupted) stored
    /// tag and the set index.
    pub addr: u32,
    len: u8,
    data: [u8; MAX_LINE_BYTES],
}

impl Eviction {
    fn new(addr: u32, line: &[u8]) -> Self {
        let mut data = [0u8; MAX_LINE_BYTES];
        data[..line.len()].copy_from_slice(line);
        Eviction {
            addr,
            len: line.len() as u8,
            data,
        }
    }

    /// The line's data.
    pub fn data(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    /// Packed per-line metadata: bits `[0..tag_bits)` tag, bit `tag_bits`
    /// valid, bit `tag_bits+1` dirty.
    tags: Vec<u32>,
    /// Flat data array: `lines * line_bytes`.
    data: Vec<u8>,
    /// LRU age per line (not fault-injectable; control logic, not storage).
    lru: Vec<u32>,
    tick: u32,
    /// Dirty-line journal: flat indices of lines whose tag/data/LRU state
    /// changed since the last [`Cache::clear_tracking`], deduplicated via
    /// `touched_gen`.
    touched: Vec<u32>,
    touched_gen: Vec<u32>,
    gen: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(
            geom.line_bytes as usize <= MAX_LINE_BYTES,
            "line size exceeds MAX_LINE_BYTES"
        );
        let lines = geom.lines() as usize;
        Cache {
            geom,
            tags: vec![0; lines],
            data: vec![0; lines * geom.line_bytes as usize],
            lru: vec![0; lines],
            tick: 0,
            touched: Vec::new(),
            touched_gen: vec![0; lines],
            gen: 1,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr >> (self.geom.offset_bits() + self.geom.index_bits())
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.geom.offset_bits()) & (self.geom.sets - 1)
    }

    fn line_index(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways + way) as usize
    }

    fn meta_tag(&self, li: usize) -> u32 {
        self.tags[li] & ((1u32 << self.geom.tag_bits()) - 1)
    }

    fn meta_valid(&self, li: usize) -> bool {
        self.tags[li] >> self.geom.tag_bits() & 1 == 1
    }

    fn meta_dirty(&self, li: usize) -> bool {
        self.tags[li] >> (self.geom.tag_bits() + 1) & 1 == 1
    }

    /// Journals `li` as modified since the last tracking reset.
    #[inline]
    fn note(&mut self, li: usize) {
        if self.touched_gen[li] != self.gen {
            self.touched_gen[li] = self.gen;
            self.touched.push(li as u32);
        }
    }

    fn set_meta(&mut self, li: usize, tag: u32, valid: bool, dirty: bool) {
        self.note(li);
        self.tags[li] = tag
            | (u32::from(valid) << self.geom.tag_bits())
            | (u32::from(dirty) << (self.geom.tag_bits() + 1));
    }

    fn line_addr(&self, li: usize) -> u32 {
        let set = (li as u32) / self.geom.ways;
        (self.meta_tag(li) << (self.geom.offset_bits() + self.geom.index_bits()))
            | (set << self.geom.offset_bits())
    }

    fn touch(&mut self, li: usize) {
        self.note(li);
        self.tick = self.tick.wrapping_add(1);
        self.lru[li] = self.tick;
    }

    /// Looks up `addr`. On a hit, returns the flat line index and refreshes
    /// LRU state.
    pub fn lookup(&mut self, addr: u32) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.geom.ways {
            let li = self.line_index(set, way);
            if self.meta_valid(li) && self.meta_tag(li) == tag {
                self.touch(li);
                return Some(li);
            }
        }
        None
    }

    /// Reads `buf.len()` bytes at `addr` from a resident line found by
    /// [`Cache::lookup`]. The access must not cross a line boundary.
    pub fn read_resident(&self, li: usize, addr: u32, buf: &mut [u8]) {
        let off = (addr & (self.geom.line_bytes - 1)) as usize;
        let base = li * self.geom.line_bytes as usize + off;
        buf.copy_from_slice(&self.data[base..base + buf.len()]);
    }

    /// Writes bytes into a resident line and marks it dirty.
    pub fn write_resident(&mut self, li: usize, addr: u32, bytes: &[u8]) {
        let off = (addr & (self.geom.line_bytes - 1)) as usize;
        let base = li * self.geom.line_bytes as usize + off;
        self.data[base..base + bytes.len()].copy_from_slice(bytes);
        let tag = self.meta_tag(li);
        let valid = self.meta_valid(li);
        self.set_meta(li, tag, valid, true);
    }

    /// Installs the line containing `addr`, returning the evicted dirty line
    /// (if any) and the new line's flat index.
    pub fn fill(&mut self, addr: u32, line: &[u8]) -> (Option<Eviction>, usize) {
        debug_assert_eq!(line.len(), self.geom.line_bytes as usize);
        let set = self.set_of(addr);
        // Victim: first invalid way, else LRU-oldest.
        let mut victim = self.line_index(set, 0);
        let mut found_invalid = false;
        for way in 0..self.geom.ways {
            let li = self.line_index(set, way);
            if !self.meta_valid(li) {
                victim = li;
                found_invalid = true;
                break;
            }
            if self.lru[li] < self.lru[victim] {
                victim = li;
            }
        }
        let evicted = if !found_invalid && self.meta_dirty(victim) {
            Some(Eviction::new(
                self.line_addr(victim),
                self.line_data(victim),
            ))
        } else {
            None
        };
        let base = victim * self.geom.line_bytes as usize;
        self.data[base..base + line.len()].copy_from_slice(line);
        self.set_meta(victim, self.tag_of(addr), true, false);
        self.touch(victim);
        (evicted, victim)
    }

    /// Marks a resident line dirty without modifying its data (used when a
    /// whole line arrives via writeback-allocate).
    pub fn mark_dirty(&mut self, li: usize) {
        let tag = self.meta_tag(li);
        let valid = self.meta_valid(li);
        self.set_meta(li, tag, valid, true);
    }

    fn line_data(&self, li: usize) -> &[u8] {
        let base = li * self.geom.line_bytes as usize;
        &self.data[base..base + self.geom.line_bytes as usize]
    }

    /// Removes and returns every valid dirty line (used for the end-of-run
    /// flush that models DMA reading the program output from memory).
    pub fn drain_dirty(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for li in 0..self.tags.len() {
            if self.meta_valid(li) && self.meta_dirty(li) {
                out.push(Eviction::new(self.line_addr(li), self.line_data(li)));
                let tag = self.meta_tag(li);
                self.set_meta(li, tag, true, false);
            }
        }
        out
    }

    /// Number of injectable bits in the tag array.
    pub fn tag_array_bits(&self) -> u64 {
        self.tags.len() as u64 * u64::from(tag_entry_bits(self.geom.tag_bits()))
    }

    /// Number of injectable bits in the data array.
    pub fn data_array_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Flips one bit in the tag array (flat bit index).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_tag_bit(&mut self, bit: u64) {
        let per = u64::from(tag_entry_bits(self.geom.tag_bits()));
        let li = (bit / per) as usize;
        let b = (bit % per) as u32;
        assert!(li < self.tags.len(), "tag bit out of range");
        self.note(li);
        self.tags[li] ^= 1 << b;
    }

    /// Flips one bit in the data array (flat bit index).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_data_bit(&mut self, bit: u64) {
        let byte = (bit / 8) as usize;
        assert!(byte < self.data.len(), "data bit out of range");
        self.note(byte / self.geom.line_bytes as usize);
        self.data[byte] ^= 1 << (bit % 8);
    }

    /// Resets the dirty-line journal: subsequent mutations are tracked
    /// relative to the cache's current contents.
    pub fn clear_tracking(&mut self) {
        self.touched.clear();
        if self.gen == u32::MAX {
            self.touched_gen.fill(0);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Restores this cache to `snap`'s state by copying back only the lines
    /// journaled as touched since the last tracking reset — valid only when
    /// this cache's contents were bit-identical to `snap` at that reset
    /// (enforced by the `Sim` snapshot machinery). O(touched lines).
    pub fn restore_from(&mut self, snap: &Cache) {
        debug_assert_eq!(self.geom, snap.geom);
        let lb = self.geom.line_bytes as usize;
        let touched = core::mem::take(&mut self.touched);
        for &li in &touched {
            let li = li as usize;
            self.tags[li] = snap.tags[li];
            self.lru[li] = snap.lru[li];
            self.data[li * lb..(li + 1) * lb].copy_from_slice(&snap.data[li * lb..(li + 1) * lb]);
        }
        self.touched = touched;
        self.tick = snap.tick;
        self.clear_tracking();
    }

    /// Restores this cache to `snap`'s state by copying everything — the
    /// allocation-free fallback when the journal's baseline does not match
    /// `snap` (e.g. the scratch simulator switches checkpoints).
    pub fn copy_full_from(&mut self, snap: &Cache) {
        debug_assert_eq!(self.geom, snap.geom);
        self.tags.copy_from_slice(&snap.tags);
        self.data.copy_from_slice(&snap.data);
        self.lru.copy_from_slice(&snap.lru);
        self.tick = snap.tick;
        self.clear_tracking();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MuarchConfig;

    fn small_cache() -> Cache {
        Cache::new(CacheGeometry {
            sets: 4,
            ways: 2,
            line_bytes: 64,
        })
    }

    fn line_of(byte: u8) -> [u8; 64] {
        [byte; 64]
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(c.lookup(0x1000).is_none());
        let (ev, li) = c.fill(0x1000, &line_of(0xAB));
        assert!(ev.is_none());
        assert_eq!(c.lookup(0x1000), Some(li));
        let mut b = [0u8; 4];
        c.read_resident(li, 0x1004, &mut b);
        assert_eq!(b, [0xAB; 4]);
    }

    #[test]
    fn write_marks_dirty_and_eviction_returns_data() {
        let mut c = small_cache();
        let (_, li) = c.fill(0x0000, &line_of(0));
        c.write_resident(li, 0x0008, &[1, 2, 3, 4]);
        // Fill two more lines mapping to set 0 to force eviction.
        // set = (addr >> 6) & 3; addresses with bits[7:6]=0 map to set 0.
        let (e1, _) = c.fill(0x0100, &line_of(9));
        assert!(e1.is_none(), "second way free");
        let (e2, _) = c.fill(0x0200, &line_of(7));
        let ev = e2.expect("dirty line evicted");
        assert_eq!(ev.addr, 0x0000);
        assert_eq!(ev.data().len(), 64);
        assert_eq!(&ev.data()[8..12], &[1, 2, 3, 4]);
    }

    #[test]
    fn lru_prefers_oldest() {
        let mut c = small_cache();
        c.fill(0x0000, &line_of(1));
        c.fill(0x0100, &line_of(2));
        c.lookup(0x0000); // refresh line 0
        c.fill(0x0200, &line_of(3)); // evicts 0x0100 (clean: no writeback)
        assert!(c.lookup(0x0000).is_some());
        assert!(c.lookup(0x0100).is_none());
        assert!(c.lookup(0x0200).is_some());
    }

    #[test]
    fn tag_bit_flip_causes_false_miss() {
        let mut c = small_cache();
        c.fill(0x1000, &line_of(5));
        assert!(c.lookup(0x1000).is_some());
        // Find the line and flip its lowest tag bit.
        // 0x1000: set = (0x1000 >> 6) & 3 = 0, tag = 0x1000 >> 8 = 0x10.
        // Line 0 (set 0, way 0) starts at tag-array bit 0.
        c.flip_tag_bit(0); // tag bit 0 of line 0
        assert!(
            c.lookup(0x1000).is_none(),
            "corrupted tag no longer matches"
        );
    }

    #[test]
    fn valid_bit_flip_invalidates() {
        let mut c = small_cache();
        c.fill(0x1000, &line_of(5));
        let tagbits = c.geom.tag_bits();
        c.flip_tag_bit(u64::from(tagbits)); // valid bit of line 0
        assert!(c.lookup(0x1000).is_none());
    }

    #[test]
    fn data_bit_flip_corrupts_read() {
        let mut c = small_cache();
        let (_, li) = c.fill(0x0000, &line_of(0));
        c.flip_data_bit(u64::from(li as u32) * 64 * 8 + 3); // bit 3 of line's first byte
        let mut b = [0u8; 1];
        c.read_resident(li, 0x0000, &mut b);
        assert_eq!(b[0], 8);
    }

    #[test]
    fn drain_dirty_returns_modified_lines_once() {
        let mut c = small_cache();
        let (_, li) = c.fill(0x0000, &line_of(0));
        c.write_resident(li, 0, &[0xFF]);
        let d1 = c.drain_dirty();
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].addr, 0);
        let d2 = c.drain_dirty();
        assert!(d2.is_empty(), "drain clears dirty bits");
    }

    #[test]
    fn bit_counts_match_fault_module() {
        let cfg = MuarchConfig::big();
        let c = Cache::new(cfg.l1d);
        assert_eq!(
            c.tag_array_bits(),
            crate::fault::Structure::L1DTag.bit_count(&cfg)
        );
        assert_eq!(
            c.data_array_bits(),
            crate::fault::Structure::L1DData.bit_count(&cfg)
        );
    }

    #[test]
    fn dirty_flip_can_silently_drop_writeback() {
        let mut c = small_cache();
        let (_, li) = c.fill(0x0000, &line_of(0));
        c.write_resident(li, 0, &[0xEE]);
        let tagbits = c.geom.tag_bits();
        c.flip_tag_bit(u64::from(tagbits) + 1); // dirty bit of line 0
        assert!(
            c.drain_dirty().is_empty(),
            "dirty bit cleared by fault: writeback lost"
        );
    }

    /// Exercises every mutation kind against the journaled restore: after
    /// `restore_from`, the scratch must be observationally identical to the
    /// snapshot it started from.
    #[test]
    fn journaled_restore_undoes_every_mutation_kind() {
        let mut base = small_cache();
        base.fill(0x0000, &line_of(1));
        let (_, li) = base.fill(0x1000, &line_of(2));
        base.write_resident(li, 0x1000, &[0x55]);

        let mut scratch = base.clone();
        scratch.clear_tracking(); // sync point: scratch == base

        // Mutate through every tracked path.
        scratch.lookup(0x0000); // LRU touch
        scratch.fill(0x0200, &line_of(9)); // fill + possible eviction
        let (_, li2) = scratch.fill(0x2000, &line_of(4));
        scratch.write_resident(li2, 0x2004, &[7, 7]);
        scratch.mark_dirty(li2);
        scratch.flip_tag_bit(3);
        scratch.flip_data_bit(64 * 8 + 5);
        scratch.drain_dirty();

        scratch.restore_from(&base);

        // Bit-identical observables: same hits, same data, same dirty set.
        for addr in [0x0000u32, 0x1000, 0x0200, 0x2000] {
            assert_eq!(
                scratch.lookup(addr).is_some(),
                base.lookup(addr).is_some(),
                "hit/miss diverged at {addr:#x}"
            );
        }
        let d_s = scratch.drain_dirty();
        let d_b = base.drain_dirty();
        assert_eq!(d_s, d_b, "dirty lines diverged after restore");
    }

    #[test]
    fn full_copy_restore_matches_journaled_restore() {
        let mut base = small_cache();
        base.fill(0x0400, &line_of(3));
        let mut a = base.clone();
        a.clear_tracking();
        let mut b = base.clone();
        a.fill(0x0800, &line_of(8));
        b.fill(0x0c00, &line_of(9));
        a.restore_from(&base); // journaled path
        b.copy_full_from(&base); // full path
        assert_eq!(a.drain_dirty(), b.drain_dirty());
        assert_eq!(a.lookup(0x0400), b.lookup(0x0400));
        assert_eq!(a.lookup(0x0800), b.lookup(0x0800));
    }
}
