//! Fault-injectable entry arrays for the ROB, load queue, and store queue.
//!
//! These structures follow a *check-at-use* fault model: the pipeline keeps
//! authoritative shadow state (the real entries), writes a packed image of
//! each entry into the injectable array, and re-derives + compares the
//! image when the entry is consumed at commit. A mismatch aborts the
//! simulation with an integrity violation — the analogue of gem5's
//! dependence-graph check failures that make ROB/LQ/SQ faults manifest
//! 100 % as the paper's `PRE` class (§III.B). Faults in entries that are
//! free, squashed, or already committed are naturally benign.

/// Packed bits per ROB entry: pc(32) + seq(16) + dest_arch(5) + flags(4).
pub const ROB_ENTRY_BITS: u32 = 57;
/// Packed bits per LQ entry: addr(32) + seq(16) + valid(1).
pub const LQ_ENTRY_BITS: u32 = 49;
/// Packed bits per SQ entry: addr(32) + data(32) + seq(16) + valid(1).
pub const SQ_ENTRY_BITS: u32 = 81;

/// Packs a ROB entry image.
pub fn pack_rob(pc: u32, seq: u16, dest_arch: u8, flags: u8) -> u128 {
    u128::from(pc)
        | u128::from(seq) << 32
        | u128::from(dest_arch & 0x1F) << 48
        | u128::from(flags & 0xF) << 53
}

/// Packs an LQ entry image (valid bit set).
pub fn pack_lq(addr: u32, seq: u16) -> u128 {
    u128::from(addr) | u128::from(seq) << 32 | 1u128 << 48
}

/// Packs an SQ entry image (valid bit set).
pub fn pack_sq(addr: u32, data: u32, seq: u16) -> u128 {
    u128::from(addr) | u128::from(data) << 32 | u128::from(seq) << 64 | 1u128 << 80
}

/// A fixed-size array of packed queue entries with bit-flip support.
#[derive(Debug, Clone)]
pub struct QueueArray {
    entries: Vec<u128>,
    entry_bits: u32,
}

impl QueueArray {
    /// Creates a zeroed array of `n` entries of `entry_bits` bits each.
    pub fn new(n: u32, entry_bits: u32) -> Self {
        assert!(entry_bits <= 128);
        QueueArray {
            entries: vec![0; n as usize],
            entry_bits,
        }
    }

    /// Stores an entry image.
    pub fn write(&mut self, i: usize, v: u128) {
        self.entries[i] = v & self.mask();
    }

    /// Loads an entry image.
    pub fn read(&self, i: usize) -> u128 {
        self.entries[i]
    }

    /// Compares the stored image against a freshly packed expectation.
    pub fn matches(&self, i: usize, expected: u128) -> bool {
        self.entries[i] == expected & self.mask()
    }

    fn mask(&self) -> u128 {
        if self.entry_bits == 128 {
            u128::MAX
        } else {
            (1u128 << self.entry_bits) - 1
        }
    }

    /// Total injectable bits.
    pub fn bit_count(&self) -> u64 {
        self.entries.len() as u64 * u64::from(self.entry_bits)
    }

    /// Flips one bit (flat index `entry * entry_bits + bit`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_bit(&mut self, bit: u64) {
        let e = (bit / u64::from(self.entry_bits)) as usize;
        assert!(e < self.entries.len(), "queue bit out of range");
        self.entries[e] ^= 1 << (bit % u64::from(self.entry_bits));
    }

    /// Overwrites this array with `src`'s contents without reallocating.
    pub fn restore_from(&mut self, src: &QueueArray) {
        debug_assert_eq!(self.entry_bits, src.entry_bits);
        self.entries.copy_from_slice(&src.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_rob_fields_do_not_overlap() {
        let a = pack_rob(0xFFFF_FFFF, 0, 0, 0);
        let b = pack_rob(0, 0xFFFF, 0, 0);
        let c = pack_rob(0, 0, 0x1F, 0);
        let d = pack_rob(0, 0, 0, 0xF);
        assert_eq!(a & b, 0);
        assert_eq!(a & c, 0);
        assert_eq!(b & c, 0);
        assert_eq!(c & d, 0);
        assert!(a | b | c | d < 1u128 << ROB_ENTRY_BITS);
    }

    #[test]
    fn pack_widths_fit_declared_bits() {
        assert!(pack_lq(u32::MAX, u16::MAX) < 1u128 << LQ_ENTRY_BITS);
        assert!(pack_sq(u32::MAX, u32::MAX, u16::MAX) < 1u128 << SQ_ENTRY_BITS);
        assert!(pack_rob(u32::MAX, u16::MAX, 31, 15) < 1u128 << ROB_ENTRY_BITS);
    }

    #[test]
    fn write_then_match() {
        let mut q = QueueArray::new(4, SQ_ENTRY_BITS);
        let img = pack_sq(0x4_0000, 0xDEAD_BEEF, 7);
        q.write(2, img);
        assert!(q.matches(2, img));
        assert!(!q.matches(2, pack_sq(0x4_0000, 0xDEAD_BEEF, 8)));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut base = QueueArray::new(1, ROB_ENTRY_BITS);
        let img = pack_rob(0x1234, 42, 7, 0b1010);
        base.write(0, img);
        for bit in 0..u64::from(ROB_ENTRY_BITS) {
            let mut q = base.clone();
            q.flip_bit(bit);
            assert!(!q.matches(0, img), "flip of bit {bit} went undetected");
        }
    }

    #[test]
    fn bit_count() {
        assert_eq!(QueueArray::new(16, LQ_ENTRY_BITS).bit_count(), 16 * 49);
    }
}
