//! Commit-trace capture and golden-run comparison.
//!
//! Every committed instruction produces one [`CommitRecord`] carrying
//! exactly the observables the paper's Fig. 2 classification conditions
//! need: commit cycle, PC, the raw instruction word (opcode + operand +
//! immediate fields), the memory effective address, and the produced value.
//! A faulty run compares its records on the fly against the golden run and
//! reports the *first* mismatch as a [`Deviation`] — the moment the fault
//! "touches" the software layer.

/// One committed instruction's architectural observables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommitRecord {
    /// Cycle at which the instruction committed.
    pub cycle: u64,
    /// Program counter.
    pub pc: u32,
    /// Raw 32-bit instruction word as fetched (possibly corrupted).
    pub raw: u32,
    /// Memory effective address (loads/stores), else 0.
    pub ea: u32,
    /// Produced value: destination-register writeback, store data, else 0.
    pub val: u32,
}

impl CommitRecord {
    /// Whether two records are architecturally identical (including timing).
    pub fn matches(&self, other: &CommitRecord) -> bool {
        self == other
    }
}

/// The first point at which a faulty run's commit trace diverges from the
/// golden trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deviation {
    /// Commit index (number of instructions committed before this one).
    pub index: u64,
    /// What the fault-free run committed at this index.
    pub golden: CommitRecord,
    /// What the faulty run committed.
    pub faulty: CommitRecord,
}

/// A recorded fault-free execution: full commit trace, final output bytes,
/// timing, and run statistics (including ACE instrumentation).
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Full commit trace.
    pub trace: Vec<CommitRecord>,
    /// Total execution cycles.
    pub cycles: u64,
    /// Bytes of the program's output region after the post-run cache flush.
    pub output: Vec<u8>,
    /// Execution statistics of the fault-free run.
    pub stats: crate::run::ExecStats,
}

impl GoldenRun {
    /// Instructions committed.
    pub fn committed(&self) -> u64 {
        self.trace.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_equality_covers_every_field() {
        let base = CommitRecord {
            cycle: 10,
            pc: 4,
            raw: 0x1000_0000,
            ea: 8,
            val: 3,
        };
        assert!(base.matches(&base));
        for (i, r) in [
            CommitRecord { cycle: 11, ..base },
            CommitRecord { pc: 8, ..base },
            CommitRecord { raw: 0, ..base },
            CommitRecord { ea: 12, ..base },
            CommitRecord { val: 4, ..base },
        ]
        .iter()
        .enumerate()
        {
            assert!(!base.matches(r), "field {i} change not detected");
        }
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;

    #[test]
    fn golden_run_committed_counts_trace_entries() {
        let g = GoldenRun {
            trace: vec![
                CommitRecord {
                    cycle: 1,
                    pc: 0,
                    raw: 0,
                    ea: 0,
                    val: 0,
                },
                CommitRecord {
                    cycle: 2,
                    pc: 4,
                    raw: 0,
                    ea: 0,
                    val: 0,
                },
            ],
            cycles: 10,
            output: vec![],
            stats: crate::run::ExecStats::default(),
        };
        assert_eq!(g.committed(), 2);
    }
}
