//! Executable program images.

use crate::mem::{Memory, DATA_BASE, MEM_SIZE, OUTPUT_BASE};

/// A loadable program: code, initialized data, and the declared output range.
///
/// The output range models the paper's *output file*: after execution the
/// cache hierarchy is written back and the bytes in this range are the
/// program's observable result (what a DMA-driven I/O device would read).
/// Silent data corruption is defined as a difference in these bytes.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Instruction words, loaded at [`CODE_BASE`](crate::mem::CODE_BASE).
    pub code: Vec<u32>,
    /// Initialized data blobs: `(address, bytes)` pairs in the data region.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Entry PC.
    pub entry: u32,
    /// Start of the output range (within the output region).
    pub output_addr: u32,
    /// Length of the output range in bytes.
    pub output_len: u32,
}

impl Program {
    /// Creates a program with an empty data image and output range starting
    /// at [`OUTPUT_BASE`].
    pub fn new(name: impl Into<String>, code: Vec<u32>, output_len: u32) -> Self {
        Program {
            name: name.into(),
            code,
            data: Vec::new(),
            entry: 0,
            output_addr: OUTPUT_BASE,
            output_len,
        }
    }

    /// Adds an initialized data blob at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the blob falls outside the data region.
    pub fn with_data(mut self, addr: u32, bytes: Vec<u8>) -> Self {
        assert!(addr >= DATA_BASE, "data blob below DATA_BASE");
        assert!(
            u64::from(addr) + bytes.len() as u64 <= u64::from(MEM_SIZE),
            "data blob past end of memory"
        );
        self.data.push((addr, bytes));
        self
    }

    /// Size of the code image in bytes.
    pub fn code_bytes(&self) -> u32 {
        (self.code.len() as u32) * 4
    }

    /// Builds the initial [`Memory`] image for this program.
    pub fn build_memory(&self) -> Memory {
        let mut m = Memory::new(self.code_bytes().max(4));
        for (i, w) in self.code.iter().enumerate() {
            m.write_u32((i as u32) * 4, *w);
        }
        for (addr, bytes) in &self.data {
            m.load_image(*addr, bytes);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_isa::asm::Assembler;
    use avgi_isa::reg::{A0, ZERO};

    fn tiny() -> Program {
        let mut a = Assembler::new(0);
        a.addi(A0, ZERO, 7);
        a.halt();
        Program::new("tiny", a.assemble().unwrap(), 16).with_data(DATA_BASE, vec![1, 2, 3, 4])
    }

    #[test]
    fn memory_image_contains_code_and_data() {
        let p = tiny();
        let m = p.build_memory();
        assert_eq!(m.read_u32(0), p.code[0]);
        assert_eq!(m.read_u8(DATA_BASE), 1);
        assert_eq!(m.code_limit(), 8);
    }

    #[test]
    #[should_panic(expected = "below DATA_BASE")]
    fn data_blob_in_code_region_rejected() {
        let _ = Program::new("bad", vec![0], 0).with_data(0x100, vec![0]);
    }
}
