//! Backing physical memory and the machine's memory map.
//!
//! The machine exposes a single flat physical memory with three regions:
//!
//! | region | base | purpose |
//! |--------|------|---------|
//! | code   | [`CODE_BASE`]   | instructions; execute/read-only |
//! | data   | [`DATA_BASE`]   | heap + stack (stack grows down from [`STACK_TOP`]) |
//! | output | [`OUTPUT_BASE`] | the program's *output file*: after the run, caches are written back and this range is what an I/O device (DMA) would read |
//!
//! Virtual addresses are identity-mapped; the TLBs exist so translation
//! *state* is fault-injectable (a corrupted TLB entry redirects an access to
//! the wrong physical page, exactly like the paper's TLB experiments).
//!
//! Storage is a paged copy-on-write store: memory is a table of
//! [`PAGE_BYTES`]-sized pages behind `Arc`s. Cloning a `Memory` (and
//! therefore a checkpointed `Sim`) only clones the page table — every clean
//! page stays shared with the source image — and the first write to a shared
//! page splits off a private copy. Per-injection run setup is thus O(pages
//! the faulty run actually dirties), not O([`MEM_SIZE`]), which is what
//! makes checkpoint-based campaigns cheap (the ZOFI-style fork trick, done
//! in-process).

use std::sync::{Arc, OnceLock};

/// Base address of the code region.
pub const CODE_BASE: u32 = 0x0000_0000;
/// Base address of the data region.
pub const DATA_BASE: u32 = 0x0004_0000;
/// Stack top (stack grows downward inside the data region).
pub const STACK_TOP: u32 = 0x0008_0000;
/// Base address of the output region (the program's "output file").
pub const OUTPUT_BASE: u32 = 0x0008_0000;
/// Total physical memory size in bytes.
pub const MEM_SIZE: u32 = 0x000C_0000; // 768 KiB
/// Page size used by the TLBs and by the copy-on-write page store.
pub const PAGE_BYTES: u32 = 4096;

/// Page size as a usize (copy-on-write granularity).
pub const PAGE_SIZE: usize = PAGE_BYTES as usize;
const NUM_PAGES: usize = (MEM_SIZE as usize) / PAGE_SIZE;
const DIRTY_WORDS: usize = NUM_PAGES.div_ceil(64);

type Page = [u8; PAGE_SIZE];

/// The process-wide all-zero page every fresh `Memory` starts from, so
/// constructing a memory image allocates nothing but the page table.
fn zero_page() -> Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    Arc::clone(ZERO.get_or_init(|| Arc::new([0u8; PAGE_SIZE])))
}

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Physical address outside [`MEM_SIZE`].
    OutOfRange(u32),
    /// Store targeting the read-only code region.
    WriteToCode(u32),
    /// Access crossing its natural alignment.
    Misaligned(u32),
    /// Instruction fetch outside the code region.
    ExecuteFault(u32),
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemFault::OutOfRange(a) => write!(f, "physical address {a:#010x} out of range"),
            MemFault::WriteToCode(a) => write!(f, "store to code region at {a:#010x}"),
            MemFault::Misaligned(a) => write!(f, "misaligned access at {a:#010x}"),
            MemFault::ExecuteFault(a) => write!(f, "instruction fetch outside code at {a:#010x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Paged copy-on-write backing memory with region protection.
///
/// This is the *physical* memory behind the cache hierarchy; the caches
/// read/write whole lines through [`Memory::read_line`]/[`Memory::write_line`].
/// Cloning shares every page with the source; the first write to a shared
/// page copies it (write triggers page split).
#[derive(Debug, Clone)]
pub struct Memory {
    pages: Vec<Arc<Page>>,
    code_limit: u32,
    /// Bitset of pages this image has written since the last
    /// [`Memory::clear_tracking`] / restore. A restore against the image the
    /// tracking epoch started from ([`Memory::restore_from_dirty`]) only has
    /// to look at these pages instead of `ptr_eq`-scanning all of them.
    dirty: [u64; DIRTY_WORDS],
    /// Pages examined by restore calls — instrumentation for the dirty-path
    /// regression tests.
    restore_pages_scanned: u64,
}

impl Memory {
    /// Creates zeroed memory with the code region spanning
    /// `CODE_BASE..code_limit`. All pages start shared with the process-wide
    /// zero page, so this allocates only the page table.
    pub fn new(code_limit: u32) -> Self {
        assert!(code_limit <= DATA_BASE, "code region overflows into data");
        Memory {
            pages: (0..NUM_PAGES).map(|_| zero_page()).collect(),
            code_limit,
            dirty: [0; DIRTY_WORDS],
            restore_pages_scanned: 0,
        }
    }

    #[inline]
    fn mark_dirty(&mut self, page: usize) {
        self.dirty[page >> 6] |= 1u64 << (page & 63);
    }

    /// End of the code region (exclusive).
    pub fn code_limit(&self) -> u32 {
        self.code_limit
    }

    /// Checks that a data access of `size` bytes at `addr` is allowed.
    pub fn check_data_access(&self, addr: u32, size: u32, is_store: bool) -> Result<(), MemFault> {
        if !addr.is_multiple_of(size) {
            return Err(MemFault::Misaligned(addr));
        }
        if u64::from(addr) + u64::from(size) > u64::from(MEM_SIZE) {
            return Err(MemFault::OutOfRange(addr));
        }
        if is_store && addr < DATA_BASE {
            return Err(MemFault::WriteToCode(addr));
        }
        Ok(())
    }

    /// Checks that an instruction fetch at `addr` is allowed.
    pub fn check_fetch(&self, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned(addr));
        }
        if addr >= self.code_limit {
            return Err(MemFault::ExecuteFault(addr));
        }
        Ok(())
    }

    /// Copies `buf.len()` bytes starting at `addr` out of memory, spanning
    /// pages as needed.
    fn read_bytes(&self, addr: u32, mut buf: &mut [u8]) {
        let mut a = addr as usize;
        while !buf.is_empty() {
            let (pi, off) = (a / PAGE_SIZE, a % PAGE_SIZE);
            let n = buf.len().min(PAGE_SIZE - off);
            let (head, rest) = buf.split_at_mut(n);
            head.copy_from_slice(&self.pages[pi][off..off + n]);
            buf = rest;
            a += n;
        }
    }

    /// Copies `src` into memory at `addr`, splitting every shared page it
    /// touches.
    fn write_bytes(&mut self, addr: u32, mut src: &[u8]) {
        let mut a = addr as usize;
        while !src.is_empty() {
            let (pi, off) = (a / PAGE_SIZE, a % PAGE_SIZE);
            let n = src.len().min(PAGE_SIZE - off);
            self.mark_dirty(pi);
            Arc::make_mut(&mut self.pages[pi])[off..off + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            a += n;
        }
    }

    /// Reads one cache line (`buf.len()` bytes) starting at `addr`
    /// (line-aligned).
    pub fn read_line(&self, addr: u32, buf: &mut [u8]) {
        self.read_bytes(addr, buf);
    }

    /// Writes one cache line starting at `addr` (line-aligned).
    ///
    /// Writebacks with corrupted tags may target any address; writes that
    /// fall outside physical memory are dropped (the bus ignores them),
    /// which mirrors a writeback to an unpopulated physical address.
    pub fn write_line(&mut self, addr: u32, buf: &[u8]) {
        if addr as usize + buf.len() <= MEM_SIZE as usize {
            self.write_bytes(addr, buf);
        }
    }

    /// Raw byte read (no protection check); used for loading images and for
    /// reading results after the caches are flushed.
    pub fn read_u8(&self, addr: u32) -> u8 {
        let a = addr as usize;
        self.pages[a / PAGE_SIZE][a % PAGE_SIZE]
    }

    /// Little-endian 32-bit read (no protection check).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Raw byte write (no protection check); used when loading images.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let a = addr as usize;
        self.mark_dirty(a / PAGE_SIZE);
        Arc::make_mut(&mut self.pages[a / PAGE_SIZE])[a % PAGE_SIZE] = v;
    }

    /// Little-endian 32-bit write (no protection check).
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Copies `src` into memory at `addr` (no protection check).
    pub fn load_image(&mut self, addr: u32, src: &[u8]) {
        self.write_bytes(addr, src);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_range(&self, addr: u32, len: u32) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        self.read_bytes(addr, &mut out);
        out
    }

    /// Makes this memory bit-identical to `src` without copying page
    /// contents: pages already shared with `src` are left untouched; any
    /// page this image split off (dirtied) is dropped and re-pointed at
    /// `src`'s page. Cost is O(pages) pointer compares plus O(dirty) `Arc`
    /// swaps. After the restore this image shares every page with `src`, so
    /// the dirty tracking restarts from a clean epoch.
    pub fn restore_from(&mut self, src: &Memory) {
        debug_assert_eq!(self.pages.len(), src.pages.len());
        self.code_limit = src.code_limit;
        self.restore_pages_scanned += self.pages.len() as u64;
        for (d, s) in self.pages.iter_mut().zip(&src.pages) {
            if !Arc::ptr_eq(d, s) {
                *d = Arc::clone(s);
            }
        }
        self.dirty = [0; DIRTY_WORDS];
    }

    /// Like [`Memory::restore_from`], but trusting the dirty-page bitset:
    /// only pages written since the tracking epoch started are examined,
    /// making restore O(dirtied pages) instead of O(all pages).
    ///
    /// Sound only when this image was bit-identical to `src` (and all-shared
    /// with it) when the current tracking epoch began — i.e. `src` is the
    /// same immutable snapshot image this one was spawned from or last
    /// restored to. The caller owns that gating (the `Sim` uses its
    /// snapshot-id check); when in doubt use the full-scan
    /// [`Memory::restore_from`].
    pub fn restore_from_dirty(&mut self, src: &Memory) {
        debug_assert_eq!(self.pages.len(), src.pages.len());
        self.code_limit = src.code_limit;
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let pi = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.restore_pages_scanned += 1;
                if !Arc::ptr_eq(&self.pages[pi], &src.pages[pi]) {
                    self.pages[pi] = Arc::clone(&src.pages[pi]);
                }
            }
            *word = 0;
        }
        #[cfg(debug_assertions)]
        for (pi, (d, s)) in self.pages.iter().zip(&src.pages).enumerate() {
            debug_assert!(
                Arc::ptr_eq(d, s),
                "page {pi} diverged from the restore source without being marked dirty"
            );
        }
    }

    /// Starts a fresh dirty-tracking epoch: this image is (or is about to
    /// be made) bit-identical to some base image, and subsequent writes are
    /// what [`Memory::restore_from_dirty`] will undo.
    pub fn clear_tracking(&mut self) {
        self.dirty = [0; DIRTY_WORDS];
    }

    /// Number of pages this image has written since the tracking epoch
    /// started.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Cumulative count of pages examined by restore calls
    /// ([`Memory::restore_from`] counts every page; `restore_from_dirty`
    /// counts only the dirtied ones) — the regression-test observable for
    /// the dirty-path optimisation.
    pub fn restore_pages_scanned(&self) -> u64 {
        self.restore_pages_scanned
    }

    /// Number of pages physically shared (same backing allocation) between
    /// two images — instrumentation for CoW tests and benchmarks.
    pub fn shared_pages_with(&self, other: &Memory) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Total number of pages in the physical address space.
    pub fn page_count(&self) -> usize {
        NUM_PAGES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        const { assert!(CODE_BASE < DATA_BASE) };
        const { assert!(DATA_BASE < OUTPUT_BASE) };
        const { assert!(OUTPUT_BASE < MEM_SIZE) };
        assert_eq!(STACK_TOP, OUTPUT_BASE);
        const { assert!((MEM_SIZE as usize).is_multiple_of(PAGE_SIZE)) };
    }

    #[test]
    fn data_access_checks() {
        let m = Memory::new(0x1000);
        assert!(m.check_data_access(DATA_BASE, 4, true).is_ok());
        assert_eq!(
            m.check_data_access(DATA_BASE + 2, 4, false),
            Err(MemFault::Misaligned(DATA_BASE + 2))
        );
        assert_eq!(
            m.check_data_access(0x100, 4, true),
            Err(MemFault::WriteToCode(0x100))
        );
        assert!(
            m.check_data_access(0x100, 4, false).is_ok(),
            "loads from code allowed"
        );
        assert_eq!(
            m.check_data_access(MEM_SIZE, 4, false),
            Err(MemFault::OutOfRange(MEM_SIZE))
        );
        assert_eq!(
            m.check_data_access(MEM_SIZE + 4, 4, false),
            Err(MemFault::OutOfRange(MEM_SIZE + 4))
        );
    }

    #[test]
    fn fetch_checks() {
        let m = Memory::new(0x1000);
        assert!(m.check_fetch(0).is_ok());
        assert!(m.check_fetch(0xFFC).is_ok());
        assert_eq!(m.check_fetch(0x1000), Err(MemFault::ExecuteFault(0x1000)));
        assert_eq!(m.check_fetch(2), Err(MemFault::Misaligned(2)));
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new(0x1000);
        m.write_u32(DATA_BASE, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(DATA_BASE), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(DATA_BASE), 0xEF); // little endian
        let mut line = [0u8; 64];
        m.read_line(DATA_BASE, &mut line);
        assert_eq!(line[0], 0xEF);
    }

    #[test]
    fn out_of_range_writeback_dropped() {
        let mut m = Memory::new(0x1000);
        m.write_line(MEM_SIZE - 32, &[1u8; 64]); // would overflow: dropped
        assert_eq!(m.read_u8(MEM_SIZE - 32), 0);
    }

    #[test]
    fn page_spanning_accesses() {
        let mut m = Memory::new(0x1000);
        let base = DATA_BASE + PAGE_BYTES - 2; // straddles a page boundary
        m.load_image(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_range(base, 4), vec![1, 2, 3, 4]);
        m.write_u32(base, 0xA1B2_C3D4);
        assert_eq!(m.read_u32(base), 0xA1B2_C3D4);
    }

    #[test]
    fn fresh_memories_share_every_page() {
        let a = Memory::new(0x1000);
        let b = Memory::new(0x1000);
        assert_eq!(a.shared_pages_with(&b), a.page_count());
    }

    #[test]
    fn clone_shares_until_write_splits_one_page() {
        let mut a = Memory::new(0x1000);
        a.write_u32(DATA_BASE, 7); // private page in the source
        let mut b = a.clone();
        assert_eq!(
            b.shared_pages_with(&a),
            a.page_count(),
            "clone is all-shared"
        );
        b.write_u8(DATA_BASE + 1, 0xCC);
        assert_eq!(
            b.shared_pages_with(&a),
            a.page_count() - 1,
            "one write splits exactly one page"
        );
        // The write is visible in the clone and invisible in the source.
        assert_eq!(b.read_u8(DATA_BASE + 1), 0xCC);
        assert_eq!(a.read_u32(DATA_BASE), 7);
        assert_eq!(a.read_u8(DATA_BASE + 1), 0);
    }

    #[test]
    fn dirty_restore_touches_only_dirtied_pages() {
        let mut base = Memory::new(0x1000);
        base.load_image(DATA_BASE, &[7u8; 64]);
        let mut scratch = base.clone();
        scratch.clear_tracking(); // epoch starts: scratch ≡ base, all shared
        scratch.write_u8(DATA_BASE, 1);
        scratch.write_u8(DATA_BASE + PAGE_BYTES, 2);
        scratch.write_u32(OUTPUT_BASE, 3);
        assert_eq!(scratch.dirty_page_count(), 3);
        let before = scratch.restore_pages_scanned();
        scratch.restore_from_dirty(&base);
        assert_eq!(
            scratch.restore_pages_scanned() - before,
            3,
            "dirty restore must scan exactly the dirtied pages, not all {}",
            base.page_count()
        );
        assert_eq!(scratch.shared_pages_with(&base), base.page_count());
        assert_eq!(scratch.read_u8(DATA_BASE), 7);
        assert_eq!(scratch.read_u32(OUTPUT_BASE), 0);
        // The epoch reset: a second dirty restore scans nothing.
        let before = scratch.restore_pages_scanned();
        scratch.restore_from_dirty(&base);
        assert_eq!(scratch.restore_pages_scanned() - before, 0);
    }

    #[test]
    fn full_restore_resets_the_tracking_epoch() {
        let base = Memory::new(0x1000);
        let mut scratch = base.clone();
        scratch.write_u8(DATA_BASE, 9);
        scratch.restore_from(&base); // full scan, then tracking restarts
        assert_eq!(scratch.dirty_page_count(), 0);
        scratch.write_u8(DATA_BASE, 5);
        let before = scratch.restore_pages_scanned();
        scratch.restore_from_dirty(&base);
        assert_eq!(scratch.restore_pages_scanned() - before, 1);
        assert_eq!(scratch.read_u8(DATA_BASE), 0);
    }

    #[test]
    fn restore_reattaches_dirty_pages() {
        let mut base = Memory::new(0x1000);
        base.load_image(DATA_BASE, &[9u8; 128]);
        let mut scratch = base.clone();
        scratch.write_u8(DATA_BASE, 1);
        scratch.write_u8(OUTPUT_BASE, 2);
        assert_eq!(scratch.shared_pages_with(&base), base.page_count() - 2);
        scratch.restore_from(&base);
        assert_eq!(
            scratch.shared_pages_with(&base),
            base.page_count(),
            "restore re-shares every page"
        );
        assert_eq!(scratch.read_u8(DATA_BASE), 9);
        assert_eq!(scratch.read_u8(OUTPUT_BASE), 0);
        assert_eq!(scratch.code_limit(), base.code_limit());
    }
}
