//! Backing physical memory and the machine's memory map.
//!
//! The machine exposes a single flat physical memory with three regions:
//!
//! | region | base | purpose |
//! |--------|------|---------|
//! | code   | [`CODE_BASE`]   | instructions; execute/read-only |
//! | data   | [`DATA_BASE`]   | heap + stack (stack grows down from [`STACK_TOP`]) |
//! | output | [`OUTPUT_BASE`] | the program's *output file*: after the run, caches are written back and this range is what an I/O device (DMA) would read |
//!
//! Virtual addresses are identity-mapped; the TLBs exist so translation
//! *state* is fault-injectable (a corrupted TLB entry redirects an access to
//! the wrong physical page, exactly like the paper's TLB experiments).

/// Base address of the code region.
pub const CODE_BASE: u32 = 0x0000_0000;
/// Base address of the data region.
pub const DATA_BASE: u32 = 0x0004_0000;
/// Stack top (stack grows downward inside the data region).
pub const STACK_TOP: u32 = 0x0008_0000;
/// Base address of the output region (the program's "output file").
pub const OUTPUT_BASE: u32 = 0x0008_0000;
/// Total physical memory size in bytes.
pub const MEM_SIZE: u32 = 0x000C_0000; // 768 KiB
/// Page size used by the TLBs.
pub const PAGE_BYTES: u32 = 4096;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// Physical address outside [`MEM_SIZE`].
    OutOfRange(u32),
    /// Store targeting the read-only code region.
    WriteToCode(u32),
    /// Access crossing its natural alignment.
    Misaligned(u32),
    /// Instruction fetch outside the code region.
    ExecuteFault(u32),
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemFault::OutOfRange(a) => write!(f, "physical address {a:#010x} out of range"),
            MemFault::WriteToCode(a) => write!(f, "store to code region at {a:#010x}"),
            MemFault::Misaligned(a) => write!(f, "misaligned access at {a:#010x}"),
            MemFault::ExecuteFault(a) => write!(f, "instruction fetch outside code at {a:#010x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Flat backing memory with region protection.
///
/// This is the *physical* memory behind the cache hierarchy; the caches
/// read/write whole lines through [`Memory::read_line`]/[`Memory::write_line`].
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    code_limit: u32,
}

impl Memory {
    /// Creates zeroed memory with the code region spanning
    /// `CODE_BASE..code_limit`.
    pub fn new(code_limit: u32) -> Self {
        assert!(code_limit <= DATA_BASE, "code region overflows into data");
        Memory {
            bytes: vec![0; MEM_SIZE as usize],
            code_limit,
        }
    }

    /// End of the code region (exclusive).
    pub fn code_limit(&self) -> u32 {
        self.code_limit
    }

    /// Checks that a data access of `size` bytes at `addr` is allowed.
    pub fn check_data_access(&self, addr: u32, size: u32, is_store: bool) -> Result<(), MemFault> {
        if !addr.is_multiple_of(size) {
            return Err(MemFault::Misaligned(addr));
        }
        if u64::from(addr) + u64::from(size) > u64::from(MEM_SIZE) {
            return Err(MemFault::OutOfRange(addr));
        }
        if is_store && addr < DATA_BASE {
            return Err(MemFault::WriteToCode(addr));
        }
        Ok(())
    }

    /// Checks that an instruction fetch at `addr` is allowed.
    pub fn check_fetch(&self, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned(addr));
        }
        if addr >= self.code_limit {
            return Err(MemFault::ExecuteFault(addr));
        }
        Ok(())
    }

    /// Reads one cache line (`len` bytes) starting at `addr` (line-aligned).
    pub fn read_line(&self, addr: u32, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    /// Writes one cache line starting at `addr` (line-aligned).
    ///
    /// Writebacks with corrupted tags may target any address; writes that
    /// fall outside physical memory are dropped (the bus ignores them),
    /// which mirrors a writeback to an unpopulated physical address.
    pub fn write_line(&mut self, addr: u32, buf: &[u8]) {
        let a = addr as usize;
        if a + buf.len() <= self.bytes.len() {
            self.bytes[a..a + buf.len()].copy_from_slice(buf);
        }
    }

    /// Raw byte read (no protection check); used for loading images and for
    /// reading results after the caches are flushed.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Little-endian 32-bit read (no protection check).
    pub fn read_u32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ])
    }

    /// Raw byte write (no protection check); used when loading images.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.bytes[addr as usize] = v;
    }

    /// Little-endian 32-bit write (no protection check).
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies `src` into memory at `addr` (no protection check).
    pub fn load_image(&mut self, addr: u32, src: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + src.len()].copy_from_slice(src);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_range(&self, addr: u32, len: u32) -> Vec<u8> {
        let a = addr as usize;
        self.bytes[a..a + len as usize].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        const { assert!(CODE_BASE < DATA_BASE) };
        const { assert!(DATA_BASE < OUTPUT_BASE) };
        const { assert!(OUTPUT_BASE < MEM_SIZE) };
        assert_eq!(STACK_TOP, OUTPUT_BASE);
    }

    #[test]
    fn data_access_checks() {
        let m = Memory::new(0x1000);
        assert!(m.check_data_access(DATA_BASE, 4, true).is_ok());
        assert_eq!(
            m.check_data_access(DATA_BASE + 2, 4, false),
            Err(MemFault::Misaligned(DATA_BASE + 2))
        );
        assert_eq!(
            m.check_data_access(0x100, 4, true),
            Err(MemFault::WriteToCode(0x100))
        );
        assert!(
            m.check_data_access(0x100, 4, false).is_ok(),
            "loads from code allowed"
        );
        assert_eq!(
            m.check_data_access(MEM_SIZE, 4, false),
            Err(MemFault::OutOfRange(MEM_SIZE))
        );
        assert_eq!(
            m.check_data_access(MEM_SIZE + 4, 4, false),
            Err(MemFault::OutOfRange(MEM_SIZE + 4))
        );
    }

    #[test]
    fn fetch_checks() {
        let m = Memory::new(0x1000);
        assert!(m.check_fetch(0).is_ok());
        assert!(m.check_fetch(0xFFC).is_ok());
        assert_eq!(m.check_fetch(0x1000), Err(MemFault::ExecuteFault(0x1000)));
        assert_eq!(m.check_fetch(2), Err(MemFault::Misaligned(2)));
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new(0x1000);
        m.write_u32(DATA_BASE, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(DATA_BASE), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(DATA_BASE), 0xEF); // little endian
        let mut line = [0u8; 64];
        m.read_line(DATA_BASE, &mut line);
        assert_eq!(line[0], 0xEF);
    }

    #[test]
    fn out_of_range_writeback_dropped() {
        let mut m = Memory::new(0x1000);
        m.write_line(MEM_SIZE - 32, &[1u8; 64]); // would overflow: dropped
        assert_eq!(m.read_u8(MEM_SIZE - 32), 0);
    }
}
