//! Branch direction predictor (bimodal 2-bit counters) and branch target
//! buffer.
//!
//! Predictor state is *control logic* in the paper's fault model, not an
//! injected storage array — it exists so speculation (and therefore
//! hardware masking of faults in squashed wrong-path state) is real.

/// Bimodal predictor + BTB.
#[derive(Debug, Clone)]
pub struct Predictor {
    counters: Vec<u8>,
    btb_tags: Vec<u32>,
    btb_targets: Vec<u32>,
    btb_valid: Vec<bool>,
}

impl Predictor {
    /// Creates a predictor with `counters` 2-bit entries (weakly not-taken)
    /// and `btb` target entries. Both must be powers of two.
    pub fn new(counters: u32, btb: u32) -> Self {
        assert!(counters.is_power_of_two() && btb.is_power_of_two());
        Predictor {
            counters: vec![1; counters as usize],
            btb_tags: vec![0; btb as usize],
            btb_targets: vec![0; btb as usize],
            btb_valid: vec![false; btb as usize],
        }
    }

    fn ctr_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    fn btb_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.btb_tags.len() - 1)
    }

    /// Predicts the direction of a conditional branch at `pc`.
    pub fn predict_taken(&self, pc: u32) -> bool {
        self.counters[self.ctr_index(pc)] >= 2
    }

    /// Predicted target for a control instruction at `pc`, if the BTB has
    /// one.
    pub fn predict_target(&self, pc: u32) -> Option<u32> {
        let i = self.btb_index(pc);
        (self.btb_valid[i] && self.btb_tags[i] == pc).then(|| self.btb_targets[i])
    }

    /// Trains the direction counter after a branch resolves.
    pub fn train_direction(&mut self, pc: u32, taken: bool) {
        let i = self.ctr_index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Records the resolved target of a taken control instruction.
    pub fn train_target(&mut self, pc: u32, target: u32) {
        let i = self.btb_index(pc);
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
        self.btb_valid[i] = true;
    }

    /// Overwrites this predictor with `src`'s state without reallocating.
    pub fn restore_from(&mut self, src: &Predictor) {
        debug_assert_eq!(self.counters.len(), src.counters.len());
        self.counters.copy_from_slice(&src.counters);
        self.btb_tags.copy_from_slice(&src.btb_tags);
        self.btb_targets.copy_from_slice(&src.btb_targets);
        self.btb_valid.copy_from_slice(&src.btb_valid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_weakly_not_taken() {
        let p = Predictor::new(16, 8);
        assert!(!p.predict_taken(0x40));
    }

    #[test]
    fn learns_taken_branches() {
        let mut p = Predictor::new(16, 8);
        p.train_direction(0x40, true);
        assert!(p.predict_taken(0x40));
        p.train_direction(0x40, true);
        p.train_direction(0x40, false);
        assert!(p.predict_taken(0x40), "hysteresis keeps prediction");
        p.train_direction(0x40, false);
        p.train_direction(0x40, false);
        assert!(!p.predict_taken(0x40));
    }

    #[test]
    fn btb_roundtrip_and_tag_check() {
        let mut p = Predictor::new(16, 8);
        assert_eq!(p.predict_target(0x100), None);
        p.train_target(0x100, 0x40);
        assert_eq!(p.predict_target(0x100), Some(0x40));
        // Aliased PC (same index, different tag) must miss.
        assert_eq!(p.predict_target(0x100 + 8 * 4), None);
    }

    #[test]
    fn counters_saturate() {
        let mut p = Predictor::new(16, 8);
        for _ in 0..10 {
            p.train_direction(0, true);
        }
        assert!(p.predict_taken(0));
        for _ in 0..10 {
            p.train_direction(0, false);
        }
        assert!(!p.predict_taken(0));
    }
}
