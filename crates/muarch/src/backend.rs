//! The execution-backend boundary between the cycle pipeline and the
//! architectural tiers.
//!
//! AVGI mixes execution tiers: fault-free regions run at architectural
//! speed on an interpreter while injected windows run on the cycle-accurate
//! pipeline (the ZOFI idea, in-process). Correctness of the mix rests on one
//! contract — *every tier produces the same architectural commit stream* —
//! and this module is that contract made explicit. [`ExecBackend`] is the
//! smallest interface a tier must offer to be cross-checked: a stream of
//! [`ArchCommit`]s, a terminal state, and the program's output bytes.
//!
//! `muarch` itself implements the trait for a recorded pipeline commit trace
//! ([`TraceBackend`]); `avgi-refmodel` implements it for the step-by-step
//! reference interpreter and the pre-decoded fast tier. [`compare_backends`]
//! drives two backends in lockstep and reports the first disagreement,
//! which is how the `--xtier` cross-check proves bit-identity.

use crate::run::TrapKind;
use crate::trace::{CommitRecord, GoldenRun};

/// One architecturally committed instruction, stripped of timing.
///
/// The four fields are exactly the architectural subset of a pipeline
/// [`CommitRecord`] (whose `cycle` field is timing, not architecture) and of
/// a reference-model step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchCommit {
    /// Address of the instruction (or of the faulting fetch).
    pub pc: u32,
    /// Fetched instruction word (`0` when the fetch itself faulted).
    pub raw: u32,
    /// Effective byte address for loads/stores (trapping ones included).
    pub ea: u32,
    /// Result value: ALU result / extended load / masked store data / link.
    pub val: u32,
}

impl From<&CommitRecord> for ArchCommit {
    fn from(rec: &CommitRecord) -> Self {
        ArchCommit {
            pc: rec.pc,
            raw: rec.raw,
            ea: rec.ea,
            val: rec.val,
        }
    }
}

impl std::fmt::Display for ArchCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pc={:#010x} raw={:#010x} ea={:#010x} val={:#010x}",
            self.pc, self.raw, self.ea, self.val
        )
    }
}

/// How a backend's execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEnd {
    /// A `halt` instruction committed.
    Completed,
    /// The program trapped.
    Trap(TrapKind),
}

/// An execution tier viewed as an architectural commit stream.
///
/// The stream includes *every* committed instruction, terminal ones too: a
/// completed run ends with the `halt` commit, a trapping run with the commit
/// record of the trapping instruction.
pub trait ExecBackend {
    /// Short name used in mismatch reports (`"pipeline-trace"`, `"fast"`, …).
    fn label(&self) -> &'static str;

    /// The next committed instruction, or `None` once execution ended.
    fn next_commit(&mut self) -> Option<ArchCommit>;

    /// Terminal state, `None` while the backend can still commit (or when it
    /// stopped on an exhausted step budget).
    fn end(&self) -> Option<BackendEnd>;

    /// The program's output window as this backend left it.
    fn output_bytes(&self) -> Vec<u8>;
}

/// A captured fault-free pipeline run replayed as a backend.
pub struct TraceBackend<'a> {
    golden: &'a GoldenRun,
    at: usize,
}

impl<'a> TraceBackend<'a> {
    /// Replay `golden` from its first commit.
    pub fn new(golden: &'a GoldenRun) -> Self {
        TraceBackend { golden, at: 0 }
    }
}

impl ExecBackend for TraceBackend<'_> {
    fn label(&self) -> &'static str {
        "pipeline-trace"
    }

    fn next_commit(&mut self) -> Option<ArchCommit> {
        let rec = self.golden.trace.get(self.at)?;
        self.at += 1;
        Some(ArchCommit::from(rec))
    }

    fn end(&self) -> Option<BackendEnd> {
        // Golden runs are completed fault-free executions by construction.
        Some(BackendEnd::Completed)
    }

    fn output_bytes(&self) -> Vec<u8> {
        self.golden.output.clone()
    }
}

/// Drives two backends commit-for-commit and reports the first disagreement:
/// a differing commit, one stream ending early, differing terminal states,
/// or differing output bytes. Returns the number of commits compared.
///
/// `max_commits` bounds the walk so two agreeing-but-diverging backends (or
/// a runaway program) cannot hang the check.
pub fn compare_backends(
    a: &mut dyn ExecBackend,
    b: &mut dyn ExecBackend,
    max_commits: u64,
) -> Result<u64, String> {
    let mut compared = 0u64;
    loop {
        match (a.next_commit(), b.next_commit()) {
            (Some(x), Some(y)) => {
                if x != y {
                    return Err(format!(
                        "commit #{compared} differs:\n  {}: {x}\n  {}: {y}",
                        a.label(),
                        b.label()
                    ));
                }
                compared += 1;
                if compared >= max_commits {
                    return Err(format!(
                        "commit budget {max_commits} exhausted with both streams still running"
                    ));
                }
            }
            (None, None) => break,
            (Some(x), None) => {
                return Err(format!(
                    "`{}` ended after {compared} commits but `{}` continues with {x}",
                    b.label(),
                    a.label()
                ));
            }
            (None, Some(y)) => {
                return Err(format!(
                    "`{}` ended after {compared} commits but `{}` continues with {y}",
                    a.label(),
                    b.label()
                ));
            }
        }
    }
    if a.end() != b.end() {
        return Err(format!(
            "terminal states differ after {compared} commits: {}={:?}, {}={:?}",
            a.label(),
            a.end(),
            b.label(),
            b.end()
        ));
    }
    let (oa, ob) = (a.output_bytes(), b.output_bytes());
    if oa != ob {
        let offset = oa.iter().zip(&ob).position(|(x, y)| x != y);
        return Err(format!(
            "output bytes differ between `{}` ({} bytes) and `{}` ({} bytes), first at {offset:?}",
            a.label(),
            oa.len(),
            b.label(),
            ob.len()
        ));
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MuarchConfig;
    use crate::pipeline::capture_golden;
    use crate::program::Program;
    use avgi_isa::asm::Assembler;
    use avgi_isa::reg::{A0, ZERO};

    fn tiny_golden() -> std::sync::Arc<GoldenRun> {
        let mut a = Assembler::new(0);
        a.li32(A0, 3);
        a.label("loop");
        a.addi(A0, A0, -1);
        a.bne(A0, ZERO, "loop");
        a.halt();
        let program = Program::new("tiny", a.assemble().unwrap(), 0);
        capture_golden(&program, &MuarchConfig::small(), 1_000_000)
    }

    #[test]
    fn trace_backend_replays_every_commit_and_agrees_with_itself() {
        let golden = tiny_golden();
        let mut a = TraceBackend::new(&golden);
        let mut b = TraceBackend::new(&golden);
        let n = compare_backends(&mut a, &mut b, 1_000_000).expect("identical streams");
        assert_eq!(n, golden.trace.len() as u64);
    }

    #[test]
    fn compare_backends_reports_early_end() {
        let golden = tiny_golden();
        let mut short = (*golden).clone();
        short.trace.pop();
        let mut a = TraceBackend::new(&golden);
        let mut b = TraceBackend::new(&short);
        let err = compare_backends(&mut a, &mut b, 1_000_000).unwrap_err();
        assert!(err.contains("ended after"), "unexpected error: {err}");
    }
}
