//! Run control and run reports.

use crate::fault::Structure;
use crate::mem::MemFault;
use crate::trace::{CommitRecord, Deviation, GoldenRun};
use std::sync::Arc;

/// An architecturally visible trap that terminates the program (a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// A committed instruction word does not decode (unknown opcode,
    /// undefined register index, or non-zero pad).
    UndefinedInstruction,
    /// A memory access or instruction fetch faulted.
    Memory(MemFault),
}

/// How a simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// `halt` committed; the output region is valid.
    Completed,
    /// An architectural trap crashed the program.
    Trap(TrapKind),
    /// A commit-side integrity check on ROB/LQ/SQ state failed — the
    /// simulator aborted before any architectural effect (the paper's `PRE`
    /// precursor).
    IntegrityViolation(Structure),
    /// The watchdog cycle limit expired (hang).
    Watchdog,
    /// Early stop: the first commit-trace deviation was observed and
    /// `stop_at_first_deviation` was set (AVGI insights 1 & 2).
    StoppedAtDeviation,
    /// Early stop: the effective-residency-time window elapsed with no
    /// deviation (AVGI insight 3); the fault is Benign for IMM purposes.
    ErtExpired,
    /// The per-run wall-clock budget ([`RunControl::wall_budget`]) expired.
    /// Treated exactly like [`RunOutcome::Watchdog`]: the run is a hang for
    /// classification purposes, but the bound holds even when the cycle
    /// watchdog is generous and a pathological faulty state collapses the
    /// simulation rate.
    WallClockExpired,
    /// The simulator itself panicked while executing this run (an internal
    /// invariant was violated by the injected state). Produced by the
    /// campaign layer's panic isolation, never by [`crate::pipeline::Sim`]
    /// directly; the truncated panic message travels on the campaign's
    /// `InjectionResult`.
    SimAbort,
}

impl RunOutcome {
    /// Whether this outcome is a crash (trap, integrity violation, hang, or
    /// simulator abort).
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            RunOutcome::Trap(_)
                | RunOutcome::IntegrityViolation(_)
                | RunOutcome::Watchdog
                | RunOutcome::WallClockExpired
                | RunOutcome::SimAbort
        )
    }
}

/// Parameters controlling one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Watchdog: abort with [`RunOutcome::Watchdog`] past this many cycles.
    /// `0` means "no limit" (only safe for golden runs of known programs).
    pub max_cycles: u64,
    /// Golden run to compare commits against (faulty runs).
    pub golden: Option<Arc<GoldenRun>>,
    /// Stop as soon as the first commit-trace deviation is seen.
    pub stop_at_first_deviation: bool,
    /// Stop `window` cycles after injection if no deviation has been seen.
    pub ert_window: Option<u64>,
    /// Record the full commit trace (golden-capture runs).
    pub record_trace: bool,
    /// Wall-clock budget for the run, checked every [`WALL_CHECK_CYCLES`]
    /// cycles; expiry ends the run with [`RunOutcome::WallClockExpired`].
    /// `None` (the default) disables the check and keeps runs fully
    /// deterministic.
    pub wall_budget: Option<std::time::Duration>,
}

/// How often (in cycles) the wall-clock budget is polled. A power of two so
/// the check compiles to a mask test on the hot path.
pub const WALL_CHECK_CYCLES: u64 = 4096;

/// Performance/behaviour counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// ITLB misses.
    pub itlb_misses: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// Branch mispredictions (including indirect-target mispredictions).
    pub mispredicts: u64,
    /// Instructions squashed by recovery.
    pub squashed: u64,
    /// Register-file ACE instrumentation: total cycles during which
    /// physical registers held values still to be consumed
    /// (writeback → last read, summed over registers).
    pub rf_ace_cycles: u64,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Total cycles simulated.
    pub cycles: u64,
    /// First commit-trace deviation, if one was observed.
    pub first_deviation: Option<Deviation>,
    /// Output-region bytes (present only when the run completed).
    pub output: Option<Vec<u8>>,
    /// Full commit trace (present only when `record_trace` was set).
    pub trace: Option<Vec<CommitRecord>>,
    /// Cycle at which the (first) fault was injected, if any was armed.
    pub inject_cycle: Option<u64>,
    /// Counters.
    pub stats: ExecStats,
}

impl RunReport {
    /// Cycles simulated after fault injection — the quantity the paper's
    /// speedup comparison counts (pre-injection cycles are skipped by
    /// checkpointing in both the traditional and the AVGI flow, §IV.B).
    pub fn post_inject_cycles(&self) -> u64 {
        match self.inject_cycle {
            Some(at) => self.cycles.saturating_sub(at),
            None => self.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_outcomes_classified() {
        assert!(RunOutcome::Trap(TrapKind::UndefinedInstruction).is_crash());
        assert!(RunOutcome::Trap(TrapKind::Memory(MemFault::OutOfRange(0))).is_crash());
        assert!(RunOutcome::IntegrityViolation(Structure::Rob).is_crash());
        assert!(RunOutcome::Watchdog.is_crash());
        assert!(RunOutcome::WallClockExpired.is_crash());
        assert!(RunOutcome::SimAbort.is_crash());
        assert!(!RunOutcome::Completed.is_crash());
        assert!(!RunOutcome::StoppedAtDeviation.is_crash());
        assert!(!RunOutcome::ErtExpired.is_crash());
    }

    #[test]
    fn post_inject_cycles_accounting() {
        let mut r = RunReport {
            outcome: RunOutcome::Completed,
            cycles: 1_000,
            first_deviation: None,
            output: None,
            trace: None,
            inject_cycle: None,
            stats: ExecStats::default(),
        };
        assert_eq!(
            r.post_inject_cycles(),
            1_000,
            "no injection: full run counts"
        );
        r.inject_cycle = Some(400);
        assert_eq!(r.post_inject_cycles(), 600);
        r.inject_cycle = Some(2_000); // armed after the end: saturates
        assert_eq!(r.post_inject_cycles(), 0);
    }
}
