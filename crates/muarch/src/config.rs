//! Microarchitecture configurations.
//!
//! Two configurations mirror the paper's two CPU models: a "big"
//! out-of-order core standing in for the Arm Cortex-A72-like model of the
//! main evaluation (§II.D), and a "small" core standing in for the
//! Cortex-A15-like model of the case study (§VI). Structure capacities are
//! scaled down together with workload execution lengths (see `DESIGN.md`)
//! so the ratios the methodology depends on are preserved.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.sets * self.ways
    }

    /// log2(line size).
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// log2(sets).
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Width of the stored tag in bits (32-bit physical addresses).
    pub fn tag_bits(&self) -> u32 {
        32 - self.offset_bits() - self.index_bits()
    }
}

/// Access latencies, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 hit latency (both I and D).
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// Main-memory access latency.
    pub mem: u64,
    /// TLB-miss page-walk penalty.
    pub tlb_walk: u64,
    /// Simple ALU operation.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// Front-end refill penalty after a control-flow redirect.
    pub redirect: u64,
}

/// A full microarchitecture configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuarchConfig {
    /// Human-readable name (appears in reports).
    pub name: &'static str,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to execution per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Load-queue entries.
    pub lq_entries: u32,
    /// Store-queue entries.
    pub sq_entries: u32,
    /// Physical registers (must exceed the 24 architectural registers).
    pub phys_regs: u32,
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Instruction-TLB entries (fully associative).
    pub itlb_entries: u32,
    /// Data-TLB entries (fully associative).
    pub dtlb_entries: u32,
    /// Bimodal predictor entries (power of two).
    pub predictor_entries: u32,
    /// Branch-target-buffer entries (power of two).
    pub btb_entries: u32,
    /// Next-line prefetch into L2 on L2 misses (ablation knob; the paper
    /// notes prefetch traffic extends data-cache residency windows, §V.A).
    pub prefetch_next_line: bool,
    /// Latency table.
    pub lat: Latencies,
}

impl MuarchConfig {
    /// The "big" out-of-order core: the Cortex-A72-like model of the paper's
    /// main evaluation.
    pub fn big() -> Self {
        MuarchConfig {
            name: "avgi-big (Cortex-A72-like)",
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 64,
            iq_entries: 32,
            lq_entries: 16,
            sq_entries: 16,
            phys_regs: 96,
            l1i: CacheGeometry {
                sets: 64,
                ways: 2,
                line_bytes: 64,
            }, // 8 KiB
            l1d: CacheGeometry {
                sets: 32,
                ways: 4,
                line_bytes: 64,
            }, // 8 KiB
            l2: CacheGeometry {
                sets: 128,
                ways: 8,
                line_bytes: 64,
            }, // 64 KiB
            itlb_entries: 16,
            dtlb_entries: 16,
            predictor_entries: 512,
            btb_entries: 128,
            prefetch_next_line: false,
            lat: Latencies {
                l1: 2,
                l2: 12,
                mem: 60,
                tlb_walk: 20,
                alu: 1,
                mul: 3,
                div: 12,
                redirect: 8,
            },
        }
    }

    /// The "small" core: the Cortex-A15-like model of the paper's §VI case
    /// study on a second microarchitecture.
    pub fn small() -> Self {
        MuarchConfig {
            name: "avgi-small (Cortex-A15-like)",
            fetch_width: 2,
            dispatch_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 32,
            iq_entries: 16,
            lq_entries: 8,
            sq_entries: 8,
            phys_regs: 56,
            l1i: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 64,
            }, // 4 KiB
            l1d: CacheGeometry {
                sets: 32,
                ways: 2,
                line_bytes: 64,
            }, // 4 KiB
            l2: CacheGeometry {
                sets: 64,
                ways: 8,
                line_bytes: 64,
            }, // 32 KiB
            itlb_entries: 8,
            dtlb_entries: 8,
            predictor_entries: 256,
            btb_entries: 64,
            prefetch_next_line: false,
            lat: Latencies {
                l1: 2,
                l2: 10,
                mem: 50,
                tlb_walk: 16,
                alu: 1,
                mul: 4,
                div: 16,
                redirect: 6,
            },
        }
    }

    /// Validates internal consistency (powers of two, capacities).
    ///
    /// # Panics
    ///
    /// Panics with a description when the configuration is inconsistent;
    /// used by constructors in debug builds and by tests.
    pub fn validate(&self) {
        for (label, g) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            assert!(
                g.sets.is_power_of_two(),
                "{label}.sets must be a power of two"
            );
            assert!(
                g.line_bytes.is_power_of_two(),
                "{label}.line_bytes must be a power of two"
            );
            assert!(g.ways >= 1, "{label}.ways must be >= 1");
            assert!(
                g.line_bytes as usize <= crate::cache::MAX_LINE_BYTES,
                "{label}.line_bytes exceeds MAX_LINE_BYTES"
            );
        }
        // The pipeline stages lines between levels in one inline buffer and
        // slices per level, which is only address-correct when all levels
        // agree on the line size.
        assert!(
            self.l1i.line_bytes == self.l2.line_bytes && self.l1d.line_bytes == self.l2.line_bytes,
            "all cache levels must share one line size"
        );
        assert!(
            self.phys_regs > u32::from(avgi_isa::NUM_ARCH_REGS),
            "need free physical regs"
        );
        assert!(self.predictor_entries.is_power_of_two());
        assert!(self.btb_entries.is_power_of_two());
        assert!(self.rob_entries >= self.commit_width);
        assert!(self.lq_entries >= 1 && self.sq_entries >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_configs_validate() {
        MuarchConfig::big().validate();
        MuarchConfig::small().validate();
    }

    #[test]
    fn geometry_math() {
        let g = MuarchConfig::big().l1i;
        assert_eq!(g.capacity_bytes(), 8 * 1024);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.index_bits(), 6);
        assert_eq!(g.tag_bits(), 20);
        assert_eq!(g.lines(), 128);
    }

    #[test]
    fn small_is_smaller_than_big() {
        let b = MuarchConfig::big();
        let s = MuarchConfig::small();
        assert!(s.rob_entries < b.rob_entries);
        assert!(s.phys_regs < b.phys_regs);
        assert!(s.l2.capacity_bytes() < b.l2.capacity_bytes());
        assert!(s.fetch_width < b.fetch_width);
    }
}
