//! # avgi-muarch — the microarchitecture simulator substrate
//!
//! A from-scratch, cycle-driven, out-of-order CPU simulator standing in for
//! gem5 in the AVGI reproduction. It models the twelve fault-injectable
//! hardware structures of the paper's evaluation — L1I/L1D/L2 tag and data
//! arrays, the physical register file, ROB, load queue, store queue, and
//! both TLBs — as *real storage*: a flipped bit propagates (or is masked)
//! through genuine microarchitectural mechanisms (overwrites, invalid
//! entries, squashed speculation, cache evictions, commit-side integrity
//! checks).
//!
//! The top-level entry points are [`Sim`] (one run),
//! [`capture_golden`] (record the fault-free
//! reference), and the [`Fault`]/[`Structure`]
//! types naming injection targets.
//!
//! ## Example
//!
//! ```
//! use avgi_isa::asm::Assembler;
//! use avgi_isa::reg::{A0, ZERO};
//! use avgi_muarch::config::MuarchConfig;
//! use avgi_muarch::pipeline::{capture_golden, Sim};
//! use avgi_muarch::program::Program;
//! use avgi_muarch::run::{RunControl, RunOutcome};
//!
//! let mut a = Assembler::new(0);
//! a.li32(A0, 5);
//! a.label("loop");
//! a.addi(A0, A0, -1);
//! a.bne(A0, ZERO, "loop");
//! a.halt();
//! let program = Program::new("countdown", a.assemble().unwrap(), 0);
//!
//! let golden = capture_golden(&program, &MuarchConfig::big(), 1_000_000);
//! assert!(golden.cycles > 0);
//!
//! let mut sim = Sim::new(&program, MuarchConfig::big());
//! let report = sim.run(&RunControl { max_cycles: 1_000_000, ..Default::default() });
//! assert_eq!(report.outcome, RunOutcome::Completed);
//! assert_eq!(report.cycles, golden.cycles, "deterministic timing");
//! ```

pub mod backend;
pub mod cache;
pub mod config;
pub mod exec;
pub mod fault;
pub mod mem;
pub mod pipeline;
pub mod predictor;
pub mod program;
pub mod queues;
pub mod regfile;
pub mod run;
pub mod tlb;
pub mod trace;

pub use backend::{compare_backends, ArchCommit, BackendEnd, ExecBackend, TraceBackend};
pub use config::MuarchConfig;
pub use fault::{Fault, FaultSite, Structure};
pub use pipeline::{capture_golden, Sim, Snapshot};
pub use program::Program;
pub use run::{RunControl, RunOutcome, RunReport, TrapKind};
pub use trace::{CommitRecord, Deviation, GoldenRun};
