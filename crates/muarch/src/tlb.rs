//! Fully associative translation lookaside buffers.
//!
//! The machine identity-maps virtual to physical addresses, so in a
//! fault-free run the TLB only adds (deterministic) miss latency. Its
//! *storage* is fault-injectable though: a flipped `vpn` bit makes an entry
//! unreachable (timing-only effect), while a flipped `pfn` bit silently
//! redirects every access through that entry to the wrong physical page —
//! the mechanism behind the paper's I/D-TLB fault effects.

use crate::mem::PAGE_BYTES;

/// Injectable bits per TLB entry: 20-bit VPN + 20-bit PFN + valid.
pub const TLB_ENTRY_BITS: u32 = 41;

const VPN_MASK: u64 = 0xF_FFFF;
const PFN_SHIFT: u32 = 20;
const VALID_BIT: u32 = 40;

/// A fully associative TLB with round-robin replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Packed entries: bits `[0..20)` vpn, `[20..40)` pfn, bit 40 valid.
    entries: Vec<u64>,
    next: usize,
}

impl Tlb {
    /// Creates an empty TLB with `n` entries.
    pub fn new(n: u32) -> Self {
        Tlb {
            entries: vec![0; n as usize],
            next: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB has no entries (never true for real configs).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Translates `vaddr`; `Some(paddr)` on a hit.
    pub fn translate(&self, vaddr: u32) -> Option<u32> {
        let vpn = u64::from(vaddr / PAGE_BYTES);
        for &e in &self.entries {
            if e >> VALID_BIT & 1 == 1 && e & VPN_MASK == vpn {
                let pfn = (e >> PFN_SHIFT & VPN_MASK) as u32;
                return Some(pfn * PAGE_BYTES + (vaddr & (PAGE_BYTES - 1)));
            }
        }
        None
    }

    /// Installs the identity mapping for `vaddr`'s page (the page-table walk
    /// result), evicting round-robin.
    pub fn refill(&mut self, vaddr: u32) {
        let vpn = u64::from(vaddr / PAGE_BYTES);
        self.entries[self.next] = vpn | vpn << PFN_SHIFT | 1 << VALID_BIT;
        self.next = (self.next + 1) % self.entries.len();
    }

    /// Total injectable bits.
    pub fn bit_count(&self) -> u64 {
        self.entries.len() as u64 * u64::from(TLB_ENTRY_BITS)
    }

    /// Flips one bit (flat index: `entry * TLB_ENTRY_BITS + bit_in_entry`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_bit(&mut self, bit: u64) {
        let e = (bit / u64::from(TLB_ENTRY_BITS)) as usize;
        let b = bit % u64::from(TLB_ENTRY_BITS);
        assert!(e < self.entries.len(), "TLB bit out of range");
        self.entries[e] ^= 1 << b;
    }

    /// Overwrites this TLB with `src`'s state without reallocating.
    pub fn restore_from(&mut self, src: &Tlb) {
        debug_assert_eq!(self.entries.len(), src.entries.len());
        self.entries.copy_from_slice(&src.entries);
        self.next = src.next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_refill_then_hit() {
        let mut t = Tlb::new(4);
        assert_eq!(t.translate(0x5123), None);
        t.refill(0x5123);
        assert_eq!(t.translate(0x5123), Some(0x5123));
        assert_eq!(t.translate(0x5FFF), Some(0x5FFF), "same page hits");
        assert_eq!(t.translate(0x6000), None, "next page misses");
    }

    #[test]
    fn round_robin_eviction() {
        let mut t = Tlb::new(2);
        t.refill(0x0000);
        t.refill(0x1000);
        t.refill(0x2000); // evicts 0x0000's page
        assert_eq!(t.translate(0x0000), None);
        assert_eq!(t.translate(0x1000), Some(0x1000));
        assert_eq!(t.translate(0x2000), Some(0x2000));
    }

    #[test]
    fn pfn_flip_redirects_translation() {
        let mut t = Tlb::new(1);
        t.refill(0x3000);
        t.flip_bit(u64::from(PFN_SHIFT)); // lowest pfn bit of entry 0
        assert_eq!(
            t.translate(0x3000),
            Some(0x2000),
            "page 3 now maps to page 2"
        );
    }

    #[test]
    fn vpn_flip_makes_entry_unreachable() {
        let mut t = Tlb::new(1);
        t.refill(0x3000);
        t.flip_bit(0); // lowest vpn bit
        assert_eq!(t.translate(0x3000), None);
        // ...but the corrupted entry now answers for a different page.
        assert_eq!(t.translate(0x2000), Some(0x3000));
    }

    #[test]
    fn valid_flip_invalidates() {
        let mut t = Tlb::new(1);
        t.refill(0x3000);
        t.flip_bit(u64::from(VALID_BIT));
        assert_eq!(t.translate(0x3000), None);
    }

    #[test]
    fn bit_count() {
        assert_eq!(Tlb::new(16).bit_count(), 16 * 41);
    }
}
