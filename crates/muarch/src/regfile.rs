//! Physical register file with rename map and free list.
//!
//! The *value* array is fault-injectable and authoritative: a flipped bit is
//! what a later reader receives. Rename map, ready bits, and the free list
//! are renaming control logic, outside the paper's storage fault model.

/// Physical register identifier.
pub type PhysReg = u16;

/// Physical register file + renaming state.
#[derive(Debug, Clone)]
pub struct RegFile {
    values: Vec<u32>,
    ready: Vec<bool>,
    rename: [PhysReg; avgi_isa::NUM_ARCH_REGS as usize],
    free: Vec<PhysReg>,
    // ACE instrumentation: writeback→last-read exposure per register.
    last_write: Vec<u64>,
    last_read: Vec<u64>,
    ace_cycles: u64,
}

impl RegFile {
    /// Creates a register file with `phys` physical registers; architectural
    /// register `i` starts mapped to physical register `i` with value 0.
    ///
    /// # Panics
    ///
    /// Panics if `phys` does not exceed the architectural register count.
    pub fn new(phys: u32) -> Self {
        let arch = avgi_isa::NUM_ARCH_REGS as u32;
        assert!(
            phys > arch,
            "need more physical than architectural registers"
        );
        let mut rename = [0; avgi_isa::NUM_ARCH_REGS as usize];
        for (i, r) in rename.iter_mut().enumerate() {
            *r = i as PhysReg;
        }
        // Free list as a stack; pop from the end. Reversed so low registers
        // are handed out first (deterministic, easier to debug).
        let free: Vec<PhysReg> = (arch as PhysReg..phys as PhysReg).rev().collect();
        RegFile {
            values: vec![0; phys as usize],
            ready: vec![true; phys as usize],
            rename,
            free,
            last_write: vec![0; phys as usize],
            last_read: vec![0; phys as usize],
            ace_cycles: 0,
        }
    }

    /// Reads a physical register's value.
    pub fn read(&self, p: PhysReg) -> u32 {
        self.values[p as usize]
    }

    /// Reads a physical register's value, recording the read cycle for ACE
    /// instrumentation.
    pub fn read_at(&mut self, p: PhysReg, cycle: u64) -> u32 {
        let i = p as usize;
        self.last_read[i] = self.last_read[i].max(cycle);
        self.values[i]
    }

    /// Writes a physical register and marks it ready.
    pub fn write(&mut self, p: PhysReg, v: u32) {
        self.values[p as usize] = v;
        self.ready[p as usize] = true;
    }

    /// Writes a physical register at `cycle` (ACE intervals are anchored at
    /// allocation, not writeback — see [`RegFile::alloc_at`]).
    pub fn write_at(&mut self, p: PhysReg, v: u32, cycle: u64) {
        let _ = cycle;
        self.write(p, v);
    }

    fn close_interval(&mut self, i: usize) {
        if self.last_read[i] > self.last_write[i] {
            self.ace_cycles += self.last_read[i] - self.last_write[i];
        }
    }

    /// Like [`RegFile::alloc`], additionally starting the register's ACE
    /// interval at `cycle`.
    ///
    /// ACE analysis counts a physical register as vulnerable from
    /// *allocation* (rename) to its value's last read — the standard
    /// conservative accounting. Fault injection shows flips landing between
    /// allocation and writeback are harmless (the writeback overwrites
    /// them); that slack is part of why ACE systematically overestimates
    /// SFI ground truth (the paper's Fig. 1).
    pub fn alloc_at(&mut self, cycle: u64) -> Option<PhysReg> {
        let p = self.alloc()?;
        let i = p as usize;
        self.close_interval(i); // the previous tenant's interval
        self.last_write[i] = cycle;
        self.last_read[i] = cycle;
        Some(p)
    }

    /// Closes all open ACE intervals and returns the total register ACE
    /// cycles of the run: per allocation, the cycles from rename to the
    /// value's last read, summed over registers.
    pub fn finalize_ace(&mut self) -> u64 {
        for i in 0..self.values.len() {
            self.close_interval(i);
            self.last_write[i] = self.last_read[i];
        }
        self.ace_cycles
    }

    /// Whether a physical register's value has been produced.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p as usize]
    }

    /// Current physical mapping of an architectural register.
    pub fn lookup(&self, arch: u8) -> PhysReg {
        self.rename[arch as usize]
    }

    /// Allocates a free physical register (marked not-ready), or `None` when
    /// the free list is empty (dispatch must stall).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let p = self.free.pop()?;
        self.ready[p as usize] = false;
        Some(p)
    }

    /// Points `arch` at `new`, returning the previous mapping.
    pub fn remap(&mut self, arch: u8, new: PhysReg) -> PhysReg {
        core::mem::replace(&mut self.rename[arch as usize], new)
    }

    /// Returns a register to the free list (commit frees the overwritten
    /// mapping; squash frees the speculative one).
    pub fn release(&mut self, p: PhysReg) {
        self.free.push(p);
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total injectable bits (32 per physical register).
    pub fn bit_count(&self) -> u64 {
        self.values.len() as u64 * 32
    }

    /// Flips one value bit (flat index `reg * 32 + bit`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_bit(&mut self, bit: u64) {
        let r = (bit / 32) as usize;
        assert!(r < self.values.len(), "register bit out of range");
        self.values[r] ^= 1 << (bit % 32);
    }

    /// Overwrites this register file with `src`'s state, reusing every
    /// existing allocation.
    pub fn restore_from(&mut self, src: &RegFile) {
        debug_assert_eq!(self.values.len(), src.values.len());
        self.values.copy_from_slice(&src.values);
        self.ready.copy_from_slice(&src.ready);
        self.rename = src.rename;
        self.free.clear();
        self.free.extend_from_slice(&src.free);
        self.last_write.copy_from_slice(&src.last_write);
        self.last_read.copy_from_slice(&src.last_read);
        self.ace_cycles = src.ace_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_identity_mapping() {
        let rf = RegFile::new(40);
        for a in 0..avgi_isa::NUM_ARCH_REGS {
            assert_eq!(rf.lookup(a), PhysReg::from(a));
        }
        assert_eq!(rf.free_count(), 40 - 24);
    }

    #[test]
    fn alloc_remap_release_cycle() {
        let mut rf = RegFile::new(26);
        let p = rf.alloc().unwrap();
        assert!(!rf.is_ready(p));
        let prev = rf.remap(3, p);
        assert_eq!(prev, 3);
        assert_eq!(rf.lookup(3), p);
        rf.write(p, 99);
        assert!(rf.is_ready(p));
        assert_eq!(rf.read(p), 99);
        rf.release(prev);
        // Two free regs were consumed/released: allocator still works.
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_none(), "free list exhausted");
    }

    #[test]
    fn flip_bit_corrupts_value() {
        let mut rf = RegFile::new(32);
        rf.write(5, 0b100);
        rf.flip_bit(5 * 32 + 2);
        assert_eq!(rf.read(5), 0);
        rf.flip_bit(5 * 32 + 31);
        assert_eq!(rf.read(5), 0x8000_0000);
    }

    #[test]
    fn bit_count() {
        assert_eq!(RegFile::new(96).bit_count(), 96 * 32);
    }
}
