//! Fault-injection targets: the 12 hardware structures of the paper.
//!
//! Every injectable structure exposes its storage as a flat, contiguous bit
//! array; a [`FaultSite`] names one bit within one structure, and a
//! [`Fault`] adds the injection cycle. Uniform statistical sampling (per
//! Leveugle et al., the paper's \[1\]) then amounts to drawing a uniform bit
//! index and a uniform cycle.

use crate::config::MuarchConfig;
use core::fmt;

/// The twelve fault-injection targets of the paper's evaluation (§II.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Structure {
    /// L1 instruction cache, tag array.
    L1ITag,
    /// L1 instruction cache, data array.
    L1IData,
    /// L1 data cache, tag array.
    L1DTag,
    /// L1 data cache, data array.
    L1DData,
    /// Unified L2, tag array.
    L2Tag,
    /// Unified L2, data array.
    L2Data,
    /// Physical register file.
    RegFile,
    /// Reorder buffer.
    Rob,
    /// Load queue.
    Lq,
    /// Store queue.
    Sq,
    /// Instruction TLB.
    Itlb,
    /// Data TLB.
    Dtlb,
}

impl Structure {
    /// All twelve structures, in a stable report order.
    pub fn all() -> &'static [Structure] {
        use Structure::*;
        &[
            RegFile, Dtlb, Itlb, L1IData, L1ITag, L1DTag, L1DData, L2Tag, L2Data, Rob, Lq, Sq,
        ]
    }

    /// Short label used in tables (matches the paper's Table II rows).
    pub fn label(self) -> &'static str {
        match self {
            Structure::L1ITag => "L1I (Tag)",
            Structure::L1IData => "L1I (Data)",
            Structure::L1DTag => "L1D (Tag)",
            Structure::L1DData => "L1D (Data)",
            Structure::L2Tag => "L2 (Tag)",
            Structure::L2Data => "L2 (Data)",
            Structure::RegFile => "RF",
            Structure::Rob => "ROB",
            Structure::Lq => "LQ",
            Structure::Sq => "SQ",
            Structure::Itlb => "ITLB",
            Structure::Dtlb => "DTLB",
        }
    }

    /// Stable machine-readable identifier (round-trips via
    /// [`Structure::from_ident`]); used by on-disk campaign journals, so
    /// these strings must never change.
    pub fn ident(self) -> &'static str {
        match self {
            Structure::L1ITag => "L1ITag",
            Structure::L1IData => "L1IData",
            Structure::L1DTag => "L1DTag",
            Structure::L1DData => "L1DData",
            Structure::L2Tag => "L2Tag",
            Structure::L2Data => "L2Data",
            Structure::RegFile => "RegFile",
            Structure::Rob => "Rob",
            Structure::Lq => "Lq",
            Structure::Sq => "Sq",
            Structure::Itlb => "Itlb",
            Structure::Dtlb => "Dtlb",
        }
    }

    /// Parses a [`Structure::ident`] string.
    pub fn from_ident(s: &str) -> Option<Structure> {
        Structure::all().iter().copied().find(|st| st.ident() == s)
    }

    /// Whether this structure is a cache *data* array (the arrays the
    /// paper's §IV.D names as holding output data).
    pub fn is_cache_data(self) -> bool {
        matches!(self, Structure::L1DData | Structure::L2Data)
    }

    /// Whether faults here can produce the `ESC` manifestation: the data
    /// arrays holding output data, plus the data-cache tag arrays (a
    /// corrupted dirty-line tag writes the line back to the wrong address
    /// without ever passing through the program trace — the paper's Fig. 7
    /// accordingly includes the L1D tag field).
    pub fn is_esc_eligible(self) -> bool {
        matches!(
            self,
            Structure::L1DData | Structure::L2Data | Structure::L1DTag | Structure::L2Tag
        )
    }

    /// Whether faults here are detected by commit-side integrity checks and
    /// therefore manifest as pre-software crashes (`PRE`), per the paper's
    /// observation for ROB/LQ/SQ.
    pub fn is_integrity_checked(self) -> bool {
        matches!(self, Structure::Rob | Structure::Lq | Structure::Sq)
    }

    /// Number of injectable storage bits this structure holds under `cfg`.
    pub fn bit_count(self, cfg: &MuarchConfig) -> u64 {
        match self {
            Structure::L1ITag => {
                u64::from(cfg.l1i.lines()) * u64::from(tag_entry_bits(cfg.l1i.tag_bits()))
            }
            Structure::L1IData => u64::from(cfg.l1i.capacity_bytes()) * 8,
            Structure::L1DTag => {
                u64::from(cfg.l1d.lines()) * u64::from(tag_entry_bits(cfg.l1d.tag_bits()))
            }
            Structure::L1DData => u64::from(cfg.l1d.capacity_bytes()) * 8,
            Structure::L2Tag => {
                u64::from(cfg.l2.lines()) * u64::from(tag_entry_bits(cfg.l2.tag_bits()))
            }
            Structure::L2Data => u64::from(cfg.l2.capacity_bytes()) * 8,
            Structure::RegFile => u64::from(cfg.phys_regs) * 32,
            Structure::Rob => u64::from(cfg.rob_entries) * u64::from(crate::queues::ROB_ENTRY_BITS),
            Structure::Lq => u64::from(cfg.lq_entries) * u64::from(crate::queues::LQ_ENTRY_BITS),
            Structure::Sq => u64::from(cfg.sq_entries) * u64::from(crate::queues::SQ_ENTRY_BITS),
            Structure::Itlb => u64::from(cfg.itlb_entries) * u64::from(crate::tlb::TLB_ENTRY_BITS),
            Structure::Dtlb => u64::from(cfg.dtlb_entries) * u64::from(crate::tlb::TLB_ENTRY_BITS),
        }
    }
}

/// Bits stored per cache line in a tag array: tag + valid + dirty.
pub(crate) fn tag_entry_bits(tag_bits: u32) -> u32 {
    tag_bits + 2
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One storage bit within one structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The structure holding the bit.
    pub structure: Structure,
    /// Flat bit index within the structure's storage, in
    /// `0..structure.bit_count(cfg)`.
    pub bit: u64,
}

/// A transient single-bit fault: a bit to flip and the cycle to flip it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Where to flip.
    pub site: FaultSite,
    /// Simulation cycle at which the flip occurs.
    pub cycle: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bit {} @ cycle {}",
            self.site.structure, self.site.bit, self.cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_structures() {
        assert_eq!(Structure::all().len(), 12);
    }

    #[test]
    fn idents_round_trip() {
        for &s in Structure::all() {
            assert_eq!(Structure::from_ident(s.ident()), Some(s));
        }
        assert_eq!(Structure::from_ident("NotAStructure"), None);
    }

    #[test]
    fn bit_counts_positive_and_sized_sensibly() {
        let cfg = MuarchConfig::big();
        for &s in Structure::all() {
            assert!(s.bit_count(&cfg) > 0, "{s} has zero bits");
        }
        // Data arrays dominate; L2 data is the largest structure.
        let l2 = Structure::L2Data.bit_count(&cfg);
        for &s in Structure::all() {
            assert!(s.bit_count(&cfg) <= l2, "{s} larger than L2 data");
        }
        assert_eq!(Structure::RegFile.bit_count(&cfg), 96 * 32);
        assert_eq!(Structure::L1IData.bit_count(&cfg), 8 * 1024 * 8);
    }

    #[test]
    fn predicates() {
        assert!(Structure::L2Data.is_cache_data());
        assert!(!Structure::L2Tag.is_cache_data());
        assert!(Structure::L2Tag.is_esc_eligible());
        assert!(Structure::L1DTag.is_esc_eligible());
        assert!(
            !Structure::L1ITag.is_esc_eligible(),
            "I-side lines are never dirty"
        );
        assert!(!Structure::RegFile.is_esc_eligible());
        assert!(Structure::Rob.is_integrity_checked());
        assert!(!Structure::RegFile.is_integrity_checked());
    }
}
