//! The out-of-order core: fetch → decode → rename/dispatch → issue/execute
//! → in-order commit.
//!
//! The model is cycle-driven and fully deterministic: given the same program
//! and configuration, every run produces an identical commit trace (cycle
//! numbers included), which is what makes on-the-fly golden-trace comparison
//! — and therefore the paper's `ETE` manifestation class — meaningful.

use crate::cache::{Cache, Eviction, MAX_LINE_BYTES};
use crate::config::MuarchConfig;
use crate::exec;
use crate::fault::{Fault, Structure};
use crate::mem::{MemFault, Memory};
use crate::predictor::Predictor;
use crate::program::Program;
use crate::queues::{
    pack_lq, pack_rob, pack_sq, QueueArray, LQ_ENTRY_BITS, ROB_ENTRY_BITS, SQ_ENTRY_BITS,
};
use crate::regfile::{PhysReg, RegFile};
use crate::run::{ExecStats, RunControl, RunOutcome, RunReport, TrapKind};
use crate::tlb::Tlb;
use crate::trace::{CommitRecord, Deviation, GoldenRun};
use avgi_isa::instr::{decode, Instr};
use avgi_isa::opcode::Opcode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NO_DEST: u8 = 0xFF;

/// ROB entry flag bits (packed into the injectable image).
const FLAG_LOAD: u8 = 0b0001;
const FLAG_STORE: u8 = 0b0010;
const FLAG_CONTROL: u8 = 0b0100;
const FLAG_WRITES: u8 = 0b1000;

/// ROB entry lifecycle states, stored in the dense `rob_state` byte array
/// (struct-of-arrays) so the per-cycle writeback walk reads one byte per
/// entry instead of striding through full payload structs.
const ST_IN_IQ: u8 = 0;
const ST_EXECUTING: u8 = 1;
const ST_DONE: u8 = 2;

/// Cold ROB payload. The two fields the per-cycle loops actually poll —
/// lifecycle state and finish cycle — live in the parallel `rob_state` /
/// `rob_finish` arrays on [`Sim`]; slot validity is defined by the ring
/// bounds `[rob_head, rob_head + rob_count)`, not by an `Option` wrapper.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: u32,
    raw: u32,
    decoded: Option<Instr>,
    exception: Option<TrapKind>,
    dest_arch: u8,
    new_phys: PhysReg,
    prev_phys: PhysReg,
    src1: Option<PhysReg>,
    src2: Option<PhysReg>,
    is_load: bool,
    is_store: bool,
    is_control: bool,
    /// LQ/SQ ring slot of this instruction (loads/stores only), recorded at
    /// dispatch so resolution never has to scan the queues for a sequence
    /// number.
    lq_slot: u8,
    sq_slot: u8,
    predicted_next: u32,
    actual_next: u32,
    resolved_control: bool,
    taken: bool,
    ea: u32,
    val: u32,
}

impl RobEntry {
    const fn blank() -> Self {
        RobEntry {
            seq: 0,
            pc: 0,
            raw: 0,
            decoded: None,
            exception: None,
            dest_arch: NO_DEST,
            new_phys: 0,
            prev_phys: 0,
            src1: None,
            src2: None,
            is_load: false,
            is_store: false,
            is_control: false,
            lq_slot: 0,
            sq_slot: 0,
            predicted_next: 0,
            actual_next: 0,
            resolved_control: false,
            taken: false,
            ea: 0,
            val: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LqShadow {
    seq: u64,
    resolved: bool,
    paddr: u32,
}

#[derive(Debug, Clone, Copy)]
struct SqShadow {
    seq: u64,
    resolved: bool,
    paddr: u32,
    size: u8,
    data: u32,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    raw: u32,
    decoded: Option<Instr>,
    exception: Option<TrapKind>,
    predicted_next: u32,
}

/// The growable per-run buffers, grouped into one arena-style unit with a
/// generation counter.
///
/// Rewinding a scratch simulator used to reset these with a cascade of
/// independent `clear()`/`extend()` calls scattered through `restore_from`;
/// they now reset as a single bump: [`RunScratch::rewind_to`] advances the
/// generation and refills every buffer in one place (each reset is an O(1)
/// length reset plus a copy of only the *live* content). The generation
/// stamps ROB slots at dispatch, so any index that leaks across a rewind
/// (a stale issue-queue or decode-queue reference) trips a debug assertion
/// instead of silently reading a previous run's state.
#[derive(Debug, Clone)]
struct RunScratch {
    /// Bumped on every rewind; compared against `rob_stamp` at use sites.
    gen: u64,
    decode_q: VecDeque<Fetched>,
    iq: Vec<usize>,
    trace: Vec<CommitRecord>,
    pending_faults: Vec<Fault>, // sorted by cycle, ascending
}

impl RunScratch {
    fn new(cfg: &MuarchConfig) -> Self {
        RunScratch {
            gen: 0,
            decode_q: VecDeque::with_capacity(2 * cfg.fetch_width as usize + 2),
            iq: Vec::with_capacity(cfg.iq_entries as usize),
            trace: Vec::new(),
            pending_faults: Vec::new(),
        }
    }

    /// The single bump-reset: invalidate everything from the previous run,
    /// then adopt `src`'s live content.
    fn rewind_to(&mut self, src: &RunScratch) {
        self.gen += 1;
        self.decode_q.clear();
        self.decode_q.extend(src.decode_q.iter().copied());
        self.iq.clear();
        self.iq.extend_from_slice(&src.iq);
        self.trace.clear();
        self.trace.extend_from_slice(&src.trace);
        self.pending_faults.clear();
        self.pending_faults.extend_from_slice(&src.pending_faults);
    }
}

/// Copies the live ring region `[head, head + count)` (wrapping) from `src`
/// into `dst`, leaving dead slots untouched — restore cost scales with
/// occupancy, not capacity.
fn copy_ring<T: Copy>(dst: &mut [T], src: &[T], head: usize, count: usize) {
    debug_assert_eq!(dst.len(), src.len());
    let first = count.min(src.len() - head);
    dst[head..head + first].copy_from_slice(&src[head..head + first]);
    let rest = count - first;
    dst[..rest].copy_from_slice(&src[..rest]);
}

/// The simulator: one core, one program, one run.
///
/// Construct with [`Sim::new`], optionally arm faults with
/// [`Sim::inject`], then call [`Sim::run`].
///
/// `Sim` is `Clone`: snapshotting a simulator mid-run is how campaigns
/// implement checkpointing (skipping the fault-free pre-injection period,
/// §IV.B of the paper) — see [`Sim::run_to_cycle`].
#[derive(Debug, Clone)]
pub struct Sim {
    cfg: MuarchConfig,
    cycle: u64,
    seq_next: u64,

    // Front end.
    fetch_pc: u32,
    fetch_ready_cycle: u64,
    fetch_paused: bool,

    // Rename + backend, struct-of-arrays: the per-cycle scans poll the
    // dense `rob_state`/`rob_finish` arrays; the payload vector is only
    // touched for entries that actually change state this cycle. Ring
    // bounds define validity (no `Option` wrappers); `rob_stamp` carries
    // the run-scratch generation for stale-index detection.
    rf: RegFile,
    rob: Vec<RobEntry>,
    rob_state: Vec<u8>,
    rob_finish: Vec<u64>,
    rob_stamp: Vec<u64>,
    rob_head: usize,
    rob_tail: usize,
    rob_count: usize,
    rob_img: QueueArray,
    lq: Vec<LqShadow>,
    lq_head: usize,
    lq_tail: usize,
    lq_count: usize,
    lq_img: QueueArray,
    sq: Vec<SqShadow>,
    sq_head: usize,
    sq_tail: usize,
    sq_count: usize,
    sq_img: QueueArray,

    // Memory system.
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    mem: Memory,
    pred: Predictor,

    // Program/output.
    output_addr: u32,
    output_len: u32,

    // Fault injection.
    faults_next: usize, // cursor into `scratch.pending_faults` (applied prefix)
    first_inject_cycle: Option<u64>,
    faults_applied: bool,

    // Snapshot id this scratch simulator was last synchronised with (gates
    // the journaled O(dirty) cache and memory restores in
    // [`Sim::restore_from`]).
    scratch_base: Option<u64>,

    // Tracing.
    commit_index: u64,
    first_deviation: Option<Deviation>,

    stats: ExecStats,

    // Per-run growable buffers (decode queue, issue queue, trace, armed
    // faults), reset as one unit — see [`RunScratch`].
    scratch: RunScratch,
}

impl Sim {
    /// Builds a simulator for `program` under `cfg`.
    pub fn new(program: &Program, cfg: MuarchConfig) -> Self {
        cfg.validate();
        let mem = program.build_memory();
        Sim {
            cycle: 0,
            seq_next: 0,
            fetch_pc: program.entry,
            fetch_ready_cycle: 0,
            fetch_paused: false,
            rf: RegFile::new(cfg.phys_regs),
            rob: vec![RobEntry::blank(); cfg.rob_entries as usize],
            rob_state: vec![ST_IN_IQ; cfg.rob_entries as usize],
            rob_finish: vec![0; cfg.rob_entries as usize],
            rob_stamp: vec![0; cfg.rob_entries as usize],
            rob_head: 0,
            rob_tail: 0,
            rob_count: 0,
            rob_img: QueueArray::new(cfg.rob_entries, ROB_ENTRY_BITS),
            lq: vec![
                LqShadow {
                    seq: 0,
                    resolved: false,
                    paddr: 0
                };
                cfg.lq_entries as usize
            ],
            lq_head: 0,
            lq_tail: 0,
            lq_count: 0,
            lq_img: QueueArray::new(cfg.lq_entries, LQ_ENTRY_BITS),
            sq: vec![
                SqShadow {
                    seq: 0,
                    resolved: false,
                    paddr: 0,
                    size: 0,
                    data: 0
                };
                cfg.sq_entries as usize
            ],
            sq_head: 0,
            sq_tail: 0,
            sq_count: 0,
            sq_img: QueueArray::new(cfg.sq_entries, SQ_ENTRY_BITS),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            mem,
            pred: Predictor::new(cfg.predictor_entries, cfg.btb_entries),
            output_addr: program.output_addr,
            output_len: program.output_len,
            faults_next: 0,
            first_inject_cycle: None,
            faults_applied: false,
            scratch_base: None,
            commit_index: 0,
            first_deviation: None,
            stats: ExecStats::default(),
            scratch: RunScratch::new(&cfg),
            cfg,
        }
    }

    /// Arms a fault for injection during [`Sim::run`].
    pub fn inject(&mut self, fault: Fault) {
        debug_assert!(
            fault.site.bit < fault.site.structure.bit_count(&self.cfg),
            "fault bit out of range for {}",
            fault.site.structure
        );
        self.first_inject_cycle = Some(
            self.first_inject_cycle
                .map_or(fault.cycle, |c| c.min(fault.cycle)),
        );
        // Binary-search insertion keeps `pending_faults` sorted without
        // re-sorting the whole vector per call. The insertion point never
        // lands before the already-applied prefix: if it would, every
        // unapplied fault is later than this one and inserting at the cursor
        // preserves order.
        let pos = self
            .scratch
            .pending_faults
            .partition_point(|f| f.cycle <= fault.cycle)
            .max(self.faults_next);
        self.scratch.pending_faults.insert(pos, fault);
    }

    /// Runs to completion under `ctl` and reports.
    pub fn run(&mut self, ctl: &RunControl) -> RunReport {
        let deadline = ctl
            .wall_budget
            .map(|budget| std::time::Instant::now() + budget);
        let outcome = self.run_loop(ctl, deadline);
        self.stats.rf_ace_cycles = self.rf.finalize_ace();
        let output = if outcome == RunOutcome::Completed {
            self.flush_caches();
            Some(self.mem.read_range(self.output_addr, self.output_len))
        } else {
            None
        };
        RunReport {
            outcome,
            cycles: self.cycle,
            first_deviation: self.first_deviation,
            output,
            trace: ctl
                .record_trace
                .then(|| core::mem::take(&mut self.scratch.trace)),
            inject_cycle: self.first_inject_cycle,
            stats: self.stats,
        }
    }

    fn run_loop(&mut self, ctl: &RunControl, deadline: Option<std::time::Instant>) -> RunOutcome {
        loop {
            if let Some(out) = self.step(ctl) {
                return out;
            }
            // Wall-clock watchdog: polled every WALL_CHECK_CYCLES cycles so
            // a pathological faulty run cannot stall a campaign even when
            // the cycle watchdog is generous.
            if self.cycle & (crate::run::WALL_CHECK_CYCLES - 1) == 0 {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return RunOutcome::WallClockExpired;
                    }
                }
            }
        }
    }

    /// Executes exactly one cycle of the pipeline. Returns `Some(outcome)`
    /// when the run ends this cycle.
    fn step(&mut self, ctl: &RunControl) -> Option<RunOutcome> {
        self.apply_due_faults();
        if let Some(out) = self.writeback() {
            return Some(out);
        }
        if let Some(out) = self.commit(ctl) {
            return Some(out);
        }
        if ctl.stop_at_first_deviation && self.first_deviation.is_some() {
            return Some(RunOutcome::StoppedAtDeviation);
        }
        self.issue();
        self.dispatch();
        self.fetch();
        self.cycle += 1;
        if ctl.max_cycles > 0 && self.cycle > ctl.max_cycles {
            return Some(RunOutcome::Watchdog);
        }
        if let (Some(window), Some(at)) = (ctl.ert_window, self.first_inject_cycle) {
            if self.faults_applied && self.first_deviation.is_none() && self.cycle >= at + window {
                return Some(RunOutcome::ErtExpired);
            }
        }
        None
    }

    /// Advances the simulation to the *beginning* of cycle `target` (no
    /// stage of `target` has executed yet), so the state can be snapshotted
    /// as a checkpoint.
    ///
    /// Returns `Some(outcome)` if the run terminated before reaching
    /// `target` (e.g. the program was shorter), `None` on success. A run
    /// resumed from the snapshot behaves exactly like an uninterrupted one.
    pub fn run_to_cycle(&mut self, target: u64, ctl: &RunControl) -> Option<RunOutcome> {
        while self.cycle < target {
            if let Some(out) = self.step(ctl) {
                return Some(out);
            }
        }
        None
    }

    // ----- fault application -----

    fn apply_due_faults(&mut self) {
        while let Some(&f) = self.scratch.pending_faults.get(self.faults_next) {
            if f.cycle > self.cycle {
                break;
            }
            self.faults_next += 1;
            self.flip(f.site.structure, f.site.bit);
        }
        if self.faults_next == self.scratch.pending_faults.len() {
            self.faults_applied = true;
        }
    }

    fn flip(&mut self, s: Structure, bit: u64) {
        match s {
            Structure::L1ITag => self.l1i.flip_tag_bit(bit),
            Structure::L1IData => self.l1i.flip_data_bit(bit),
            Structure::L1DTag => self.l1d.flip_tag_bit(bit),
            Structure::L1DData => self.l1d.flip_data_bit(bit),
            Structure::L2Tag => self.l2.flip_tag_bit(bit),
            Structure::L2Data => self.l2.flip_data_bit(bit),
            Structure::RegFile => self.rf.flip_bit(bit),
            Structure::Rob => self.rob_img.flip_bit(bit),
            Structure::Lq => self.lq_img.flip_bit(bit),
            Structure::Sq => self.sq_img.flip_bit(bit),
            Structure::Itlb => self.itlb.flip_bit(bit),
            Structure::Dtlb => self.dtlb.flip_bit(bit),
        }
    }

    // ----- memory hierarchy -----

    fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.cfg.l2.line_bytes - 1)
    }

    /// Gets a line from L2 (filling from memory on miss); returns the line
    /// bytes in an inline stack buffer (first `line_bytes` valid) and the
    /// added latency beyond L1.
    fn l2_get_line(&mut self, line_addr: u32) -> ([u8; MAX_LINE_BYTES], u64) {
        let lb = self.cfg.l2.line_bytes as usize;
        let mut buf = [0u8; MAX_LINE_BYTES];
        if let Some(li) = self.l2.lookup(line_addr) {
            self.l2.read_resident(li, line_addr, &mut buf[..lb]);
            (buf, self.cfg.lat.l2)
        } else {
            self.stats.l2_misses += 1;
            if u64::from(line_addr) + lb as u64 <= u64::from(crate::mem::MEM_SIZE) {
                self.mem.read_line(line_addr, &mut buf[..lb]);
            }
            if let (Some(ev), _) = self.l2.fill(line_addr, &buf[..lb]) {
                self.mem.write_line(ev.addr, ev.data());
            }
            if self.cfg.prefetch_next_line {
                let next = line_addr.wrapping_add(self.cfg.l2.line_bytes);
                if u64::from(next) + u64::from(self.cfg.l2.line_bytes)
                    <= u64::from(crate::mem::MEM_SIZE)
                    && self.l2.lookup(next).is_none()
                {
                    let mut pbuf = [0u8; MAX_LINE_BYTES];
                    self.mem.read_line(next, &mut pbuf[..lb]);
                    if let (Some(ev), _) = self.l2.fill(next, &pbuf[..lb]) {
                        self.mem.write_line(ev.addr, ev.data());
                    }
                }
            }
            (buf, self.cfg.lat.l2 + self.cfg.lat.mem)
        }
    }

    fn writeback_to_l2(&mut self, ev: Eviction) {
        let line_addr = self.line_base(ev.addr);
        if let Some(li) = self.l2.lookup(line_addr) {
            self.l2.write_resident(li, line_addr, ev.data());
        } else {
            let (ev2, li) = self.l2.fill(line_addr, ev.data());
            self.l2.mark_dirty(li);
            if let Some(ev2) = ev2 {
                self.mem.write_line(ev2.addr, ev2.data());
            }
        }
    }

    /// Reads `size` bytes at `paddr` through L1D; returns (value bytes as
    /// little-endian u32, latency).
    fn read_data(&mut self, paddr: u32, size: u32) -> (u32, u64) {
        let mut lat = self.cfg.lat.l1;
        let li = match self.l1d.lookup(paddr) {
            Some(li) => li,
            None => {
                self.stats.l1d_misses += 1;
                let line_addr = self.line_base(paddr);
                let (line, extra) = self.l2_get_line(line_addr);
                lat += extra;
                let (ev, li) = self
                    .l1d
                    .fill(line_addr, &line[..self.cfg.l1d.line_bytes as usize]);
                if let Some(ev) = ev {
                    self.writeback_to_l2(ev);
                }
                li
            }
        };
        let mut buf = [0u8; 4];
        self.l1d.read_resident(li, paddr, &mut buf[..size as usize]);
        (u32::from_le_bytes(buf), lat)
    }

    /// Writes `size` low bytes of `data` at `paddr` through L1D
    /// (write-allocate, write-back).
    fn write_data(&mut self, paddr: u32, size: u32, data: u32) {
        let li = match self.l1d.lookup(paddr) {
            Some(li) => li,
            None => {
                self.stats.l1d_misses += 1;
                let line_addr = self.line_base(paddr);
                let (line, _) = self.l2_get_line(line_addr);
                let (ev, li) = self
                    .l1d
                    .fill(line_addr, &line[..self.cfg.l1d.line_bytes as usize]);
                if let Some(ev) = ev {
                    self.writeback_to_l2(ev);
                }
                li
            }
        };
        let bytes = data.to_le_bytes();
        self.l1d.write_resident(li, paddr, &bytes[..size as usize]);
    }

    fn fetch_word(&mut self, paddr: u32) -> (u32, u64) {
        let mut lat = self.cfg.lat.l1;
        let li = match self.l1i.lookup(paddr) {
            Some(li) => li,
            None => {
                self.stats.l1i_misses += 1;
                let line_addr = self.line_base(paddr);
                let (line, extra) = self.l2_get_line(line_addr);
                lat += extra;
                // I-lines never dirty.
                let (_, li) = self
                    .l1i
                    .fill(line_addr, &line[..self.cfg.l1i.line_bytes as usize]);
                li
            }
        };
        let mut buf = [0u8; 4];
        self.l1i.read_resident(li, paddr, &mut buf);
        (u32::from_le_bytes(buf), lat)
    }

    fn flush_caches(&mut self) {
        for ev in self.l1d.drain_dirty() {
            self.writeback_to_l2(ev);
        }
        for ev in self.l2.drain_dirty() {
            self.mem.write_line(ev.addr, ev.data());
        }
    }

    // ----- fetch -----

    fn fetch(&mut self) {
        if self.fetch_paused || self.cycle < self.fetch_ready_cycle {
            return;
        }
        let cap = 2 * self.cfg.fetch_width as usize + 2;
        for _ in 0..self.cfg.fetch_width {
            if self.scratch.decode_q.len() >= cap {
                break;
            }
            let pc = self.fetch_pc;
            if let Err(f) = self.mem.check_fetch(pc) {
                self.scratch.decode_q.push_back(Fetched {
                    pc,
                    raw: 0,
                    decoded: None,
                    exception: Some(TrapKind::Memory(f)),
                    predicted_next: pc,
                });
                self.fetch_paused = true;
                break;
            }
            // Translate through the ITLB.
            let paddr = match self.itlb.translate(pc) {
                Some(p) => p,
                None => {
                    self.stats.itlb_misses += 1;
                    self.itlb.refill(pc);
                    self.fetch_ready_cycle = self.cycle + self.cfg.lat.tlb_walk;
                    match self.itlb.translate(pc) {
                        Some(p) => p,
                        None => pc, // corrupted TLB shadowing the refill slot
                    }
                }
            };
            if u64::from(paddr) + 4 > u64::from(crate::mem::MEM_SIZE) {
                self.scratch.decode_q.push_back(Fetched {
                    pc,
                    raw: 0,
                    decoded: None,
                    exception: Some(TrapKind::Memory(MemFault::OutOfRange(paddr))),
                    predicted_next: pc,
                });
                self.fetch_paused = true;
                break;
            }
            let (raw, lat) = self.fetch_word(paddr);
            if lat > self.cfg.lat.l1 {
                // Miss: this group's words arrive late; stall the next group.
                self.fetch_ready_cycle = self.fetch_ready_cycle.max(self.cycle + lat);
            }
            self.stats.fetched += 1;
            match decode(raw) {
                Ok(instr) => {
                    let (next, end_group) = self.predict_next(pc, &instr);
                    self.scratch.decode_q.push_back(Fetched {
                        pc,
                        raw,
                        decoded: Some(instr),
                        exception: None,
                        predicted_next: next,
                    });
                    self.fetch_pc = next;
                    if instr.op == Opcode::Halt {
                        self.fetch_paused = true;
                        break;
                    }
                    if end_group {
                        break;
                    }
                }
                Err(_) => {
                    self.scratch.decode_q.push_back(Fetched {
                        pc,
                        raw,
                        decoded: None,
                        exception: Some(TrapKind::UndefinedInstruction),
                        predicted_next: pc.wrapping_add(4),
                    });
                    self.fetch_pc = pc.wrapping_add(4);
                }
            }
        }
    }

    /// Predicts the next fetch PC for `instr` at `pc`; returns
    /// `(next_pc, ends_fetch_group)`.
    fn predict_next(&mut self, pc: u32, instr: &Instr) -> (u32, bool) {
        match instr.op {
            Opcode::Jal => (pc.wrapping_add((instr.imm as u32).wrapping_mul(4)), true),
            Opcode::Jalr => match self.pred.predict_target(pc) {
                Some(t) => (t, true),
                None => (pc.wrapping_add(4), false),
            },
            op if op.is_branch() => {
                if self.pred.predict_taken(pc) {
                    (pc.wrapping_add((instr.imm as u32).wrapping_mul(4)), true)
                } else {
                    (pc.wrapping_add(4), false)
                }
            }
            _ => (pc.wrapping_add(4), false),
        }
    }

    // ----- dispatch -----

    fn rob_full(&self) -> bool {
        self.rob_count == self.rob.len()
    }

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(front) = self.scratch.decode_q.front() else {
                break;
            };
            if self.rob_full() {
                break;
            }
            let needs_exec = front
                .decoded
                .as_ref()
                .is_some_and(|i| !matches!(i.op, Opcode::Nop | Opcode::Halt));
            if needs_exec && self.scratch.iq.len() >= self.cfg.iq_entries as usize {
                break;
            }
            let (is_load, is_store, writes, is_control) = match &front.decoded {
                Some(i) => (
                    i.op.is_load(),
                    i.op.is_store(),
                    i.op.writes_rd() && !i.rd.is_zero(),
                    i.op.is_control(),
                ),
                None => (false, false, false, false),
            };
            if is_load && self.lq_count == self.lq.len() {
                break;
            }
            if is_store && self.sq_count == self.sq.len() {
                break;
            }
            if writes && self.rf.free_count() == 0 {
                break;
            }
            let f = self.scratch.decode_q.pop_front().expect("checked front");
            let seq = self.seq_next;
            self.seq_next += 1;

            let (mut src1, mut src2) = (None, None);
            let (mut dest_arch, mut new_phys, mut prev_phys) = (NO_DEST, 0, 0);
            if let Some(i) = &f.decoded {
                // Source mapping. The zero register reads as constant 0 and
                // has no physical dependency.
                let uses_rs1 = matches!(
                    i.op.format(),
                    avgi_isa::opcode::Format::R
                        | avgi_isa::opcode::Format::I
                        | avgi_isa::opcode::Format::S
                ) && i.op != Opcode::Lui;
                let uses_rs2 = matches!(
                    i.op.format(),
                    avgi_isa::opcode::Format::R | avgi_isa::opcode::Format::S
                );
                if uses_rs1 && !i.rs1.is_zero() {
                    src1 = Some(self.rf.lookup(i.rs1.index()));
                }
                if uses_rs2 && !i.rs2.is_zero() {
                    src2 = Some(self.rf.lookup(i.rs2.index()));
                }
                if writes {
                    let p = self.rf.alloc_at(self.cycle).expect("free count checked");
                    prev_phys = self.rf.remap(i.rd.index(), p);
                    new_phys = p;
                    dest_arch = i.rd.index();
                }
            }

            let ridx = self.rob_tail;
            self.rob_tail = (self.rob_tail + 1) % self.rob.len();
            self.rob_count += 1;

            let mut lq_slot = 0u8;
            let mut sq_slot = 0u8;
            if is_load {
                lq_slot = self.lq_tail as u8;
                self.lq[self.lq_tail] = LqShadow {
                    seq,
                    resolved: false,
                    paddr: 0,
                };
                self.lq_tail = (self.lq_tail + 1) % self.lq.len();
                self.lq_count += 1;
            }
            if is_store {
                sq_slot = self.sq_tail as u8;
                self.sq[self.sq_tail] = SqShadow {
                    seq,
                    resolved: false,
                    paddr: 0,
                    size: 0,
                    data: 0,
                };
                self.sq_tail = (self.sq_tail + 1) % self.sq.len();
                self.sq_count += 1;
            }

            let mut flags = 0u8;
            if is_load {
                flags |= FLAG_LOAD;
            }
            if is_store {
                flags |= FLAG_STORE;
            }
            if is_control {
                flags |= FLAG_CONTROL;
            }
            if writes {
                flags |= FLAG_WRITES;
            }
            self.rob_img.write(
                ridx,
                pack_rob(f.pc, seq as u16, if writes { dest_arch } else { 0 }, flags),
            );

            let done_now = !needs_exec;
            self.rob[ridx] = RobEntry {
                seq,
                pc: f.pc,
                raw: f.raw,
                decoded: f.decoded,
                exception: f.exception,
                dest_arch: if writes { dest_arch } else { NO_DEST },
                new_phys,
                prev_phys,
                src1,
                src2,
                is_load,
                is_store,
                is_control,
                lq_slot,
                sq_slot,
                predicted_next: f.predicted_next,
                actual_next: 0,
                resolved_control: false,
                taken: false,
                ea: 0,
                val: 0,
            };
            self.rob_state[ridx] = if done_now { ST_DONE } else { ST_IN_IQ };
            self.rob_finish[ridx] = self.cycle;
            self.rob_stamp[ridx] = self.scratch.gen;
            if !done_now {
                self.scratch.iq.push(ridx);
            }
        }
    }

    // ----- issue / execute -----

    fn issue(&mut self) {
        // Order-preserving in-place compaction: the first `issue_width` ready
        // entries (in age order) issue and drop out; everything else shifts
        // down without the O(n) `Vec::remove` churn of the old loop.
        let mut issued = 0u32;
        let mut w = 0;
        let len = self.scratch.iq.len();
        for r in 0..len {
            let ridx = self.scratch.iq[r];
            if issued < self.cfg.issue_width && self.try_issue(ridx) {
                issued += 1;
            } else {
                self.scratch.iq[w] = ridx;
                w += 1;
            }
        }
        self.scratch.iq.truncate(w);
    }

    fn operand(&mut self, p: Option<PhysReg>) -> Option<u32> {
        match p {
            None => Some(0),
            Some(p) => {
                if self.rf.is_ready(p) {
                    Some(self.rf.read_at(p, self.cycle))
                } else {
                    None
                }
            }
        }
    }

    fn try_issue(&mut self, ridx: usize) -> bool {
        let (seq, instr, pc, src1, src2) = {
            debug_assert_eq!(
                self.rob_stamp[ridx], self.scratch.gen,
                "stale issue-queue index crossed a scratch rewind"
            );
            let e = &self.rob[ridx];
            (
                e.seq,
                e.decoded.expect("iq entries decode"),
                e.pc,
                e.src1,
                e.src2,
            )
        };
        // Both operands must be ready before anything executes; reads are
        // recorded for ACE instrumentation.
        if src1.is_some_and(|p| !self.rf.is_ready(p)) || src2.is_some_and(|p| !self.rf.is_ready(p))
        {
            return false;
        }
        let a = self.operand(src1).expect("checked ready");
        let b = self.operand(src2).expect("checked ready");
        let imm = instr.imm;

        match instr.op {
            op if op.is_load() => self.issue_load(ridx, seq, instr, a),
            op if op.is_store() => self.issue_store(ridx, seq, instr, a, b),
            Opcode::Jal => {
                let target = pc.wrapping_add((imm as u32).wrapping_mul(4));
                self.finish_control(ridx, target, true, pc.wrapping_add(4));
                true
            }
            Opcode::Jalr => {
                let target = a.wrapping_add(imm as u32);
                self.finish_control(ridx, target, true, pc.wrapping_add(4));
                true
            }
            op if op.is_branch() => {
                let taken = exec::branch_taken(op, a, b);
                let target = if taken {
                    pc.wrapping_add((imm as u32).wrapping_mul(4))
                } else {
                    pc.wrapping_add(4)
                };
                let e = &mut self.rob[ridx];
                e.taken = taken;
                e.actual_next = target;
                e.resolved_control = true;
                self.rob_state[ridx] = ST_EXECUTING;
                self.rob_finish[ridx] = self.cycle + self.cfg.lat.alu;
                true
            }
            op => {
                let operand_b = if matches!(op.format(), avgi_isa::opcode::Format::I) {
                    imm as u32
                } else {
                    b
                };
                let val = exec::alu(op, a, operand_b).expect("alu op");
                self.rob[ridx].val = val;
                self.rob_state[ridx] = ST_EXECUTING;
                self.rob_finish[ridx] = self.cycle + exec::latency(op, &self.cfg.lat);
                true
            }
        }
    }

    fn finish_control(&mut self, ridx: usize, target: u32, taken: bool, link: u32) {
        let e = &mut self.rob[ridx];
        e.taken = taken;
        e.actual_next = target;
        e.resolved_control = true;
        e.val = link;
        self.rob_state[ridx] = ST_EXECUTING;
        self.rob_finish[ridx] = self.cycle + self.cfg.lat.alu;
    }

    fn mem_size(op: Opcode) -> u32 {
        match op {
            Opcode::Lw | Opcode::Sw => 4,
            Opcode::Lh | Opcode::Lhu | Opcode::Sh => 2,
            _ => 1,
        }
    }

    fn extend_load(op: Opcode, raw: u32) -> u32 {
        match op {
            Opcode::Lw => raw,
            Opcode::Lb => raw as u8 as i8 as i32 as u32,
            Opcode::Lbu => raw & 0xFF,
            Opcode::Lh => raw as u16 as i16 as i32 as u32,
            Opcode::Lhu => raw & 0xFFFF,
            _ => unreachable!("not a load"),
        }
    }

    fn issue_load(&mut self, ridx: usize, seq: u64, instr: Instr, base: u32) -> bool {
        let vaddr = base.wrapping_add(instr.imm as u32);
        let size = Self::mem_size(instr.op);
        if let Err(f) = self.mem.check_data_access(vaddr, size, false) {
            return self.complete_with_exception(ridx, vaddr, TrapKind::Memory(f));
        }
        // Memory disambiguation: all older stores must have resolved
        // addresses before a load may issue (conservative policy).
        let mut forward: Option<u32> = None;
        let mut blocked = false;
        self.for_each_sq(|s| {
            if s.seq < seq {
                if !s.resolved {
                    blocked = true;
                } else {
                    // Youngest older store wins (iteration is oldest→youngest).
                    let (paddr, _) = (s.paddr, s.size);
                    let lo = paddr;
                    let hi = paddr + u32::from(s.size);
                    // The load's physical address isn't known yet; compare on
                    // virtual addresses — identity-mapped, so equivalent in
                    // the fault-free case.
                    if lo < vaddr + size && vaddr < hi {
                        if paddr == vaddr && u32::from(s.size) == size {
                            forward = Some(s.data);
                        } else {
                            blocked = true; // partial overlap: wait it out
                        }
                    }
                }
            }
        });
        if blocked {
            return false;
        }
        let mut lat = 0;
        let paddr = match self.dtlb.translate(vaddr) {
            Some(p) => p,
            None => {
                self.stats.dtlb_misses += 1;
                self.dtlb.refill(vaddr);
                lat += self.cfg.lat.tlb_walk;
                self.dtlb.translate(vaddr).unwrap_or(vaddr)
            }
        };
        if u64::from(paddr) + u64::from(size) > u64::from(crate::mem::MEM_SIZE) {
            return self.complete_with_exception(
                ridx,
                vaddr,
                TrapKind::Memory(MemFault::OutOfRange(paddr)),
            );
        }
        let val = match forward {
            Some(data) => {
                lat += self.cfg.lat.l1;
                Self::extend_load(instr.op, data)
            }
            None => {
                let (raw, l) = self.read_data(paddr, size);
                lat += l;
                Self::extend_load(instr.op, raw)
            }
        };
        // Resolve the LQ entry (shadow + injectable image) via the slot index
        // recorded at dispatch — no seq scan.
        let lqi = usize::from(self.rob[ridx].lq_slot);
        debug_assert_eq!(self.lq[lqi].seq, seq, "LQ slot/seq mismatch");
        self.lq[lqi].resolved = true;
        self.lq[lqi].paddr = paddr;
        self.lq_img.write(lqi, pack_lq(paddr, seq as u16));
        let e = &mut self.rob[ridx];
        e.ea = vaddr;
        e.val = val;
        self.rob_state[ridx] = ST_EXECUTING;
        self.rob_finish[ridx] = self.cycle + lat.max(1);
        true
    }

    fn issue_store(&mut self, ridx: usize, seq: u64, instr: Instr, base: u32, data: u32) -> bool {
        let vaddr = base.wrapping_add(instr.imm as u32);
        let size = Self::mem_size(instr.op);
        if let Err(f) = self.mem.check_data_access(vaddr, size, true) {
            return self.complete_with_exception(ridx, vaddr, TrapKind::Memory(f));
        }
        let mut lat = 0;
        let paddr = match self.dtlb.translate(vaddr) {
            Some(p) => p,
            None => {
                self.stats.dtlb_misses += 1;
                self.dtlb.refill(vaddr);
                lat += self.cfg.lat.tlb_walk;
                self.dtlb.translate(vaddr).unwrap_or(vaddr)
            }
        };
        if u64::from(paddr) + u64::from(size) > u64::from(crate::mem::MEM_SIZE) {
            return self.complete_with_exception(
                ridx,
                vaddr,
                TrapKind::Memory(MemFault::OutOfRange(paddr)),
            );
        }
        let masked = match size {
            1 => data & 0xFF,
            2 => data & 0xFFFF,
            _ => data,
        };
        let sqi = usize::from(self.rob[ridx].sq_slot);
        debug_assert_eq!(self.sq[sqi].seq, seq, "SQ slot/seq mismatch");
        let sh = &mut self.sq[sqi];
        sh.resolved = true;
        sh.paddr = paddr;
        sh.size = size as u8;
        sh.data = masked;
        self.sq_img.write(sqi, pack_sq(paddr, masked, seq as u16));
        let e = &mut self.rob[ridx];
        e.ea = vaddr;
        e.val = masked;
        self.rob_state[ridx] = ST_EXECUTING;
        self.rob_finish[ridx] = self.cycle + (lat + self.cfg.lat.alu).max(1);
        true
    }

    fn complete_with_exception(&mut self, ridx: usize, ea: u32, t: TrapKind) -> bool {
        let e = &mut self.rob[ridx];
        e.ea = ea;
        e.exception = Some(t);
        self.rob_state[ridx] = ST_DONE;
        true
    }

    fn for_each_sq(&self, mut f: impl FnMut(&SqShadow)) {
        let mut i = self.sq_head;
        for _ in 0..self.sq_count {
            f(&self.sq[i]);
            i = (i + 1) % self.sq.len();
        }
    }

    // ----- writeback / control resolution -----

    fn writeback(&mut self) -> Option<RunOutcome> {
        // Walk the ROB head→tail (oldest first) so the oldest mispredicted
        // branch squashes before younger ones resolve.
        // The hot poll reads only the dense state/finish byte arrays; the
        // payload vector is touched just for entries finishing this cycle.
        let mut i = self.rob_head;
        let len = self.rob.len();
        for _ in 0..self.rob_count {
            if self.rob_state[i] == ST_EXECUTING && self.rob_finish[i] <= self.cycle {
                self.rob_state[i] = ST_DONE;
                let e = &self.rob[i];
                let (dest, new_phys, val, is_control) =
                    (e.dest_arch, e.new_phys, e.val, e.is_control);
                if dest != NO_DEST {
                    self.rf.write_at(new_phys, val, self.cycle);
                }
                if is_control && self.resolve_control(i) {
                    // Squash removed everything younger; stop the walk.
                    return None;
                }
            }
            i += 1;
            if i == len {
                i = 0;
            }
        }
        None
    }

    /// Verifies a resolved control instruction against its prediction.
    /// Returns `true` if a squash happened.
    fn resolve_control(&mut self, ridx: usize) -> bool {
        let (pc, op, taken, actual_next, predicted_next, seq) = {
            let e = &self.rob[ridx];
            let op = e.decoded.expect("control decodes").op;
            (e.pc, op, e.taken, e.actual_next, e.predicted_next, e.seq)
        };
        if op.is_branch() {
            self.pred.train_direction(pc, taken);
        }
        if taken {
            self.pred.train_target(pc, actual_next);
        }
        if actual_next != predicted_next {
            self.stats.mispredicts += 1;
            self.squash_younger_than(seq);
            self.fetch_pc = actual_next;
            self.fetch_ready_cycle = self.cycle + self.cfg.lat.redirect;
            self.fetch_paused = false;
            self.scratch.decode_q.clear();
            true
        } else {
            false
        }
    }

    fn squash_younger_than(&mut self, seq: u64) {
        while self.rob_count > 0 {
            let tail_prev = (self.rob_tail + self.rob.len() - 1) % self.rob.len();
            let e = self.rob[tail_prev];
            if e.seq <= seq {
                break;
            }
            self.rob_tail = tail_prev;
            self.rob_count -= 1;
            self.stats.squashed += 1;
            if e.dest_arch != NO_DEST {
                self.rf.remap(e.dest_arch, e.prev_phys);
                self.rf.release(e.new_phys);
            }
            if e.is_load && self.lq_count > 0 {
                let t = (self.lq_tail + self.lq.len() - 1) % self.lq.len();
                debug_assert_eq!(self.lq[t].seq, e.seq);
                self.lq_tail = t;
                self.lq_count -= 1;
            }
            if e.is_store && self.sq_count > 0 {
                let t = (self.sq_tail + self.sq.len() - 1) % self.sq.len();
                debug_assert_eq!(self.sq[t].seq, e.seq);
                self.sq_tail = t;
                self.sq_count -= 1;
            }
            self.scratch.iq.retain(|&r| r != tail_prev);
        }
    }

    // ----- commit -----

    fn commit(&mut self, ctl: &RunControl) -> Option<RunOutcome> {
        for _ in 0..self.cfg.commit_width {
            let head = self.rob_head;
            if self.rob_count == 0 || self.rob_state[head] != ST_DONE {
                return None;
            }
            let e = self.rob[head];

            // Commit-side integrity checks: the injectable entry images must
            // match the authoritative shadow state (the paper's `PRE`
            // mechanism for ROB/LQ/SQ).
            let mut flags = 0u8;
            if e.is_load {
                flags |= FLAG_LOAD;
            }
            if e.is_store {
                flags |= FLAG_STORE;
            }
            if e.is_control {
                flags |= FLAG_CONTROL;
            }
            if e.dest_arch != NO_DEST {
                flags |= FLAG_WRITES;
            }
            let expected = pack_rob(
                e.pc,
                e.seq as u16,
                if e.dest_arch != NO_DEST {
                    e.dest_arch
                } else {
                    0
                },
                flags,
            );
            if !self.rob_img.matches(head, expected) {
                return Some(RunOutcome::IntegrityViolation(Structure::Rob));
            }
            if e.is_load && e.exception.is_none() {
                let lqi = self.lq_head;
                let sh = self.lq[lqi];
                debug_assert_eq!(sh.seq, e.seq);
                if sh.resolved && !self.lq_img.matches(lqi, pack_lq(sh.paddr, sh.seq as u16)) {
                    return Some(RunOutcome::IntegrityViolation(Structure::Lq));
                }
            }
            if e.is_store && e.exception.is_none() {
                let sqi = self.sq_head;
                let sh = self.sq[sqi];
                debug_assert_eq!(sh.seq, e.seq);
                if sh.resolved
                    && !self
                        .sq_img
                        .matches(sqi, pack_sq(sh.paddr, sh.data, sh.seq as u16))
                {
                    return Some(RunOutcome::IntegrityViolation(Structure::Sq));
                }
            }

            // Record the architectural observables (also for trapping
            // instructions, so the deviation is visible to the classifier).
            let rec = CommitRecord {
                cycle: self.cycle,
                pc: e.pc,
                raw: e.raw,
                ea: e.ea,
                val: e.val,
            };
            self.record_commit(rec, ctl);

            if let Some(t) = e.exception {
                return Some(RunOutcome::Trap(t));
            }

            if e.is_store {
                let sh = self.sq[self.sq_head];
                self.write_data(sh.paddr, u32::from(sh.size), sh.data);
                self.sq_head = (self.sq_head + 1) % self.sq.len();
                self.sq_count -= 1;
            }
            if e.is_load {
                self.lq_head = (self.lq_head + 1) % self.lq.len();
                self.lq_count -= 1;
            }

            self.stats.committed += 1;

            let halt = e.decoded.is_some_and(|i| i.op == Opcode::Halt);
            if e.dest_arch != NO_DEST {
                self.rf.release(e.prev_phys);
            }
            self.rob_head = (head + 1) % self.rob.len();
            self.rob_count -= 1;

            if halt {
                return Some(RunOutcome::Completed);
            }
        }
        None
    }

    fn record_commit(&mut self, rec: CommitRecord, ctl: &RunControl) {
        if ctl.record_trace {
            self.scratch.trace.push(rec);
        }
        if self.first_deviation.is_none() {
            if let Some(golden) = &ctl.golden {
                let idx = self.commit_index;
                let g = golden
                    .trace
                    .get(idx as usize)
                    .copied()
                    .unwrap_or(CommitRecord {
                        cycle: golden.cycles,
                        pc: 0,
                        raw: 0,
                        ea: 0,
                        val: 0,
                    });
                if !g.matches(&rec) {
                    self.first_deviation = Some(Deviation {
                        index: idx,
                        golden: g,
                        faulty: rec,
                    });
                }
            }
        }
        self.commit_index += 1;
    }

    /// Current cycle (for tests and instrumentation).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to the run statistics so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    // ----- snapshot / restore -----

    /// Captures an immutable image of the full machine state.
    ///
    /// The capture itself is a `Clone` (memory pages are copy-on-write
    /// shared, so it is far cheaper than a deep copy); the payoff is
    /// [`Sim::restore_from`], which rewinds a scratch simulator to the
    /// snapshot in O(dirty state) without allocating.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            sim: self.clone(),
            id: NEXT_SNAPSHOT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Reserves trace capacity ahead of a trace-recording run.
    pub fn reserve_trace(&mut self, n: usize) {
        self.scratch.trace.reserve(n);
    }

    /// Rewinds this simulator to `snap`'s state in place, reusing every
    /// existing allocation.
    ///
    /// Memory re-attaches to the snapshot's pages (CoW: only pages this
    /// simulator dirtied are re-pointed). Caches use their dirty-line
    /// journal when this simulator was last synchronised with the *same*
    /// snapshot (the common campaign case: one worker hammering one
    /// checkpoint), and fall back to a full — but still allocation-free —
    /// copy when switching checkpoints. A restored simulator behaves
    /// bit-identically to a fresh `snap.spawn()`.
    pub fn restore_from(&mut self, snap: &Snapshot) {
        let same_base = self.scratch_base == Some(snap.id);
        self.restore_impl(&snap.sim, same_base);
        self.scratch_base = Some(snap.id);
    }

    /// Rewinds this simulator to the state of another *live* simulator —
    /// the shared-prefix fork primitive: a campaign batch advances one
    /// fault-free carrier, then forks each injected run off it at its
    /// injection cycle.
    ///
    /// There is no snapshot id to certify the dirty-line and dirty-page
    /// journals against, so caches and memory take the full (still
    /// allocation-free) restore path; subsequent [`Sim::restore_from`]
    /// calls also fall back to full copies until re-based on a snapshot.
    pub fn restore_from_sim(&mut self, src: &Sim) {
        self.restore_impl(src, false);
        self.scratch_base = None;
    }

    fn restore_impl(&mut self, src: &Sim, same_base: bool) {
        debug_assert_eq!(
            self.rob.len(),
            src.rob.len(),
            "restore across different configurations"
        );
        self.cycle = src.cycle;
        self.seq_next = src.seq_next;
        self.fetch_pc = src.fetch_pc;
        self.fetch_ready_cycle = src.fetch_ready_cycle;
        self.fetch_paused = src.fetch_paused;
        // One bump-reset for every growable per-run buffer; the generation
        // bump invalidates any ROB index that survives the rewind.
        self.scratch.rewind_to(&src.scratch);
        self.rf.restore_from(&src.rf);
        // Shadow queues: copy only the live ring region — dead slots are
        // never read (validity is defined by the ring bounds), so restore
        // cost scales with occupancy. The injectable images stay full-copy:
        // faults may land in architecturally-free slots.
        copy_ring(&mut self.rob, &src.rob, src.rob_head, src.rob_count);
        copy_ring(
            &mut self.rob_state,
            &src.rob_state,
            src.rob_head,
            src.rob_count,
        );
        copy_ring(
            &mut self.rob_finish,
            &src.rob_finish,
            src.rob_head,
            src.rob_count,
        );
        let len = self.rob.len();
        let mut i = src.rob_head;
        for _ in 0..src.rob_count {
            self.rob_stamp[i] = self.scratch.gen;
            i += 1;
            if i == len {
                i = 0;
            }
        }
        self.rob_head = src.rob_head;
        self.rob_tail = src.rob_tail;
        self.rob_count = src.rob_count;
        self.rob_img.restore_from(&src.rob_img);
        copy_ring(&mut self.lq, &src.lq, src.lq_head, src.lq_count);
        self.lq_head = src.lq_head;
        self.lq_tail = src.lq_tail;
        self.lq_count = src.lq_count;
        self.lq_img.restore_from(&src.lq_img);
        copy_ring(&mut self.sq, &src.sq, src.sq_head, src.sq_count);
        self.sq_head = src.sq_head;
        self.sq_tail = src.sq_tail;
        self.sq_count = src.sq_count;
        self.sq_img.restore_from(&src.sq_img);
        if same_base {
            self.l1i.restore_from(&src.l1i);
            self.l1d.restore_from(&src.l1d);
            self.l2.restore_from(&src.l2);
        } else {
            self.l1i.copy_full_from(&src.l1i);
            self.l1d.copy_full_from(&src.l1d);
            self.l2.copy_full_from(&src.l2);
        }
        self.itlb.restore_from(&src.itlb);
        self.dtlb.restore_from(&src.dtlb);
        if same_base {
            // Only pages this scratch dirtied since it last synchronised
            // with the same snapshot can differ — the dirty bitset names
            // exactly those.
            self.mem.restore_from_dirty(&src.mem);
        } else {
            self.mem.restore_from(&src.mem);
        }
        self.pred.restore_from(&src.pred);
        self.output_addr = src.output_addr;
        self.output_len = src.output_len;
        self.faults_next = src.faults_next;
        self.first_inject_cycle = src.first_inject_cycle;
        self.faults_applied = src.faults_applied;
        self.commit_index = src.commit_index;
        self.first_deviation = src.first_deviation;
        self.stats = src.stats;
    }
}

static NEXT_SNAPSHOT_ID: AtomicU64 = AtomicU64::new(1);

/// An immutable image of a [`Sim`] at one instant, taken with
/// [`Sim::snapshot`].
///
/// The unique snapshot id gates the journaled O(dirty) cache restore: a
/// scratch simulator remembers which snapshot it was last synchronised with
/// and only trusts its dirty-line journal against that same snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    sim: Sim,
    id: u64,
}

impl Snapshot {
    /// The cycle the snapshot was captured at (start-of-cycle state).
    pub fn cycle(&self) -> u64 {
        self.sim.cycle
    }

    /// Read access to the captured machine state.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Builds a scratch simulator synchronised with this snapshot, eligible
    /// for the fast journaled restore on subsequent
    /// [`Sim::restore_from`] calls.
    pub fn spawn(&self) -> Sim {
        let mut s = self.sim.clone();
        s.l1i.clear_tracking();
        s.l1d.clear_tracking();
        s.l2.clear_tracking();
        s.mem.clear_tracking();
        s.scratch_base = Some(self.id);
        s
    }
}

/// Captures the golden (fault-free) run of `program` under `cfg`.
///
/// # Panics
///
/// Panics if the program does not complete within `max_cycles` — golden
/// programs are required to halt.
pub fn capture_golden(program: &Program, cfg: &MuarchConfig, max_cycles: u64) -> Arc<GoldenRun> {
    let mut sim = Sim::new(program, cfg.clone());
    // Pre-size the trace from a committed-instruction estimate (IPC ≈ 1,
    // bounded) so recording does not grow the vector incrementally.
    sim.reserve_trace((max_cycles as usize).clamp(4096, 1 << 18));
    let ctl = RunControl {
        max_cycles,
        record_trace: true,
        ..RunControl::default()
    };
    let report = sim.run(&ctl);
    assert_eq!(
        report.outcome,
        RunOutcome::Completed,
        "golden run of `{}` did not complete: {:?} after {} cycles",
        program.name,
        report.outcome,
        report.cycles,
    );
    Arc::new(GoldenRun {
        trace: report.trace.expect("trace recorded"),
        cycles: report.cycles,
        output: report.output.expect("completed"),
        stats: report.stats,
    })
}
