//! Pure functional semantics of AvgIsa ALU and branch operations.

use avgi_isa::opcode::Opcode;

/// Computes the result of a register-writing ALU operation.
///
/// `a` and `b` are the resolved source values (for immediate forms, `b` is
/// the immediate). Returns `None` for opcodes that do not produce an ALU
/// result (memory, branches, `nop`, `halt` — jumps produce their link value
/// elsewhere).
pub fn alu(op: Opcode, a: u32, b: u32) -> Option<u32> {
    let r = match op {
        Opcode::Add | Opcode::Addi => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::And | Opcode::Andi => a & b,
        Opcode::Or | Opcode::Ori => a | b,
        Opcode::Xor | Opcode::Xori => a ^ b,
        Opcode::Sll | Opcode::Slli => a.wrapping_shl(b & 31),
        Opcode::Srl | Opcode::Srli => a.wrapping_shr(b & 31),
        Opcode::Sra | Opcode::Srai => ((a as i32).wrapping_shr(b & 31)) as u32,
        Opcode::Slt | Opcode::Slti => u32::from((a as i32) < (b as i32)),
        Opcode::Sltu => u32::from(a < b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        Opcode::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        Opcode::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        Opcode::Lui => b << 18,
        _ => return None,
    };
    Some(r)
}

/// Evaluates a conditional branch: is it taken?
///
/// # Panics
///
/// Panics if `op` is not a branch.
pub fn branch_taken(op: Opcode, a: u32, b: u32) -> bool {
    match op {
        Opcode::Beq => a == b,
        Opcode::Bne => a != b,
        Opcode::Blt => (a as i32) < (b as i32),
        Opcode::Bge => (a as i32) >= (b as i32),
        Opcode::Bltu => a < b,
        Opcode::Bgeu => a >= b,
        other => panic!("{other} is not a branch"),
    }
}

/// Execution latency class of an opcode under the given latencies.
pub fn latency(op: Opcode, lat: &crate::config::Latencies) -> u64 {
    match op {
        Opcode::Mul | Opcode::Mulh => lat.mul,
        Opcode::Divu | Opcode::Remu => lat.div,
        _ => lat.alu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(alu(Opcode::Add, u32::MAX, 1), Some(0));
        assert_eq!(alu(Opcode::Sub, 0, 1), Some(u32::MAX));
        assert_eq!(alu(Opcode::Mul, 0x8000_0000, 2), Some(0));
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(alu(Opcode::Sll, 1, 33), Some(2));
        assert_eq!(alu(Opcode::Sra, 0x8000_0000, 31), Some(0xFFFF_FFFF));
        assert_eq!(alu(Opcode::Srl, 0x8000_0000, 31), Some(1));
    }

    #[test]
    fn division_by_zero_defined() {
        assert_eq!(alu(Opcode::Divu, 5, 0), Some(u32::MAX));
        assert_eq!(alu(Opcode::Remu, 5, 0), Some(5));
    }

    #[test]
    fn comparisons() {
        assert_eq!(alu(Opcode::Slt, (-1i32) as u32, 0), Some(1));
        assert_eq!(alu(Opcode::Sltu, (-1i32) as u32, 0), Some(0));
    }

    #[test]
    fn mulh_signed_high_bits() {
        assert_eq!(alu(Opcode::Mulh, (-1i32) as u32, (-1i32) as u32), Some(0));
        assert_eq!(alu(Opcode::Mulh, 0x4000_0000, 4), Some(1));
    }

    #[test]
    fn lui_shifts_immediate() {
        assert_eq!(alu(Opcode::Lui, 0, 1), Some(1 << 18));
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Opcode::Beq, 3, 3));
        assert!(branch_taken(Opcode::Bne, 3, 4));
        assert!(branch_taken(Opcode::Blt, (-1i32) as u32, 0));
        assert!(!branch_taken(Opcode::Bltu, (-1i32) as u32, 0));
        assert!(branch_taken(Opcode::Bge, 0, 0));
        assert!(branch_taken(Opcode::Bgeu, (-1i32) as u32, 0));
    }

    #[test]
    fn non_alu_ops_return_none() {
        assert_eq!(alu(Opcode::Lw, 1, 2), None);
        assert_eq!(alu(Opcode::Beq, 1, 2), None);
        assert_eq!(alu(Opcode::Halt, 0, 0), None);
    }
}
