//! Differential testing: random programs run on the out-of-order simulator
//! must produce exactly the architectural results of a simple sequential
//! interpreter. Any divergence is a pipeline bug (renaming, forwarding,
//! speculation, cache coherence...).

use avgi_isa::instr::Instr;
use avgi_isa::opcode::Opcode;
use avgi_isa::reg::Reg;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::pipeline::Sim;
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome};
use proptest::prelude::*;

const SCRATCH_WORDS: u32 = 64;

/// A tiny architectural interpreter: in-order, no timing, no caches.
fn interpret(code: &[Instr], out_words: u32) -> Vec<u8> {
    let mut regs = [0u32; avgi_isa::NUM_ARCH_REGS as usize];
    let mut scratch = vec![0u32; SCRATCH_WORDS as usize];
    let mut output = vec![0u8; (out_words * 4) as usize];
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < code.len() {
        steps += 1;
        assert!(steps < 100_000, "interpreter ran away");
        let i = code[pc];
        let rd = i.rd.index() as usize;
        let a = regs[i.rs1.index() as usize];
        let b = regs[i.rs2.index() as usize];
        match i.op {
            Opcode::Halt => break,
            Opcode::Nop => {}
            Opcode::Lw => {
                // Address = scratch base + bounded immediate (see codegen).
                let w = (i.imm as u32 / 4) as usize % scratch.len();
                if rd != 0 {
                    regs[rd] = scratch[w];
                }
            }
            Opcode::Sw => {
                let w = (i.imm as u32 / 4) as usize % scratch.len();
                scratch[w] = b;
            }
            op if op.is_branch() => {
                if avgi_muarch::exec::branch_taken(op, a, b) {
                    pc = (pc as i64 + i.imm as i64) as usize;
                    continue;
                }
            }
            op => {
                let operand_b = if matches!(
                    op.format(),
                    avgi_isa::opcode::Format::I
                ) {
                    i.imm as u32
                } else {
                    b
                };
                if let Some(v) = avgi_muarch::exec::alu(op, a, operand_b) {
                    if rd != 0 {
                        regs[rd] = v;
                    }
                }
            }
        }
        pc += 1;
    }
    // Spill every register to the output region (little-endian), then the
    // scratch memory checksum.
    for (k, &v) in regs.iter().enumerate() {
        output[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    let sum = scratch.iter().fold(0u32, |acc, &w| acc.wrapping_add(w));
    let base = regs.len() * 4;
    output[base..base + 4].copy_from_slice(&sum.to_le_bytes());
    output
}

#[derive(Debug, Clone)]
enum GenOp {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, u8, i32),
    Load(u8, i32),
    Store(u8, i32),
    /// Forward branch skipping 1..=3 instructions.
    SkipIf(Opcode, u8, u8, u8),
}

fn arb_genop() -> impl Strategy<Value = GenOp> {
    let reg = 1u8..avgi_isa::NUM_ARCH_REGS;
    let r_ops = prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Mul,
        Opcode::Mulh,
        Opcode::Divu,
        Opcode::Remu,
    ]);
    let i_ops = prop::sample::select(vec![
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
        Opcode::Lui,
    ]);
    let b_ops = prop::sample::select(vec![
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
    ]);
    let word = (0u32..SCRATCH_WORDS).prop_map(|w| (w * 4) as i32);
    prop_oneof![
        (r_ops, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, rs1, rs2)| GenOp::Alu(op, rd, rs1, rs2)),
        (i_ops, reg.clone(), reg.clone(), -2048i32..2048)
            .prop_map(|(op, rd, rs1, imm)| GenOp::AluImm(op, rd, rs1, imm)),
        (reg.clone(), word.clone()).prop_map(|(rd, w)| GenOp::Load(rd, w)),
        (reg.clone(), word).prop_map(|(rs, w)| GenOp::Store(rs, w)),
        (b_ops, reg.clone(), reg, 1u8..=3).prop_map(|(op, a, b, skip)| GenOp::SkipIf(op, a, b, skip)),
    ]
}

fn materialize(ops: &[GenOp]) -> Vec<Instr> {
    let r = |x: u8| Reg::new(x).expect("in range");
    let zero = Reg::new(0).unwrap();
    // r23 (RA slot) is reserved as the scratch base pointer; keep the
    // generator off it by remapping 23 -> 22.
    let m = |x: u8| r(if x == 23 { 22 } else { x });
    let mut code = Vec::new();
    // Base pointer: r23 = DATA_BASE.
    let hi = (DATA_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, r(23), zero, zero, hi));
    for op in ops {
        match *op {
            GenOp::Alu(o, rd, rs1, rs2) => code.push(Instr::new(o, m(rd), m(rs1), m(rs2), 0)),
            GenOp::AluImm(o, rd, rs1, imm) => {
                code.push(Instr::new(o, m(rd), m(rs1), zero, imm))
            }
            GenOp::Load(rd, w) => code.push(Instr::new(Opcode::Lw, m(rd), r(23), zero, w)),
            GenOp::Store(rs, w) => {
                code.push(Instr::new(Opcode::Sw, zero, r(23), m(rs), w))
            }
            GenOp::SkipIf(o, a, b, skip) => {
                code.push(Instr::new(o, zero, m(a), m(b), i32::from(skip) + 1))
            }
        }
    }
    code
}

/// Emits the spill epilogue (registers + scratch checksum to the output
/// region) and halt, mirroring the interpreter's output format.
fn epilogue(code: &mut Vec<Instr>) {
    let zero = Reg::new(0).unwrap();
    // Landing pad: a trailing forward branch may skip up to 3 instructions
    // past the body; in the oracle that means "fall off the end" (halt),
    // so the simulator must reach the epilogue intact either way.
    for _ in 0..4 {
        code.push(Instr::new(Opcode::Nop, zero, zero, zero, 0));
    }
    let base = Reg::new(23).unwrap(); // still DATA_BASE; reload for OUTPUT
    // Checksum scratch into r22 BEFORE clobbering anything.
    let acc = Reg::new(22).unwrap();
    let tmp = Reg::new(21).unwrap();
    // acc = 0; spill registers first requires base = OUTPUT; but we must
    // checksum scratch via r23 (DATA_BASE). Order: checksum, then spill.
    code.push(Instr::new(Opcode::Addi, acc, zero, zero, 0));
    for w in 0..SCRATCH_WORDS {
        code.push(Instr::new(Opcode::Lw, tmp, base, zero, (w * 4) as i32));
        code.push(Instr::new(Opcode::Add, acc, acc, tmp, 0));
    }
    // r23 = OUTPUT_BASE.
    let hi = (OUTPUT_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, base, zero, zero, hi));
    for k in 0..avgi_isa::NUM_ARCH_REGS {
        let src = Reg::new(k).unwrap();
        code.push(Instr::new(Opcode::Sw, zero, base, src, i32::from(k) * 4));
    }
    code.push(Instr::new(
        Opcode::Sw,
        zero,
        base,
        acc,
        i32::from(avgi_isa::NUM_ARCH_REGS) * 4,
    ));
    code.push(Instr::new(Opcode::Halt, zero, zero, zero, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ooo_simulator_matches_sequential_interpreter(ops in prop::collection::vec(arb_genop(), 1..120)) {
        let body = materialize(&ops);
        let out_words = u32::from(avgi_isa::NUM_ARCH_REGS) + 1;

        // Oracle sees the body only (it models base registers implicitly);
        // run it over the same decoded instructions minus prologue.
        let oracle = interpret(&body[1..], out_words);

        let mut code = body;
        epilogue(&mut code);
        let words: Vec<u32> = code.iter().map(Instr::encode).collect();
        let program = Program::new("random", words, out_words * 4);
        let mut sim = Sim::new(&program, MuarchConfig::big());
        let r = sim.run(&RunControl { max_cycles: 5_000_000, ..Default::default() });
        prop_assert_eq!(r.outcome, RunOutcome::Completed, "random program must halt");
        let out = r.output.expect("completed");

        // The spilled registers: r23 differs by design (the sim uses it as
        // base pointer; the oracle keeps it 0). r21/r22 are clobbered by the
        // epilogue. Compare r0..=r20 and the scratch checksum.
        for k in 0..21usize {
            let sim_v = u32::from_le_bytes(out[k * 4..k * 4 + 4].try_into().unwrap());
            let ora_v = u32::from_le_bytes(oracle[k * 4..k * 4 + 4].try_into().unwrap());
            prop_assert_eq!(sim_v, ora_v, "register r{} diverged", k);
        }
        let base = avgi_isa::NUM_ARCH_REGS as usize * 4;
        let sim_sum = u32::from_le_bytes(out[base..base + 4].try_into().unwrap());
        let ora_sum = u32::from_le_bytes(oracle[base..base + 4].try_into().unwrap());
        prop_assert_eq!(sim_sum, ora_sum, "scratch memory diverged");
    }
}
