//! Differential testing: random programs run on the out-of-order simulator
//! must commit exactly the architectural instruction stream of the
//! `avgi-refmodel` reference interpreter. Any divergence is a pipeline bug
//! (renaming, forwarding, speculation, cache coherence...).
//!
//! This test predates the `refmodel` crate and used to carry its own partial
//! inline interpreter, comparing only a register spill and a scratch
//! checksum. It now lockstep-checks the *entire commit trace* — every
//! committed `(pc, raw, ea, val)` — plus the final output bytes, so a
//! transient mid-program divergence can no longer hide behind a correct
//! final state, and no architectural register has to be excluded from the
//! comparison.
//!
//! Generation uses the in-repo xoshiro256** generator (`avgi-rng`) with a
//! fixed seed — reproducible offline, like the original.

use avgi_isa::instr::Instr;
use avgi_isa::opcode::Opcode;
use avgi_isa::reg::Reg;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::pipeline::Sim;
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome};
use avgi_refmodel::verify_report;
use avgi_rng::Rng;

const SCRATCH_WORDS: u32 = 64;

#[derive(Debug, Clone)]
enum GenOp {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, u8, i32),
    Load(u8, i32),
    Store(u8, i32),
    /// Forward branch skipping 1..=3 instructions.
    SkipIf(Opcode, u8, u8, u8),
}

const R_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Mul,
    Opcode::Mulh,
    Opcode::Divu,
    Opcode::Remu,
];

const I_OPS: &[Opcode] = &[
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
    Opcode::Lui,
];

const B_OPS: &[Opcode] = &[
    Opcode::Beq,
    Opcode::Bne,
    Opcode::Blt,
    Opcode::Bge,
    Opcode::Bltu,
    Opcode::Bgeu,
];

fn arb_genop(rng: &mut Rng) -> GenOp {
    let reg = |rng: &mut Rng| 1 + rng.gen_range_u64(u64::from(avgi_isa::NUM_ARCH_REGS) - 1) as u8;
    let word = |rng: &mut Rng| (rng.gen_range_u64(u64::from(SCRATCH_WORDS)) * 4) as i32;
    match rng.gen_range_u64(5) {
        0 => GenOp::Alu(*rng.choose(R_OPS), reg(rng), reg(rng), reg(rng)),
        1 => GenOp::AluImm(
            *rng.choose(I_OPS),
            reg(rng),
            reg(rng),
            rng.gen_range_i32(-2048, 2048),
        ),
        2 => GenOp::Load(reg(rng), word(rng)),
        3 => GenOp::Store(reg(rng), word(rng)),
        _ => GenOp::SkipIf(
            *rng.choose(B_OPS),
            reg(rng),
            reg(rng),
            1 + rng.gen_range_u64(3) as u8,
        ),
    }
}

fn materialize(ops: &[GenOp]) -> Vec<Instr> {
    let r = |x: u8| Reg::new(x).expect("in range");
    let zero = Reg::new(0).unwrap();
    // r23 (RA slot) is reserved as the scratch base pointer; keep the
    // generator off it by remapping 23 -> 22.
    let m = |x: u8| r(if x == 23 { 22 } else { x });
    let mut code = Vec::new();
    // Base pointer: r23 = DATA_BASE.
    let hi = (DATA_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, r(23), zero, zero, hi));
    for op in ops {
        match *op {
            GenOp::Alu(o, rd, rs1, rs2) => code.push(Instr::new(o, m(rd), m(rs1), m(rs2), 0)),
            GenOp::AluImm(o, rd, rs1, imm) => code.push(Instr::new(o, m(rd), m(rs1), zero, imm)),
            GenOp::Load(rd, w) => code.push(Instr::new(Opcode::Lw, m(rd), r(23), zero, w)),
            GenOp::Store(rs, w) => code.push(Instr::new(Opcode::Sw, zero, r(23), m(rs), w)),
            GenOp::SkipIf(o, a, b, skip) => {
                code.push(Instr::new(o, zero, m(a), m(b), i32::from(skip) + 1))
            }
        }
    }
    code
}

/// Emits a spill epilogue (registers + scratch checksum to the output
/// region) and halt, so the final output bytes summarize the whole
/// architectural state and exercise the cache-flush path.
fn epilogue(code: &mut Vec<Instr>) {
    let zero = Reg::new(0).unwrap();
    // Landing pad: a trailing forward branch may skip up to 3 instructions
    // past the body; the simulator must reach the epilogue intact either way.
    for _ in 0..4 {
        code.push(Instr::new(Opcode::Nop, zero, zero, zero, 0));
    }
    let base = Reg::new(23).unwrap(); // still DATA_BASE
    let acc = Reg::new(22).unwrap();
    let tmp = Reg::new(21).unwrap();
    // Checksum scratch via r23 (DATA_BASE) first, then repoint r23 at the
    // output region and spill.
    code.push(Instr::new(Opcode::Addi, acc, zero, zero, 0));
    for w in 0..SCRATCH_WORDS {
        code.push(Instr::new(Opcode::Lw, tmp, base, zero, (w * 4) as i32));
        code.push(Instr::new(Opcode::Add, acc, acc, tmp, 0));
    }
    // r23 = OUTPUT_BASE.
    let hi = (OUTPUT_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, base, zero, zero, hi));
    for k in 0..avgi_isa::NUM_ARCH_REGS {
        let src = Reg::new(k).unwrap();
        code.push(Instr::new(Opcode::Sw, zero, base, src, i32::from(k) * 4));
    }
    code.push(Instr::new(
        Opcode::Sw,
        zero,
        base,
        acc,
        i32::from(avgi_isa::NUM_ARCH_REGS) * 4,
    ));
    code.push(Instr::new(Opcode::Halt, zero, zero, zero, 0));
}

#[test]
fn ooo_simulator_commits_in_lockstep_with_reference_model() {
    let mut rng = Rng::seed_from_u64(0x5EED_D1FF);
    for case in 0..48 {
        let n_ops = 1 + rng.gen_range_usize(119);
        let ops: Vec<GenOp> = (0..n_ops).map(|_| arb_genop(&mut rng)).collect();
        let mut code = materialize(&ops);
        epilogue(&mut code);
        let out_words = u32::from(avgi_isa::NUM_ARCH_REGS) + 1;
        let words: Vec<u32> = code.iter().map(Instr::encode).collect();
        let program = Program::new("random", words, out_words * 4);

        let mut sim = Sim::new(&program, MuarchConfig::big());
        let r = sim.run(&RunControl {
            max_cycles: 5_000_000,
            record_trace: true,
            ..Default::default()
        });
        assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "case {case}: program must halt"
        );
        let report = verify_report(&program, &r)
            .unwrap_or_else(|d| panic!("case {case}: lockstep divergence:\n{d}"));
        assert_eq!(
            report.committed,
            r.trace.as_ref().map(Vec::len).unwrap_or(0) as u64,
            "case {case}: lockstep must consume the whole trace"
        );
    }
}
