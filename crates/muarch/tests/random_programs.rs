//! Differential testing: random programs run on the out-of-order simulator
//! must produce exactly the architectural results of a simple sequential
//! interpreter. Any divergence is a pipeline bug (renaming, forwarding,
//! speculation, cache coherence...).
//!
//! Originally a `proptest` property; the repository must build fully
//! offline, so generation now uses the in-repo xoshiro256** generator
//! (`avgi-rng`) with fixed seeds — same oracle, reproducible failures.

use avgi_isa::instr::Instr;
use avgi_isa::opcode::Opcode;
use avgi_isa::reg::Reg;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::pipeline::Sim;
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome};
use avgi_rng::Rng;

const SCRATCH_WORDS: u32 = 64;

/// A tiny architectural interpreter: in-order, no timing, no caches.
fn interpret(code: &[Instr], out_words: u32) -> Vec<u8> {
    let mut regs = [0u32; avgi_isa::NUM_ARCH_REGS as usize];
    let mut scratch = vec![0u32; SCRATCH_WORDS as usize];
    let mut output = vec![0u8; (out_words * 4) as usize];
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < code.len() {
        steps += 1;
        assert!(steps < 100_000, "interpreter ran away");
        let i = code[pc];
        let rd = i.rd.index() as usize;
        let a = regs[i.rs1.index() as usize];
        let b = regs[i.rs2.index() as usize];
        match i.op {
            Opcode::Halt => break,
            Opcode::Nop => {}
            Opcode::Lw => {
                // Address = scratch base + bounded immediate (see codegen).
                let w = (i.imm as u32 / 4) as usize % scratch.len();
                if rd != 0 {
                    regs[rd] = scratch[w];
                }
            }
            Opcode::Sw => {
                let w = (i.imm as u32 / 4) as usize % scratch.len();
                scratch[w] = b;
            }
            op if op.is_branch() => {
                if avgi_muarch::exec::branch_taken(op, a, b) {
                    pc = (pc as i64 + i.imm as i64) as usize;
                    continue;
                }
            }
            op => {
                let operand_b = if matches!(op.format(), avgi_isa::opcode::Format::I) {
                    i.imm as u32
                } else {
                    b
                };
                if let Some(v) = avgi_muarch::exec::alu(op, a, operand_b) {
                    if rd != 0 {
                        regs[rd] = v;
                    }
                }
            }
        }
        pc += 1;
    }
    // Spill every register to the output region (little-endian), then the
    // scratch memory checksum.
    for (k, &v) in regs.iter().enumerate() {
        output[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    let sum = scratch.iter().fold(0u32, |acc, &w| acc.wrapping_add(w));
    let base = regs.len() * 4;
    output[base..base + 4].copy_from_slice(&sum.to_le_bytes());
    output
}

#[derive(Debug, Clone)]
enum GenOp {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, u8, i32),
    Load(u8, i32),
    Store(u8, i32),
    /// Forward branch skipping 1..=3 instructions.
    SkipIf(Opcode, u8, u8, u8),
}

const R_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Mul,
    Opcode::Mulh,
    Opcode::Divu,
    Opcode::Remu,
];

const I_OPS: &[Opcode] = &[
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
    Opcode::Lui,
];

const B_OPS: &[Opcode] = &[
    Opcode::Beq,
    Opcode::Bne,
    Opcode::Blt,
    Opcode::Bge,
    Opcode::Bltu,
    Opcode::Bgeu,
];

fn arb_genop(rng: &mut Rng) -> GenOp {
    let reg = |rng: &mut Rng| 1 + rng.gen_range_u64(u64::from(avgi_isa::NUM_ARCH_REGS) - 1) as u8;
    let word = |rng: &mut Rng| (rng.gen_range_u64(u64::from(SCRATCH_WORDS)) * 4) as i32;
    match rng.gen_range_u64(5) {
        0 => GenOp::Alu(*rng.choose(R_OPS), reg(rng), reg(rng), reg(rng)),
        1 => GenOp::AluImm(
            *rng.choose(I_OPS),
            reg(rng),
            reg(rng),
            rng.gen_range_i32(-2048, 2048),
        ),
        2 => GenOp::Load(reg(rng), word(rng)),
        3 => GenOp::Store(reg(rng), word(rng)),
        _ => GenOp::SkipIf(
            *rng.choose(B_OPS),
            reg(rng),
            reg(rng),
            1 + rng.gen_range_u64(3) as u8,
        ),
    }
}

fn materialize(ops: &[GenOp]) -> Vec<Instr> {
    let r = |x: u8| Reg::new(x).expect("in range");
    let zero = Reg::new(0).unwrap();
    // r23 (RA slot) is reserved as the scratch base pointer; keep the
    // generator off it by remapping 23 -> 22.
    let m = |x: u8| r(if x == 23 { 22 } else { x });
    let mut code = Vec::new();
    // Base pointer: r23 = DATA_BASE.
    let hi = (DATA_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, r(23), zero, zero, hi));
    for op in ops {
        match *op {
            GenOp::Alu(o, rd, rs1, rs2) => code.push(Instr::new(o, m(rd), m(rs1), m(rs2), 0)),
            GenOp::AluImm(o, rd, rs1, imm) => code.push(Instr::new(o, m(rd), m(rs1), zero, imm)),
            GenOp::Load(rd, w) => code.push(Instr::new(Opcode::Lw, m(rd), r(23), zero, w)),
            GenOp::Store(rs, w) => code.push(Instr::new(Opcode::Sw, zero, r(23), m(rs), w)),
            GenOp::SkipIf(o, a, b, skip) => {
                code.push(Instr::new(o, zero, m(a), m(b), i32::from(skip) + 1))
            }
        }
    }
    code
}

/// Emits the spill epilogue (registers + scratch checksum to the output
/// region) and halt, mirroring the interpreter's output format.
fn epilogue(code: &mut Vec<Instr>) {
    let zero = Reg::new(0).unwrap();
    // Landing pad: a trailing forward branch may skip up to 3 instructions
    // past the body; in the oracle that means "fall off the end" (halt),
    // so the simulator must reach the epilogue intact either way.
    for _ in 0..4 {
        code.push(Instr::new(Opcode::Nop, zero, zero, zero, 0));
    }
    let base = Reg::new(23).unwrap(); // still DATA_BASE; reload for OUTPUT
                                      // Checksum scratch into r22 BEFORE clobbering anything.
    let acc = Reg::new(22).unwrap();
    let tmp = Reg::new(21).unwrap();
    // acc = 0; spill registers first requires base = OUTPUT; but we must
    // checksum scratch via r23 (DATA_BASE). Order: checksum, then spill.
    code.push(Instr::new(Opcode::Addi, acc, zero, zero, 0));
    for w in 0..SCRATCH_WORDS {
        code.push(Instr::new(Opcode::Lw, tmp, base, zero, (w * 4) as i32));
        code.push(Instr::new(Opcode::Add, acc, acc, tmp, 0));
    }
    // r23 = OUTPUT_BASE.
    let hi = (OUTPUT_BASE >> 18) as i32;
    code.push(Instr::new(Opcode::Lui, base, zero, zero, hi));
    for k in 0..avgi_isa::NUM_ARCH_REGS {
        let src = Reg::new(k).unwrap();
        code.push(Instr::new(Opcode::Sw, zero, base, src, i32::from(k) * 4));
    }
    code.push(Instr::new(
        Opcode::Sw,
        zero,
        base,
        acc,
        i32::from(avgi_isa::NUM_ARCH_REGS) * 4,
    ));
    code.push(Instr::new(Opcode::Halt, zero, zero, zero, 0));
}

#[test]
fn ooo_simulator_matches_sequential_interpreter() {
    let mut rng = Rng::seed_from_u64(0x5EED_D1FF);
    for case in 0..48 {
        let n_ops = 1 + rng.gen_range_usize(119);
        let ops: Vec<GenOp> = (0..n_ops).map(|_| arb_genop(&mut rng)).collect();
        let body = materialize(&ops);
        let out_words = u32::from(avgi_isa::NUM_ARCH_REGS) + 1;

        // Oracle sees the body only (it models base registers implicitly);
        // run it over the same decoded instructions minus prologue.
        let oracle = interpret(&body[1..], out_words);

        let mut code = body;
        epilogue(&mut code);
        let words: Vec<u32> = code.iter().map(Instr::encode).collect();
        let program = Program::new("random", words, out_words * 4);
        let mut sim = Sim::new(&program, MuarchConfig::big());
        let r = sim.run(&RunControl {
            max_cycles: 5_000_000,
            ..Default::default()
        });
        assert_eq!(
            r.outcome,
            RunOutcome::Completed,
            "case {case}: program must halt"
        );
        let out = r.output.expect("completed");

        // The spilled registers: r23 differs by design (the sim uses it as
        // base pointer; the oracle keeps it 0). r21/r22 are clobbered by the
        // epilogue. Compare r0..=r20 and the scratch checksum.
        for k in 0..21usize {
            let sim_v = u32::from_le_bytes(out[k * 4..k * 4 + 4].try_into().unwrap());
            let ora_v = u32::from_le_bytes(oracle[k * 4..k * 4 + 4].try_into().unwrap());
            assert_eq!(sim_v, ora_v, "case {case}: register r{k} diverged");
        }
        let base = avgi_isa::NUM_ARCH_REGS as usize * 4;
        let sim_sum = u32::from_le_bytes(out[base..base + 4].try_into().unwrap());
        let ora_sum = u32::from_le_bytes(oracle[base..base + 4].try_into().unwrap());
        assert_eq!(sim_sum, ora_sum, "case {case}: scratch memory diverged");
    }
}
