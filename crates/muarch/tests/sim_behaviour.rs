//! Behavioural tests for the out-of-order simulator: architectural
//! correctness, determinism, and fault propagation mechanics.

use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, T0, T1, T2, ZERO};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::pipeline::{capture_golden, Sim};
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome};

const MAX: u64 = 2_000_000;

fn run_program(p: &Program, cfg: MuarchConfig) -> avgi_muarch::run::RunReport {
    let mut sim = Sim::new(p, cfg);
    sim.run(&RunControl {
        max_cycles: MAX,
        ..Default::default()
    })
}

/// sum 1..=n, store to output.
fn sum_program(n: u32) -> Program {
    let mut a = Assembler::new(0);
    a.li32(T0, n); // counter
    a.li32(T1, 0); // acc
    a.label("loop");
    a.add(T1, T1, T0);
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "loop");
    a.li32(A0, OUTPUT_BASE);
    a.sw(A0, T1, 0);
    a.halt();
    Program::new("sum", a.assemble().unwrap(), 4)
}

#[test]
fn arithmetic_loop_produces_correct_output() {
    let p = sum_program(100);
    let r = run_program(&p, MuarchConfig::big());
    assert_eq!(r.outcome, RunOutcome::Completed);
    let out = r.output.unwrap();
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 5050);
}

#[test]
fn small_config_computes_the_same_result() {
    let p = sum_program(100);
    let r = run_program(&p, MuarchConfig::small());
    assert_eq!(r.outcome, RunOutcome::Completed);
    let out = r.output.unwrap();
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 5050);
}

#[test]
fn timing_differs_across_configs_but_results_match() {
    let p = sum_program(500);
    let big = run_program(&p, MuarchConfig::big());
    let small = run_program(&p, MuarchConfig::small());
    assert_eq!(big.output, small.output);
    assert_ne!(
        big.cycles, small.cycles,
        "different microarchitectures, different timing"
    );
}

#[test]
fn execution_is_deterministic() {
    let p = sum_program(250);
    let a = run_program(&p, MuarchConfig::big());
    let b = run_program(&p, MuarchConfig::big());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.output, b.output);
}

#[test]
fn golden_trace_matches_itself() {
    let p = sum_program(50);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let mut sim = Sim::new(&p, cfg);
    let r = sim.run(&RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert!(
        r.first_deviation.is_none(),
        "fault-free run must not deviate: {:?}",
        r.first_deviation
    );
    assert_eq!(r.output.as_deref(), Some(&golden.output[..]));
}

/// Store/load roundtrip through the D-cache with byte and halfword ops.
#[test]
fn memory_subword_roundtrip() {
    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 0x1234_5678);
    a.sw(A0, T0, 0);
    a.lbu(T1, A0, 1); // 0x56
    a.lh(T2, A0, 2); // 0x1234
    a.sb(A0, T1, 8);
    a.sh(A0, T2, 12);
    a.li32(A1, OUTPUT_BASE);
    a.lw(S0, A0, 8);
    a.sw(A1, S0, 0);
    a.lw(S0, A0, 12);
    a.sw(A1, S0, 4);
    a.halt();
    let p = Program::new("subword", a.assemble().unwrap(), 8);
    let r = run_program(&p, MuarchConfig::big());
    assert_eq!(r.outcome, RunOutcome::Completed);
    let out = r.output.unwrap();
    assert_eq!(u32::from_le_bytes(out[0..4].try_into().unwrap()), 0x56);
    assert_eq!(u32::from_le_bytes(out[4..8].try_into().unwrap()), 0x1234);
}

/// Store-to-load forwarding: a load immediately after a store to the same
/// address must see the stored value.
#[test]
fn store_to_load_forwarding() {
    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 77);
    a.sw(A0, T0, 0);
    a.lw(T1, A0, 0); // forwarded
    a.addi(T1, T1, 1);
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, T1, 0);
    a.halt();
    let p = Program::new("fwd", a.assemble().unwrap(), 4);
    let r = run_program(&p, MuarchConfig::big());
    let out = r.output.unwrap();
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 78);
}

/// Function calls via jal/jalr.
#[test]
fn call_and_return() {
    let mut a = Assembler::new(0);
    a.li32(A0, 20);
    a.call("double");
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, A0, 0);
    a.halt();
    a.label("double");
    a.add(A0, A0, A0);
    a.ret();
    let p = Program::new("call", a.assemble().unwrap(), 4);
    let r = run_program(&p, MuarchConfig::big());
    assert_eq!(r.outcome, RunOutcome::Completed);
    let out = r.output.unwrap();
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 40);
}

#[test]
fn data_dependent_branches_predict_and_recover() {
    // Alternating taken/not-taken pattern exercises mispredict recovery.
    let mut a = Assembler::new(0);
    a.li32(T0, 64); // i
    a.li32(T1, 0); // acc
    a.label("loop");
    a.andi(T2, T0, 1);
    a.beq(T2, ZERO, "even");
    a.addi(T1, T1, 3);
    a.j("next");
    a.label("even");
    a.addi(T1, T1, 5);
    a.label("next");
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "loop");
    a.li32(A0, OUTPUT_BASE);
    a.sw(A0, T1, 0);
    a.halt();
    let p = Program::new("branches", a.assemble().unwrap(), 4);
    let r = run_program(&p, MuarchConfig::big());
    assert_eq!(r.outcome, RunOutcome::Completed);
    let out = r.output.unwrap();
    assert_eq!(
        u32::from_le_bytes(out[..4].try_into().unwrap()),
        32 * 3 + 32 * 5
    );
    assert!(
        r.stats.mispredicts > 0,
        "alternating branch must mispredict sometimes"
    );
}

#[test]
fn watchdog_catches_infinite_loop() {
    let mut a = Assembler::new(0);
    a.label("spin");
    a.j("spin");
    let p = Program::new("spin", a.assemble().unwrap(), 0);
    let mut sim = Sim::new(&p, MuarchConfig::big());
    let r = sim.run(&RunControl {
        max_cycles: 10_000,
        ..Default::default()
    });
    assert_eq!(r.outcome, RunOutcome::Watchdog);
}

#[test]
fn fetch_past_code_end_traps() {
    let mut a = Assembler::new(0);
    a.nop(); // no halt: falls off the end
    let p = Program::new("falloff", a.assemble().unwrap(), 0);
    let r = run_program(&p, MuarchConfig::big());
    assert!(
        matches!(r.outcome, RunOutcome::Trap(_)),
        "got {:?}",
        r.outcome
    );
}

#[test]
fn store_to_code_region_traps() {
    let mut a = Assembler::new(0);
    a.li32(T0, 0x100);
    a.sw(T0, T0, 0);
    a.halt();
    let p = Program::new("wild-store", a.assemble().unwrap(), 0);
    let r = run_program(&p, MuarchConfig::big());
    assert!(r.outcome.is_crash(), "got {:?}", r.outcome);
}

// ----- fault injection mechanics -----

#[test]
fn fault_in_free_register_is_benign() {
    let p = sum_program(64);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let mut sim = Sim::new(&p, cfg.clone());
    // Highest physical register: handed out last from the free list, so a
    // short program never maps it.
    sim.inject(Fault {
        site: FaultSite {
            structure: Structure::RegFile,
            bit: u64::from(cfg.phys_regs - 1) * 32,
        },
        cycle: 10,
    });
    let r = sim.run(&RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    });
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert!(r.first_deviation.is_none());
    assert_eq!(r.output.as_deref(), Some(&golden.output[..]));
}

/// A loop whose base pointer is a long-lived register read every iteration:
/// the realistic source of register-file DCR manifestations. (Values in a
/// tight dependence chain are read one cycle after writeback, leaving a
/// near-zero fault window — that *short effective residency* is exactly the
/// paper's insight 3 for the RF.)
fn live_base_program(iters: u32) -> Program {
    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    // Fill 64 words with distinguishable values.
    a.li32(T0, 0);
    a.li32(T1, 64);
    a.label("fill");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.addi(S0, T0, 100);
    a.sw(T2, S0, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "fill");
    // Sum data[i & 63] for `iters` iterations; A0 stays live throughout.
    a.li32(T0, iters as i32 as u32);
    a.li32(T1, 0);
    a.label("loop");
    a.andi(T2, T0, 63);
    a.slli(T2, T2, 2);
    a.add(T2, A0, T2);
    a.lw(T2, T2, 0);
    a.add(T1, T1, T2);
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "loop");
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, T1, 0);
    a.halt();
    Program::new("live-base", a.assemble().unwrap(), 4)
}

#[test]
fn fault_in_live_register_corrupts_value() {
    // Flipping a low address bit of the physical register holding the base
    // pointer mid-loop redirects every subsequent load: a DCR-style
    // deviation. Registers holding dead or transient values stay masked.
    let p = live_base_program(2000);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let mut hit = 0u32;
    let mut runs = 0u32;
    for phys in 0..cfg.phys_regs as u64 {
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: phys * 32 + 3,
            },
            cycle: golden.cycles / 2,
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        runs += 1;
        if r.first_deviation.is_some() {
            hit += 1;
        }
    }
    assert!(runs == cfg.phys_regs);
    assert!(
        hit > 0,
        "the base pointer's physical register must be vulnerable"
    );
    assert!(
        hit < runs,
        "some registers must be unmapped (hardware masking)"
    );
}

#[test]
fn rob_fault_on_live_entry_is_integrity_violation() {
    // A long-latency divide keeps the ROB occupied; flip a bit in entry 0's
    // image while it is in flight.
    let mut a = Assembler::new(0);
    a.li32(T0, 1000);
    a.li32(T1, 7);
    a.label("loop");
    a.divu(T2, T0, T1);
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "loop");
    a.halt();
    let p = Program::new("divloop", a.assemble().unwrap(), 0);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    // Sweep injection cycles until one lands on a live entry.
    let mut violated = false;
    for c in (golden.cycles / 4)..(golden.cycles / 4 + 200) {
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::Rob,
                bit: 3,
            },
            cycle: c,
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        match r.outcome {
            RunOutcome::IntegrityViolation(Structure::Rob) => {
                violated = true;
                assert!(
                    r.first_deviation.is_none(),
                    "PRE crashes before any ISA deviation"
                );
                break;
            }
            _ => continue,
        }
    }
    assert!(violated, "no injection cycle hit a live ROB entry");
}

#[test]
fn l1d_data_fault_corrupts_loaded_value() {
    // Fill a buffer, then sum it twice; a bit flipped in the L1D data array
    // between the writes and the reads shows up in the sum (DCR) or is
    // masked, depending on where it lands.
    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 0); // i
    a.li32(T1, 64); // n
    a.label("fill");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.sw(T2, T0, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "fill");
    // Long drain loop to give the injector a stable window.
    a.li32(T0, 3000);
    a.label("spin");
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "spin");
    // Sum.
    a.li32(T0, 0);
    a.li32(S0, 0);
    a.label("sum");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.lw(T2, T2, 0);
    a.add(S0, S0, T2);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "sum");
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, S0, 0);
    a.halt();
    let p = Program::new("l1d-sum", a.assemble().unwrap(), 4);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);

    let mut corrupted = 0;
    let total_bits = Structure::L1DData.bit_count(&cfg);
    for k in 0..64 {
        let bit = (total_bits / 64) * k + 5;
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::L1DData,
                bit,
            },
            cycle: golden.cycles / 2,
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        if r.output.as_deref() != Some(&golden.output[..]) || r.first_deviation.is_some() {
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "no L1D data bit affected the sum");
}

#[test]
fn post_inject_cycles_accounting() {
    let p = sum_program(64);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let mut sim = Sim::new(&p, cfg.clone());
    let at = golden.cycles / 2;
    sim.inject(Fault {
        site: FaultSite {
            structure: Structure::RegFile,
            bit: 40 * 32,
        },
        cycle: at,
    });
    let r = sim.run(&RunControl {
        max_cycles: MAX,
        golden: Some(golden),
        ..Default::default()
    });
    assert_eq!(r.inject_cycle, Some(at));
    assert_eq!(r.post_inject_cycles(), r.cycles - at);
}

#[test]
fn ert_stop_ends_benign_runs_early() {
    let p = sum_program(5000);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let mut sim = Sim::new(&p, cfg.clone());
    // Free register: benign fault.
    sim.inject(Fault {
        site: FaultSite {
            structure: Structure::RegFile,
            bit: u64::from(cfg.phys_regs - 1) * 32,
        },
        cycle: 100,
    });
    let window = 500;
    let r = sim.run(&RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ert_window: Some(window),
        ..Default::default()
    });
    assert_eq!(r.outcome, RunOutcome::ErtExpired);
    assert!(
        r.cycles < golden.cycles,
        "ERT stop must beat end-to-end simulation"
    );
    assert!(r.cycles >= 100 + window);
}

#[test]
fn stop_at_first_deviation_ends_runs_early() {
    let p = live_base_program(5000);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    // Find a register fault that deviates, then check the early-stop run is
    // shorter than the end-to-end run.
    for phys in 24..cfg.phys_regs as u64 {
        let fault = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: phys * 32 + 2,
            },
            cycle: golden.cycles / 4,
        };
        let mut full = Sim::new(&p, cfg.clone());
        full.inject(fault);
        let full_r = full.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        if full_r.first_deviation.is_some() && full_r.outcome == RunOutcome::Completed {
            let mut early = Sim::new(&p, cfg.clone());
            early.inject(fault);
            let early_r = early.run(&RunControl {
                max_cycles: MAX,
                golden: Some(golden.clone()),
                stop_at_first_deviation: true,
                ..Default::default()
            });
            assert_eq!(early_r.outcome, RunOutcome::StoppedAtDeviation);
            assert_eq!(early_r.first_deviation, full_r.first_deviation);
            assert!(early_r.cycles <= full_r.cycles);
            return;
        }
    }
    panic!("no deviating register fault found");
}

/// A program that writes a large output early and then spins: the output
/// sits dirty in the D-cache, exposed to ESC-style corruption.
fn early_output_program() -> Program {
    let mut a = Assembler::new(0);
    a.li32(A0, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, 256);
    a.label("fill");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.addi(S0, T0, 7);
    a.sw(T2, S0, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "fill");
    a.li32(T0, 4000);
    a.label("spin");
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "spin");
    a.halt();
    Program::new("early-output", a.assemble().unwrap(), 256 * 4)
}

#[test]
fn dirty_output_line_corruption_is_a_silent_escape() {
    // The ESC mechanism (§IV.D): a fault in cached dirty output data that
    // is never read again corrupts the program output with *no* commit
    // trace deviation — the run completes normally.
    let p = early_output_program();
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let bits = Structure::L1DData.bit_count(&cfg);
    let mut escapes = 0;
    for k in 0..200u64 {
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::L1DData,
                bit: (bits / 200) * k,
            },
            cycle: golden.cycles - 2_000, // deep in the spin: output written, unread
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        if r.outcome == RunOutcome::Completed
            && r.first_deviation.is_none()
            && r.output.as_deref() != Some(&golden.output[..])
        {
            escapes += 1;
        }
    }
    assert!(escapes > 0, "no ESC observed across the L1D data array");
}

#[test]
fn dtlb_fault_redirects_data_accesses() {
    // A flipped PFN in a live DTLB entry silently redirects loads to the
    // wrong physical page: the run deviates (DCR-style) or crashes.
    let p = sum_program(3000);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let bits = Structure::Dtlb.bit_count(&cfg);
    let mut affected = 0;
    for bit in 0..bits {
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::Dtlb,
                bit,
            },
            cycle: golden.cycles / 2,
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        if r.first_deviation.is_some() || r.outcome.is_crash() {
            affected += 1;
        }
    }
    // sum_program barely touches memory, so most TLB faults are benign —
    // but the entries backing the output store must be exercised sometime.
    let _ = affected; // counted for the itlb test below to contrast
}

#[test]
fn itlb_fault_can_corrupt_instruction_stream() {
    let p = sum_program(3000);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let bits = Structure::Itlb.bit_count(&cfg);
    let mut affected = 0;
    for bit in 0..bits {
        let mut sim = Sim::new(&p, cfg.clone());
        sim.inject(Fault {
            site: FaultSite {
                structure: Structure::Itlb,
                bit,
            },
            cycle: golden.cycles / 2,
        });
        let r = sim.run(&RunControl {
            max_cycles: MAX,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        if r.first_deviation.is_some() || r.outcome.is_crash() {
            affected += 1;
        }
    }
    assert!(
        affected > 0,
        "a live ITLB entry backs every instruction fetch"
    );
    assert!(
        affected < bits,
        "stale/invalid ITLB entries must stay benign"
    );
}

#[test]
fn resumed_simulation_equals_uninterrupted_run() {
    // Sim::run_to_cycle + clone is the checkpointing primitive; the resumed
    // machine must be indistinguishable from one that never paused.
    let p = sum_program(800);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let ctl = RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    };

    let fault = Fault {
        site: FaultSite {
            structure: Structure::RegFile,
            bit: 26 * 32 + 4,
        },
        cycle: golden.cycles / 2,
    };
    let mut fresh = Sim::new(&p, cfg.clone());
    fresh.inject(fault);
    let a = fresh.run(&ctl);

    let mut paused = Sim::new(&p, cfg.clone());
    assert!(paused.run_to_cycle(golden.cycles / 3, &ctl).is_none());
    let mut resumed = paused.clone();
    resumed.inject(fault);
    let b = resumed.run(&ctl);

    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.first_deviation, b.first_deviation);
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats, b.stats);
}
