//! Snapshot/restore and copy-on-write semantics: a rewound scratch
//! simulator must be indistinguishable from a freshly cloned one, and no
//! state may leak between simulators sharing CoW memory pages.

use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, T0, T1, ZERO};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_muarch::mem::OUTPUT_BASE;
use avgi_muarch::pipeline::{capture_golden, Sim};
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome, RunReport};

const MAX: u64 = 2_000_000;

/// sum 1..=n, store to output.
fn sum_program(n: u32) -> Program {
    let mut a = Assembler::new(0);
    a.li32(T0, n);
    a.li32(T1, 0);
    a.label("loop");
    a.add(T1, T1, T0);
    a.addi(T0, T0, -1);
    a.bne(T0, ZERO, "loop");
    a.li32(A0, OUTPUT_BASE);
    a.sw(A0, T1, 0);
    a.halt();
    Program::new("sum", a.assemble().unwrap(), 4)
}

fn reg_fault(phys: u64, cycle: u64) -> Fault {
    Fault {
        site: FaultSite {
            structure: Structure::RegFile,
            bit: phys * 32 + 2,
        },
        cycle,
    }
}

fn assert_reports_equal(a: &RunReport, b: &RunReport) {
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.first_deviation, b.first_deviation);
    assert_eq!(a.output, b.output);
    assert_eq!(a.inject_cycle, b.inject_cycle);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn restore_reproduces_fresh_spawn_report() {
    let p = sum_program(800);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let ctl = RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    };

    let mut sim = Sim::new(&p, cfg);
    assert!(sim.run_to_cycle(golden.cycles / 3, &ctl).is_none());
    let snap = sim.snapshot();

    // Reference: a fresh spawn per fault.
    let faults = [
        reg_fault(26, golden.cycles / 2),
        reg_fault(30, golden.cycles * 2 / 3),
        reg_fault(27, golden.cycles / 2 + 7),
    ];
    let reference: Vec<RunReport> = faults
        .iter()
        .map(|&f| {
            let mut s = snap.spawn();
            s.inject(f);
            s.run(&ctl)
        })
        .collect();

    // One scratch simulator rewound between runs.
    let mut scratch = snap.spawn();
    for (f, want) in faults.iter().zip(&reference) {
        scratch.restore_from(&snap);
        scratch.inject(*f);
        let got = scratch.run(&ctl);
        assert_reports_equal(&got, want);
    }
}

#[test]
fn restore_across_different_snapshots_stays_exact() {
    // Switching a scratch simulator between checkpoints exercises the
    // full-copy fallback; coming back to a snapshot re-arms the journaled
    // fast path. Both must stay bit-exact.
    let p = sum_program(900);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let ctl = RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    };

    let mut sim = Sim::new(&p, cfg);
    assert!(sim.run_to_cycle(golden.cycles / 4, &ctl).is_none());
    let early = sim.snapshot();
    assert!(sim.run_to_cycle(golden.cycles / 2, &ctl).is_none());
    let late = sim.snapshot();

    let fault = reg_fault(26, golden.cycles / 2 + 50);
    let mut want_early = early.spawn();
    want_early.inject(fault);
    let want_early = want_early.run(&ctl);
    let mut want_late = late.spawn();
    want_late.inject(fault);
    let want_late = want_late.run(&ctl);

    let mut scratch = early.spawn();
    for snap_then_want in [
        (&early, &want_early),
        (&late, &want_late),
        (&early, &want_early),
        (&early, &want_early),
        (&late, &want_late),
    ] {
        let (snap, want) = snap_then_want;
        scratch.restore_from(snap);
        scratch.inject(fault);
        let got = scratch.run(&ctl);
        assert_reports_equal(&got, want);
    }
}

#[test]
fn cow_write_in_one_clone_does_not_leak_into_siblings() {
    // Two simulators spawned from one snapshot share every clean memory
    // page. A run that corrupts the output region in one of them must leave
    // the sibling's (and the golden image's) bytes untouched.
    let p = sum_program(600);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let ctl = RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    };

    let mut sim = Sim::new(&p, cfg);
    assert!(sim.run_to_cycle(golden.cycles / 3, &ctl).is_none());
    let snap = sim.snapshot();

    // Corrupt one clone aggressively: flip bits in many live registers.
    let mut dirty = snap.spawn();
    for phys in 0..16 {
        dirty.inject(reg_fault(phys, golden.cycles / 2));
    }
    let _ = dirty.run(&ctl);

    // The sibling, run fault-free afterwards, must still match golden —
    // including the output-region bytes materialised by flush_caches.
    let mut clean = snap.spawn();
    let r = clean.run(&ctl);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert!(r.first_deviation.is_none(), "CoW leak corrupted sibling");
    assert_eq!(r.output.as_deref(), Some(&golden.output[..]));
    assert_eq!(r.cycles, golden.cycles);
}

#[test]
fn out_of_cycle_order_injection_applies_in_cycle_order() {
    // Faults armed out of cycle order must behave exactly like the same
    // faults armed in order (insertion keeps `pending_faults` sorted).
    let p = sum_program(700);
    let cfg = MuarchConfig::big();
    let golden = capture_golden(&p, &cfg, MAX);
    let ctl = RunControl {
        max_cycles: MAX,
        golden: Some(golden.clone()),
        ..Default::default()
    };
    let faults = [
        reg_fault(28, golden.cycles / 2),
        reg_fault(25, golden.cycles / 5),
        reg_fault(30, golden.cycles * 3 / 4),
        reg_fault(26, golden.cycles / 3),
        reg_fault(27, golden.cycles / 5), // duplicate cycle
    ];

    let mut sorted = faults;
    sorted.sort_by_key(|f| f.cycle);
    let mut a = Sim::new(&p, cfg.clone());
    for f in sorted {
        a.inject(f);
    }
    let ra = a.run(&ctl);

    let mut b = Sim::new(&p, cfg);
    for f in faults {
        b.inject(f);
    }
    let rb = b.run(&ctl);

    assert_reports_equal(&ra, &rb);
    assert_eq!(
        ra.inject_cycle,
        Some(golden.cycles / 5),
        "earliest fault cycle wins regardless of arm order"
    );
}
