//! Fair-share lease scheduling across concurrent campaigns.
//!
//! The service coordinator (see [`crate::service`]) multiplexes many
//! tenant campaigns over one worker fleet. When a worker asks for work,
//! something has to decide *whose* faults it runs next. [`FairScheduler`]
//! makes that call with three ingredients, checked in order:
//!
//! 1. **Priority tiers** — a campaign with a strictly higher priority
//!    starves lower tiers (that is what priority means here); ties fall
//!    through to weighted selection. Priorities are also honored on
//!    requeue: work reclaimed from an expired lease re-enters its
//!    campaign's queue, not a global one, so a high-priority tenant's
//!    retry never waits behind a low-priority tenant's fresh work.
//! 2. **Per-campaign quotas** — an upper bound on a campaign's
//!    concurrently leased runs. A tenant with a huge backlog cannot
//!    monopolize the fleet; once its in-flight count hits its quota it is
//!    ineligible until batches complete (or leases expire).
//! 3. **Smooth weighted round-robin** — among eligible same-priority
//!    campaigns, selection follows the classic smooth-WRR credit walk
//!    (the algorithm behind nginx's upstream balancing): every eligible
//!    campaign's credit grows by its weight, the largest credit wins and
//!    pays back the total weight in play. Over `N` picks a campaign with
//!    weight `w` receives `N·w/Σw` leases, and consecutive picks
//!    interleave instead of bursting.
//!
//! The scheduler is deliberately pure bookkeeping — no sockets, no time,
//! no randomness — so its fairness properties are provable in unit tests
//! and identical across runs. Determinism here is not cosmetic: scheduling
//! order decides nothing about campaign *results* (every run is
//! deterministic and order-independent), but a reproducible scheduler
//! makes service-level incidents replayable.

use std::collections::BTreeMap;

/// Scheduling knobs one campaign submits with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareConfig {
    /// Priority tier (higher = served first; default 0).
    pub priority: u32,
    /// Weight within the tier for smooth WRR (≥ 1; default 1).
    pub weight: u32,
    /// Max concurrently leased runs, `0` = unlimited (default).
    pub quota: usize,
}

impl Default for ShareConfig {
    fn default() -> Self {
        ShareConfig {
            priority: 0,
            weight: 1,
            quota: 0,
        }
    }
}

#[derive(Debug)]
struct Entry {
    share: ShareConfig,
    /// Runs waiting to be leased.
    queued: usize,
    /// Runs currently out on leases.
    outstanding: usize,
    /// Smooth-WRR credit (only meaningful relative to same-tier peers).
    credit: i64,
}

impl Entry {
    fn eligible(&self) -> bool {
        self.queued > 0 && (self.share.quota == 0 || self.outstanding < self.share.quota)
    }
}

/// The service's fair-share lease scheduler (see the module docs).
///
/// Campaign ids map to share entries; the owner reports queue/outstanding
/// transitions ([`enqueued`](Self::enqueued), [`leased`](Self::leased),
/// [`completed`](Self::completed), [`requeued`](Self::requeued)) and asks
/// [`pick`](Self::pick) which campaign the next lease should come from.
#[derive(Debug, Default)]
pub struct FairScheduler {
    // BTreeMap: deterministic iteration order makes ties reproducible.
    entries: BTreeMap<u64, Entry>,
}

impl FairScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a campaign with `queued` runnable runs. Re-registering an
    /// id replaces its share config but keeps nothing else (the caller
    /// re-reports queue depth).
    pub fn register(&mut self, campaign: u64, share: ShareConfig, queued: usize) {
        let share = ShareConfig {
            weight: share.weight.max(1),
            ..share
        };
        self.entries.insert(
            campaign,
            Entry {
                share,
                queued,
                outstanding: 0,
                credit: 0,
            },
        );
    }

    /// Removes a completed (or cancelled) campaign.
    pub fn deregister(&mut self, campaign: u64) {
        self.entries.remove(&campaign);
    }

    /// Whether `campaign` is currently registered.
    pub fn contains(&self, campaign: u64) -> bool {
        self.entries.contains_key(&campaign)
    }

    fn entry(&mut self, campaign: u64) -> &mut Entry {
        self.entries
            .get_mut(&campaign)
            .expect("campaign not registered with scheduler")
    }

    /// `n` more runs became queueable (fresh submission growth).
    pub fn enqueued(&mut self, campaign: u64, n: usize) {
        self.entry(campaign).queued += n;
    }

    /// `n` queued runs went out on a lease.
    pub fn leased(&mut self, campaign: u64, n: usize) {
        let e = self.entry(campaign);
        e.queued = e.queued.saturating_sub(n);
        e.outstanding += n;
    }

    /// `n` leased runs completed (their batch was accepted).
    pub fn completed(&mut self, campaign: u64, n: usize) {
        let e = self.entry(campaign);
        e.outstanding = e.outstanding.saturating_sub(n);
    }

    /// `n` leased runs were reclaimed (lease expired or its session died)
    /// and are queued again. Because the runs re-enter their own
    /// campaign's queue, the campaign's priority keeps protecting them.
    pub fn requeued(&mut self, campaign: u64, n: usize) {
        let e = self.entry(campaign);
        e.outstanding = e.outstanding.saturating_sub(n);
        e.queued += n;
    }

    /// Queued runs for `campaign` (0 when unregistered).
    pub fn queued(&mut self, campaign: u64) -> usize {
        self.entries.get(&campaign).map_or(0, |e| e.queued)
    }

    /// Picks the campaign the next lease should draw from, or `None` when
    /// no registered campaign is eligible (everything drained, or every
    /// backlogged campaign is at quota).
    ///
    /// `filter` restricts candidates — the service passes the set of
    /// campaigns a pinned v2 worker may serve, or `None` for an
    /// unrestricted v3 worker.
    pub fn pick(&mut self, filter: Option<&dyn Fn(u64) -> bool>) -> Option<u64> {
        let allowed = |id: u64| filter.is_none_or(|f| f(id));
        let top = self
            .entries
            .iter()
            .filter(|(id, e)| e.eligible() && allowed(**id))
            .map(|(_, e)| e.share.priority)
            .max()?;
        // Smooth WRR within the winning tier: everyone earns their weight,
        // the richest takes the lease and pays back the tier's total.
        let candidates: Vec<u64> = self
            .entries
            .iter()
            .filter(|(id, e)| e.eligible() && allowed(**id) && e.share.priority == top)
            .map(|(id, _)| *id)
            .collect();
        let mut total: i64 = 0;
        for &id in &candidates {
            let e = self.entries.get_mut(&id).expect("candidate exists");
            e.credit += i64::from(e.share.weight);
            total += i64::from(e.share.weight);
        }
        let winner = candidates
            .iter()
            .copied()
            .max_by_key(|&id| (self.entries[&id].credit, std::cmp::Reverse(id)))
            .expect("candidates is non-empty");
        self.entries.get_mut(&winner).expect("winner exists").credit -= total;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(picks: &[u64]) -> BTreeMap<u64, usize> {
        let mut m = BTreeMap::new();
        for &p in picks {
            *m.entry(p).or_insert(0) += 1;
        }
        m
    }

    fn drive(s: &mut FairScheduler, rounds: usize) -> Vec<u64> {
        // Lease one run per pick and complete it immediately, so quotas
        // never bind and the weight walk is observable in isolation.
        (0..rounds)
            .filter_map(|_| {
                let id = s.pick(None)?;
                s.leased(id, 1);
                s.completed(id, 1);
                Some(id)
            })
            .collect()
    }

    #[test]
    fn weights_split_leases_proportionally_and_interleave() {
        let mut s = FairScheduler::new();
        s.register(
            1,
            ShareConfig {
                weight: 3,
                ..Default::default()
            },
            1000,
        );
        s.register(
            2,
            ShareConfig {
                weight: 1,
                ..Default::default()
            },
            1000,
        );
        let picks = drive(&mut s, 400);
        let c = counts(&picks);
        assert_eq!(c[&1], 300, "weight 3 of 4 → 3/4 of the leases");
        assert_eq!(c[&2], 100);
        // Smooth WRR interleaves: campaign 2 never waits more than the
        // full cycle length (4) between leases.
        let gaps: Vec<usize> = picks
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == 2)
            .map(|(i, _)| i)
            .collect();
        for w in gaps.windows(2) {
            assert!(w[1] - w[0] <= 4, "weight-1 tenant starved for {:?}", w);
        }
    }

    #[test]
    fn equal_weights_alternate_deterministically() {
        let mut s = FairScheduler::new();
        s.register(10, ShareConfig::default(), 100);
        s.register(20, ShareConfig::default(), 100);
        let picks = drive(&mut s, 6);
        // Ties break toward the lower id, then strict alternation.
        assert_eq!(picks, vec![10, 20, 10, 20, 10, 20]);
    }

    #[test]
    fn higher_priority_tier_starves_lower() {
        let mut s = FairScheduler::new();
        s.register(
            1,
            ShareConfig {
                priority: 5,
                ..Default::default()
            },
            3,
        );
        s.register(2, ShareConfig::default(), 100);
        let picks = drive(&mut s, 6);
        assert_eq!(
            picks,
            vec![1, 1, 1, 2, 2, 2],
            "tier 5 drains fully before tier 0 sees a lease"
        );
    }

    #[test]
    fn quota_caps_outstanding_leases() {
        let mut s = FairScheduler::new();
        s.register(
            1,
            ShareConfig {
                quota: 2,
                ..Default::default()
            },
            100,
        );
        s.register(2, ShareConfig::default(), 100);
        // Lease without completing: campaign 1 hits its quota after 2.
        let mut got = Vec::new();
        for _ in 0..6 {
            let id = s.pick(None).unwrap();
            s.leased(id, 1);
            got.push(id);
        }
        assert_eq!(counts(&got)[&1], 2, "quota 2 binds");
        assert_eq!(counts(&got)[&2], 4);
        // Completing frees quota.
        s.completed(1, 1);
        assert!((0..3).any(|_| s.pick(None) == Some(1)));
    }

    #[test]
    fn requeue_respects_priority() {
        let mut s = FairScheduler::new();
        s.register(
            1,
            ShareConfig {
                priority: 9,
                ..Default::default()
            },
            1,
        );
        s.register(2, ShareConfig::default(), 10);
        assert_eq!(s.pick(None), Some(1));
        s.leased(1, 1);
        // Campaign 1's only work is out on a lease → tier 0 gets served.
        assert_eq!(s.pick(None), Some(2));
        // The lease expires; its work re-enters campaign 1's queue and
        // instantly outranks the backlog below it.
        s.requeued(1, 1);
        assert_eq!(s.pick(None), Some(1));
    }

    #[test]
    fn filter_restricts_candidates() {
        let mut s = FairScheduler::new();
        s.register(1, ShareConfig::default(), 10);
        s.register(
            2,
            ShareConfig {
                priority: 7,
                ..Default::default()
            },
            10,
        );
        // Unfiltered, the high tier wins; a pinned worker only sees its own.
        assert_eq!(s.pick(None), Some(2));
        let only_one = |id: u64| id == 1;
        assert_eq!(s.pick(Some(&only_one)), Some(1));
        let nothing = |_: u64| false;
        assert_eq!(s.pick(Some(&nothing)), None);
    }

    #[test]
    fn drained_and_deregistered_campaigns_disappear() {
        let mut s = FairScheduler::new();
        s.register(1, ShareConfig::default(), 1);
        assert_eq!(s.pick(None), Some(1));
        s.leased(1, 1);
        assert_eq!(s.pick(None), None, "no queued work anywhere");
        s.completed(1, 1);
        s.deregister(1);
        assert!(!s.contains(1));
        assert_eq!(s.pick(None), None);
    }
}
