//! The campaign coordinator: owns the fault list, leases batches to
//! workers, merges their results and telemetry, and survives worker death,
//! link corruption, and its own restarts.
//!
//! One coordinator drives one campaign. It captures the golden run and
//! samples the full fault list itself (so the spec it hands out carries the
//! `golden_cycles`/`config_hash` cross-checks), then serves leases — cycle-
//! sorted index batches — to any worker that connects. Liveness is
//! heartbeat-based: a worker that neither reports nor heartbeats before its
//! lease deadline is presumed dead and the lease's indices return to the
//! front of the queue for reassignment. A batch report is accepted only
//! while its lease is still active *and* owned by the reporting session;
//! late duplicates (from a worker that stalled past its deadline, or a
//! reconnected worker retransmitting) are discarded wholly — results and
//! telemetry delta together — so nothing is ever double-counted. See
//! `DESIGN.md` §10 for the lease state machine.
//!
//! Failure containment (`DESIGN.md` §12): every connection runs on its own
//! thread behind `catch_unwind`, shared state is accessed through
//! poison-recovering locks, a corrupt or malformed frame drops only the
//! offending connection, and leases survive an abrupt disconnect so the
//! session can reconnect (with its handshake token) and retransmit —
//! abandonment is detected by the same deadline sweep that catches death.
//! Past [`GridConfig::max_conns`] live connections, new peers are shed with
//! a `Reject` frame instead of degrading the ones already working.
//!
//! With a journal attached the coordinator is restartable: accepted results
//! stream to disk exactly as in [`run_campaign_journaled`]
//! (avgi_faultsim::run_campaign_journaled), under the configured
//! [`DurabilityPolicy`], and a restarted coordinator resumes from the
//! journal, re-leasing only the missing indices.

use crate::chaos::ChaosInterposer;
use crate::proto::{negotiate, send, FrameBuffer, FrameError, Msg, MIN_PROTO_VERSION};
use crate::spec::{CampaignSpec, ConfigPreset};
use crate::transport::{TcpTransport, Transport};
use avgi_faultsim::campaign::golden_for;
use avgi_faultsim::error::CampaignError;
use avgi_faultsim::journal::{config_hash, CampaignKey, DurabilityPolicy, Journal};
use avgi_faultsim::sampling::sample_faults;
use avgi_faultsim::telemetry::{CampaignObserver, MetricsCollector, MetricsSnapshot};
use avgi_faultsim::{CampaignConfig, CampaignResult, InjectionResult};
use avgi_muarch::fault::Fault;
use avgi_workloads::Workload;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// Handler panics are isolated per connection; the data under the state
/// lock is kept consistent by writing it transactionally (every update
/// completes before the guard drops or never starts), so a poisoned lock
/// carries no torn state and recovery is always safe. One panicking
/// handler must never wedge the whole coordinator.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a grid campaign failed.
#[derive(Debug)]
pub enum GridError {
    /// Socket or journal I/O failed.
    Io(std::io::Error),
    /// Campaign-level failure (journal mismatch, bad shard index, …).
    Campaign(CampaignError),
    /// Framing failure on a connection the caller owns (worker side).
    Frame(FrameError),
    /// The peer violated the protocol (bad handshake, rejection, …).
    Protocol(String),
    /// The spec could not be satisfied locally (unknown workload, golden
    /// or config cross-check failed, …).
    Spec(String),
}

impl core::fmt::Display for GridError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "I/O failed: {e}"),
            GridError::Campaign(e) => write!(f, "campaign failed: {e}"),
            GridError::Frame(e) => write!(f, "framing failed: {e}"),
            GridError::Protocol(m) => write!(f, "protocol violation: {m}"),
            GridError::Spec(m) => write!(f, "unsatisfiable spec: {m}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<std::io::Error> for GridError {
    fn from(e: std::io::Error) -> Self {
        GridError::Io(e)
    }
}

impl From<CampaignError> for GridError {
    fn from(e: CampaignError) -> Self {
        GridError::Campaign(e)
    }
}

impl From<FrameError> for GridError {
    fn from(e: FrameError) -> Self {
        GridError::Frame(e)
    }
}

/// Coordinator-side tuning knobs.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Address to listen on (`"127.0.0.1:0"` picks a free port).
    pub bind: String,
    /// Faults per lease.
    pub batch: usize,
    /// How long a lease stays valid without a heartbeat or report.
    pub lease_timeout: Duration,
    /// Campaign journal path (`None` = not restartable).
    pub journal: Option<PathBuf>,
    /// How aggressively journal appends are pushed to stable storage.
    pub durability: DurabilityPolicy,
    /// Overall wall-clock deadline (`None` = wait forever). A failsafe for
    /// tests and CI; an expired deadline fails the campaign rather than
    /// hanging it.
    pub deadline: Option<Duration>,
    /// Live-connection cap: beyond it, fresh connections are shed with a
    /// `Reject` frame instead of being served.
    pub max_conns: usize,
    /// Fault injection on every accepted connection's outbound frames
    /// (`None` = plain TCP). Test/soak instrumentation; see
    /// [`crate::chaos`].
    pub chaos: Option<Arc<ChaosInterposer>>,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            bind: "127.0.0.1:0".into(),
            batch: 16,
            lease_timeout: Duration::from_secs(30),
            journal: None,
            durability: DurabilityPolicy::Flush,
            deadline: None,
            max_conns: 64,
            chaos: None,
        }
    }
}

/// Coordinator-side campaign statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Workers that completed the handshake (fresh sessions).
    pub workers_seen: u64,
    /// Reconnections that re-attached to an existing session token.
    pub sessions_reattached: u64,
    /// Leases granted (including re-grants of reassigned indices).
    pub leases_granted: u64,
    /// Leases whose indices were requeued (expiry or clean disconnect).
    pub leases_reassigned: u64,
    /// Batch reports discarded because their lease was no longer owned by
    /// the reporting session (nothing from them was counted).
    pub batches_rejected: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Frames rejected by the CRC check (counted within `protocol_errors`'
    /// connection drops, tallied separately for chaos observability).
    pub corrupt_frames: u64,
    /// Connection handlers that panicked (isolated; campaign continued).
    pub handler_panics: u64,
    /// Connections shed at the [`GridConfig::max_conns`] cap.
    pub connections_shed: u64,
    /// Results restored from the journal instead of executed.
    pub resumed: u64,
}

/// A finished distributed campaign.
#[derive(Debug)]
pub struct GridOutcome {
    /// The merged campaign result — bit-identical to a single-process
    /// [`run_campaign`](avgi_faultsim::run_campaign) of the same spec.
    pub result: CampaignResult,
    /// Merged telemetry: the sum of every accepted batch delta (plus the
    /// journal replay on resume). Its deterministic counters match a
    /// single-process campaign's; wall-clock fields are meaningless here.
    pub telemetry: MetricsSnapshot,
    /// Distribution statistics.
    pub stats: GridStats,
}

struct Lease {
    session: u64,
    indices: Vec<usize>,
    deadline: Instant,
}

struct State {
    queue: VecDeque<usize>,
    leases: HashMap<u64, Lease>,
    /// Session token → the connection currently speaking for it.
    sessions: HashMap<u64, u64>,
    results: Vec<Option<InjectionResult>>,
    remaining: usize,
    telemetry: MetricsSnapshot,
    journal: Option<Journal>,
    stats: GridStats,
    next_lease: u64,
    next_session: u64,
    fatal: Option<String>,
}

struct Shared {
    spec: CampaignSpec,
    faults: Vec<Fault>,
    state: Mutex<State>,
    done: AtomicBool,
    batch: usize,
    lease_timeout: Duration,
    next_conn: AtomicU64,
    /// Live connection-handler threads; [`Coordinator::run`] drains to zero
    /// before returning so every connected worker hears [`Msg::Done`] even
    /// when the coordinator process exits right after.
    active_conns: AtomicU64,
}

/// Decrements the live-handler count on every `handle_connection` exit path.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, resumable campaign coordinator.
pub struct Coordinator {
    shared: Arc<Shared>,
    listener: TcpListener,
    workload: String,
    deadline: Option<Duration>,
    max_conns: u64,
    chaos: Option<Arc<ChaosInterposer>>,
}

impl Coordinator {
    /// Captures the golden run, samples the fault list, loads any journaled
    /// results, and binds the listening socket. Workers may connect as soon
    /// as this returns; nothing is served until [`run`](Coordinator::run).
    pub fn bind(
        workload: &Workload,
        preset: ConfigPreset,
        ccfg: &CampaignConfig,
        grid: &GridConfig,
    ) -> Result<Coordinator, GridError> {
        let workload_id = avgi_workloads::index_of(workload.name).ok_or_else(|| {
            GridError::Spec(format!("workload {:?} not in registry", workload.name))
        })?;
        let cfg = preset.config();
        let golden = golden_for(workload, &cfg);
        let faults = sample_faults(ccfg.structure, &cfg, golden.cycles, ccfg.faults, ccfg.seed)
            .map_err(|e| GridError::Spec(format!("fault sampling failed: {e}")))?;
        let spec = CampaignSpec {
            workload: workload.name.to_string(),
            workload_id,
            preset,
            structure: ccfg.structure,
            faults: ccfg.faults,
            seed: ccfg.seed,
            mode: ccfg.mode,
            burst_width: ccfg.burst_width,
            checkpoints: ccfg.checkpoints,
            golden_cycles: golden.cycles,
            config_hash: config_hash(&cfg),
            lease_timeout_ms: u64::try_from(grid.lease_timeout.as_millis()).unwrap_or(u64::MAX),
        };

        let mut results: Vec<Option<InjectionResult>> = vec![None; ccfg.faults];
        let mut telemetry = MetricsSnapshot::empty();
        let mut stats = GridStats::default();
        let journal = match &grid.journal {
            None => None,
            Some(path) => {
                let key = CampaignKey::new(workload.name, &cfg, golden.cycles, ccfg);
                let (journal, done) = Journal::open_with(path, &key, grid.durability)?;
                // Journaled faults must match the freshly sampled list (the
                // same cross-check run_campaign_journaled performs).
                for (&i, r) in &done {
                    if r.fault != faults[i] {
                        return Err(GridError::Campaign(CampaignError::JournalMismatch {
                            field: "fault",
                            expected: format!("{:?}", faults[i]),
                            found: format!("{:?}", r.fault),
                        }));
                    }
                }
                // Replay restored results through a collector so the merged
                // telemetry accounts for them exactly as a single-process
                // resumed campaign would.
                if !done.is_empty() {
                    let collector = MetricsCollector::new();
                    collector.on_campaign_start(ccfg.structure, done.len());
                    for r in done.values() {
                        collector.on_resumed(ccfg.structure, r);
                    }
                    telemetry = collector.snapshot();
                }
                stats.resumed = done.len() as u64;
                for (i, r) in done {
                    results[i] = Some(r);
                }
                Some(journal)
            }
        };
        let remaining = results.iter().filter(|r| r.is_none()).count();
        let mut pending: Vec<usize> = (0..ccfg.faults).filter(|&i| results[i].is_none()).collect();
        // Lease batches in injection-cycle order: consecutive indices then
        // tend to share a checkpoint on the worker, exactly like the
        // single-process engine's cycle-sorted work order.
        pending.sort_by_key(|&i| faults[i].cycle);

        let listener = TcpListener::bind(grid.bind.as_str())?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator {
            shared: Arc::new(Shared {
                spec,
                faults,
                state: Mutex::new(State {
                    queue: pending.into(),
                    leases: HashMap::new(),
                    sessions: HashMap::new(),
                    results,
                    remaining,
                    telemetry,
                    journal,
                    stats,
                    next_lease: 1,
                    next_session: 1,
                    fatal: None,
                }),
                done: AtomicBool::new(remaining == 0),
                batch: grid.batch.max(1),
                lease_timeout: grid.lease_timeout,
                next_conn: AtomicU64::new(1),
                active_conns: AtomicU64::new(0),
            }),
            listener,
            workload: workload.name.to_string(),
            deadline: grid.deadline,
            max_conns: grid.max_conns.max(1) as u64,
            chaos: grid.chaos.clone(),
        })
    }

    /// The bound listening address (useful with `"127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves the campaign until every fault index has exactly one accepted
    /// result, then returns the merged outcome.
    pub fn run(self) -> Result<GridOutcome, GridError> {
        let started = Instant::now();
        loop {
            // Accept every waiting connection.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.shared.active_conns.load(Ordering::SeqCst) >= self.max_conns {
                            // Shed gracefully: a Reject frame tells the peer
                            // it is capacity, not a protocol failure.
                            let mut st = lock_clean(&self.shared.state);
                            st.stats.connections_shed += 1;
                            drop(st);
                            let _ = stream.set_nonblocking(false);
                            let mut stream = stream;
                            let _ = send(
                                &mut stream,
                                &Msg::Reject {
                                    reason: "coordinator at connection capacity".into(),
                                },
                                MIN_PROTO_VERSION,
                            );
                            continue;
                        }
                        let transport: Box<dyn Transport> = match TcpTransport::new(stream) {
                            Ok(t) => Box::new(t),
                            Err(_) => continue,
                        };
                        let transport = match &self.chaos {
                            Some(chaos) => chaos.wrap(transport),
                            None => transport,
                        };
                        let shared = self.shared.clone();
                        let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                        shared.active_conns.fetch_add(1, Ordering::SeqCst);
                        std::thread::spawn(move || {
                            let _guard = ConnGuard(&shared);
                            // Panic isolation: a bug in one handler must
                            // cost one connection, never the coordinator.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_connection(&shared, transport, conn)
                                }));
                            if outcome.is_err() {
                                let mut st = lock_clean(&shared.state);
                                st.stats.handler_panics += 1;
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(GridError::Io(e)),
                }
            }
            // Sweep expired leases back onto the queue.
            let now = Instant::now();
            {
                let mut st = lock_clean(&self.shared.state);
                if let Some(msg) = st.fatal.take() {
                    return Err(GridError::Protocol(msg));
                }
                let expired: Vec<u64> = st
                    .leases
                    .iter()
                    .filter(|(_, l)| l.deadline <= now)
                    .map(|(&id, _)| id)
                    .collect();
                for id in expired {
                    let lease = st.leases.remove(&id).expect("lease id just listed");
                    for &i in lease.indices.iter().rev() {
                        st.queue.push_front(i);
                    }
                    st.stats.leases_reassigned += 1;
                }
                if st.remaining == 0 {
                    self.shared.done.store(true, Ordering::SeqCst);
                    if let Some(journal) = &mut st.journal {
                        // Final sync so a post-campaign crash cannot eat
                        // records an FsyncEveryN policy left unsynced.
                        let _ = journal.sync();
                    }
                    let telemetry = st.telemetry.clone();
                    let stats = st.stats.clone();
                    let results = st
                        .results
                        .iter_mut()
                        .map(|r| r.take().expect("remaining == 0"))
                        .collect();
                    drop(st);
                    // Drain: give every connected worker a chance to hear
                    // `Done` before the caller (possibly the whole process)
                    // goes away. Handlers notice the done flag within one
                    // read-timeout tick; the cap covers wedged peers.
                    let drain_deadline = Instant::now() + Duration::from_secs(2);
                    while self.shared.active_conns.load(Ordering::SeqCst) > 0
                        && Instant::now() < drain_deadline
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return Ok(GridOutcome {
                        result: CampaignResult {
                            workload: self.workload.clone(),
                            structure: self.shared.spec.structure,
                            mode: self.shared.spec.mode,
                            golden_cycles: self.shared.spec.golden_cycles,
                            results,
                            warnings: Vec::new(),
                        },
                        telemetry,
                        stats,
                    });
                }
            }
            if let Some(deadline) = self.deadline {
                if started.elapsed() > deadline {
                    return Err(GridError::Protocol(format!(
                        "campaign deadline ({deadline:?}) exceeded"
                    )));
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Returns a session's leased indices to the queue front — but only if
/// `conn` is still the connection speaking for the session. A stale handler
/// (the session already reconnected elsewhere) must not yank leases out
/// from under the live connection.
fn requeue_session_if_current(shared: &Shared, session: u64, conn: u64) {
    let mut st = lock_clean(&shared.state);
    if st.sessions.get(&session) != Some(&conn) {
        return;
    }
    let ids: Vec<u64> = st
        .leases
        .iter()
        .filter(|(_, l)| l.session == session)
        .map(|(&id, _)| id)
        .collect();
    for id in ids {
        let lease = st.leases.remove(&id).expect("lease id just listed");
        for &i in lease.indices.iter().rev() {
            st.queue.push_front(i);
        }
        st.stats.leases_reassigned += 1;
    }
}

/// Records a protocol violation and tells the peer before dropping it.
///
/// The peer's leases are deliberately *not* requeued here: under link
/// corruption a "violation" is usually the link's fault, and the worker
/// will reconnect with its session token and either retransmit or request
/// fresh work. If it never returns, the deadline sweep reclaims the leases.
fn protocol_error(shared: &Shared, stream: &mut dyn Transport, reason: &str, corrupt: bool) {
    {
        let mut st = lock_clean(&shared.state);
        st.stats.protocol_errors += 1;
        if corrupt {
            st.stats.corrupt_frames += 1;
        }
    }
    // `Reject` rides the JSON dialect at every protocol version.
    let _ = send(
        stream,
        &Msg::Reject {
            reason: reason.to_string(),
        },
        MIN_PROTO_VERSION,
    );
}

/// Resolves a hello's session field to a token: fresh hellos allocate, a
/// returning token re-attaches (rebinding the session to this connection).
fn bind_session(shared: &Shared, conn: u64, requested: Option<u64>) -> u64 {
    let mut st = lock_clean(&shared.state);
    match requested {
        Some(token) => {
            if st.sessions.insert(token, conn).is_some() {
                st.stats.sessions_reattached += 1;
            } else {
                // Unknown token: a worker outliving a coordinator restart.
                // Honor it so its retransmissions stay attributable.
                st.stats.workers_seen += 1;
            }
            token
        }
        None => {
            while st.sessions.contains_key(&st.next_session) {
                st.next_session += 1;
            }
            let token = st.next_session;
            st.next_session += 1;
            st.sessions.insert(token, conn);
            st.stats.workers_seen += 1;
            token
        }
    }
}

/// Drives one worker connection: handshake, then lease/report cycles until
/// the campaign completes or the worker goes away. Runs on a detached
/// thread behind `catch_unwind`.
fn handle_connection(shared: &Shared, mut stream: Box<dyn Transport>, conn: u64) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut fb = FrameBuffer::new();
    // Handshake: first frame must be a hello with a negotiable version.
    let hello = loop {
        match fb.poll(&mut *stream) {
            Ok(Some(payload)) => break payload,
            Ok(None) => {
                if shared.done.load(Ordering::SeqCst) {
                    let _ = send(&mut *stream, &Msg::Done, MIN_PROTO_VERSION);
                    return;
                }
            }
            Err(_) => return,
        }
    };
    let (session, proto) = match Msg::decode(&hello) {
        Ok(Msg::Hello { proto, session }) => match negotiate(proto) {
            Some(negotiated) => (bind_session(shared, conn, session), negotiated),
            None => {
                protocol_error(
                    shared,
                    &mut *stream,
                    &format!(
                        "protocol version {proto} unsupported (need {}..={})",
                        MIN_PROTO_VERSION,
                        crate::proto::PROTO_VERSION
                    ),
                    false,
                );
                return;
            }
        },
        _ => {
            protocol_error(shared, &mut *stream, "expected hello", false);
            return;
        }
    };
    // The classic coordinator serves exactly one campaign, so every peer —
    // v2 or v3 — is pinned to it (campaign 0) in the welcome.
    if send(
        &mut *stream,
        &Msg::Welcome {
            proto,
            session,
            campaign: 0,
            spec: Some(shared.spec.clone()),
        },
        proto,
    )
    .is_err()
    {
        return;
    }

    let mut done_sent = false;
    loop {
        let payload = match fb.poll(&mut *stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // Idle poll: if the campaign finished while this worker was
                // between requests, tell it to go home — but keep serving
                // until it hangs up. Closing here would race a lease
                // request already in flight: the RST would flush the very
                // Done the worker needs, stranding it in reconnect.
                if shared.done.load(Ordering::SeqCst) && !done_sent {
                    done_sent = true;
                    if send(&mut *stream, &Msg::Done, proto).is_err() {
                        return;
                    }
                }
                continue;
            }
            Err(FrameError::Closed) => {
                // A clean close at a frame boundary is the worker leaving
                // for good; hand its work back immediately.
                requeue_session_if_current(shared, session, conn);
                return;
            }
            Err(e) => {
                // Corrupt frame, truncated frame, oversized prefix, I/O
                // failure: reject the connection — never the process — and
                // keep the leases so a reconnecting session can re-attach.
                let corrupt = matches!(e, FrameError::Crc { .. });
                protocol_error(shared, &mut *stream, &format!("bad frame: {e}"), corrupt);
                return;
            }
        };
        let msg = match Msg::decode(&payload) {
            Ok(m) => m,
            Err(e) => {
                protocol_error(shared, &mut *stream, &format!("bad message: {e}"), false);
                return;
            }
        };
        match msg {
            Msg::Hello {
                proto: peer_proto, ..
            } if negotiate(peer_proto) == Some(proto) => {
                // A duplicated hello frame (link chaos): the handshake is
                // idempotent, so just re-welcome rather than dropping a
                // healthy worker.
                if send(
                    &mut *stream,
                    &Msg::Welcome {
                        proto,
                        session,
                        campaign: 0,
                        spec: Some(shared.spec.clone()),
                    },
                    proto,
                )
                .is_err()
                {
                    return;
                }
            }
            Msg::LeaseRequest => {
                let reply = {
                    let mut st = lock_clean(&shared.state);
                    if st.remaining == 0 {
                        Msg::Done
                    } else {
                        let take = shared.batch.min(st.queue.len());
                        if take == 0 {
                            Msg::Drain
                        } else {
                            let indices: Vec<usize> = st.queue.drain(..take).collect();
                            let id = st.next_lease;
                            st.next_lease += 1;
                            st.leases.insert(
                                id,
                                Lease {
                                    session,
                                    indices: indices.clone(),
                                    deadline: Instant::now() + shared.lease_timeout,
                                },
                            );
                            st.stats.leases_granted += 1;
                            Msg::Lease {
                                lease: id,
                                campaign: 0,
                                indices,
                            }
                        }
                    }
                };
                let is_done = matches!(reply, Msg::Done);
                if send(&mut *stream, &reply, proto).is_err() {
                    // The lease (if any) stays put: the session may
                    // reconnect; otherwise the sweep reclaims it.
                    return;
                }
                if is_done {
                    return;
                }
            }
            Msg::Heartbeat { lease, .. } => {
                let mut st = lock_clean(&shared.state);
                if let Some(l) = st.leases.get_mut(&lease) {
                    if l.session == session {
                        l.deadline = Instant::now() + shared.lease_timeout;
                    }
                }
                // A heartbeat for a lease this session no longer owns is
                // harmless: the batch report will be rejected later anyway.
            }
            Msg::BatchDone {
                lease,
                results,
                telemetry,
                ..
            } => {
                match accept_batch(shared, session, lease, results, &telemetry) {
                    Ok(()) => {}
                    Err(Some(reason)) => {
                        protocol_error(shared, &mut *stream, &reason, false);
                        return;
                    }
                    // Silent discard: the lease was reassigned; the worker
                    // just continues with its next lease request.
                    Err(None) => {}
                }
            }
            Msg::SpecRequest { .. } => {
                // Single-campaign coordinator: there is exactly one spec,
                // so any spec request gets it (pinned as campaign 0).
                if send(
                    &mut *stream,
                    &Msg::Spec {
                        campaign: 0,
                        spec: shared.spec.clone(),
                    },
                    proto,
                )
                .is_err()
                {
                    return;
                }
            }
            Msg::Hello { .. }
            | Msg::Welcome { .. }
            | Msg::Lease { .. }
            | Msg::Drain
            | Msg::Done
            | Msg::Spec { .. }
            | Msg::Reject { .. } => {
                protocol_error(shared, &mut *stream, "unexpected message", false);
                return;
            }
        }
    }
}

/// Accepts or rejects one batch report under the state lock.
///
/// `Err(None)` is a silent rejection (stale lease — the indices live on
/// under a new lease, so the report is dropped wholly: no results stored,
/// no telemetry merged, no double count). `Err(Some(reason))` is a protocol
/// violation that should drop the connection.
fn accept_batch(
    shared: &Shared,
    session: u64,
    lease: u64,
    results: Vec<(usize, InjectionResult)>,
    telemetry: &MetricsSnapshot,
) -> Result<(), Option<String>> {
    let mut st = lock_clean(&shared.state);
    let owned = st.leases.get(&lease).is_some_and(|l| l.session == session);
    if !owned {
        st.stats.batches_rejected += 1;
        return Err(None);
    }
    // First-responder-wins is decided above; everything below validates
    // that the report discharges exactly the leased indices with the
    // faults the coordinator sampled.
    let lease_obj = &st.leases[&lease];
    if results.len() != lease_obj.indices.len()
        || results
            .iter()
            .zip(&lease_obj.indices)
            .any(|((i, _), &want)| *i != want)
    {
        return Err(Some("batch does not match its lease".into()));
    }
    if let Some((i, r)) = results
        .iter()
        .find(|(i, r)| shared.faults.get(*i) != Some(&r.fault))
    {
        return Err(Some(format!(
            "fault mismatch at index {i}: reported {:?}",
            r.fault
        )));
    }
    st.leases.remove(&lease);
    for (i, r) in results {
        if st.results[i].is_none() {
            if let Some(journal) = &mut st.journal {
                if let Err(e) = journal.append(i, &r) {
                    st.fatal = Some(format!("journal append failed: {e}"));
                }
            }
            st.results[i] = Some(r);
            st.remaining -= 1;
        }
    }
    st.telemetry.merge(telemetry);
    if st.remaining == 0 {
        shared.done.store(true, Ordering::SeqCst);
    }
    Ok(())
}
