//! The grid wire protocol: length-prefixed, CRC-trailed JSON frames.
//!
//! Every message is one frame: a 4-byte big-endian payload length, that
//! many bytes of UTF-8 JSON (the same hand-rolled JSON subset the campaign
//! journal uses — see [`avgi_faultsim::json`]), and a 4-byte big-endian
//! CRC32 of the payload. Framing keeps the stream self-synchronizing for
//! well-behaved peers and makes misbehaviour cheap to reject: a length
//! prefix above [`MAX_FRAME`] is refused before a single payload byte is
//! read, a CRC mismatch ([`FrameError::Crc`]) or a payload that does not
//! parse as a known message drops the connection — never the process (the
//! coordinator keeps the peer's leases for its session to reclaim on
//! reconnect, or for the expiry sweep — see `DESIGN.md` §10/§12 for the
//! frame layout and the lease state machine).
//!
//! The CRC turns link-level bit corruption (see [`crate::chaos`]) into a
//! detected connection drop instead of a silently wrong lease id or fault
//! index: an undetected flip would need to beat a 2⁻³² check *and* still
//! parse as valid JSON.
//!
//! Result payloads reuse the journal's record encoding
//! ([`avgi_faultsim::journal::record_line`]), so a batch frame is literally
//! a list of journal records plus the batch's telemetry delta in
//! [`MetricsSnapshot::deterministic_counters_json`] form — one encoding for
//! disk and wire.

use crate::spec::CampaignSpec;
use avgi_faultsim::journal::{crc32, record_from_json, record_line};
use avgi_faultsim::json::{escape, parse, Json};
use avgi_faultsim::telemetry::MetricsSnapshot;
use avgi_faultsim::InjectionResult;
use std::io::{Read, Write};

/// Protocol version; peers with a different version are rejected at hello.
/// Version 2 added frame CRC trailers and session-token reconnect.
pub const PROTO_VERSION: u64 = 2;

/// Upper bound on a frame payload (a batch of a few thousand records fits
/// with a wide margin; anything larger is a corrupt or hostile prefix).
pub const MAX_FRAME: u32 = 32 << 20;

/// Bytes of CRC32 trailer after every frame payload.
pub const FRAME_CRC_BYTES: usize = 4;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended or errored mid-frame (truncated length prefix,
    /// payload, or CRC trailer).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`]; nothing after it was read.
    TooLarge(u32),
    /// The payload's CRC32 does not match its trailer: the frame was
    /// corrupted in flight.
    Crc {
        /// CRC the trailer claimed.
        expected: u32,
        /// CRC the payload actually has.
        found: u32,
    },
    /// The payload is not valid UTF-8 or not a known message.
    Malformed(String),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::Crc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: trailer {expected:08x}, payload {found:08x}"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload + CRC trailer) and flushes it.
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &str) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too long")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(&crc32(payload.as_bytes()).to_be_bytes())?;
    w.flush()
}

/// Verifies a payload against its CRC trailer and decodes it.
fn decode_payload(payload: Vec<u8>, trailer: [u8; 4]) -> Result<String, FrameError> {
    let expected = u32::from_be_bytes(trailer);
    let found = crc32(&payload);
    if expected != found {
        return Err(FrameError::Crc { expected, found });
    }
    String::from_utf8(payload).map_err(|e| FrameError::Malformed(format!("not UTF-8: {e}")))
}

/// Reads one frame payload.
///
/// Distinguishes a clean close at a frame boundary ([`FrameError::Closed`])
/// from a truncated frame ([`FrameError::Io`] with `UnexpectedEof`),
/// refuses an oversized length prefix before reading any payload, and
/// rejects a corrupted payload via its CRC trailer.
pub fn read_frame(r: &mut (impl Read + ?Sized)) -> Result<String, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Err(FrameError::Closed),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated length prefix",
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; FRAME_CRC_BYTES];
    r.read_exact(&mut trailer)?;
    decode_payload(payload, trailer)
}

/// An incremental frame decoder for sockets read with a timeout.
///
/// [`read_frame`] assumes a blocking stream: abandoning it on a read
/// timeout mid-frame would tear the stream position. The coordinator's
/// connection handlers instead read with short timeouts (so they can keep
/// checking campaign completion); `FrameBuffer` accumulates whatever bytes
/// arrive and yields a frame only once it is complete, so a timeout between
/// polls never desynchronizes the stream.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_frame(&mut self) -> Result<Option<String>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        let total = 4 + len as usize + FRAME_CRC_BYTES;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total - FRAME_CRC_BYTES].to_vec();
        let trailer: [u8; 4] = self.buf[total - FRAME_CRC_BYTES..total]
            .try_into()
            .expect("slice is exactly FRAME_CRC_BYTES long");
        self.buf.drain(..total);
        decode_payload(payload, trailer).map(Some)
    }

    /// Polls the stream once and returns a complete frame if one is
    /// available.
    ///
    /// `Ok(None)` means no complete frame yet (the read timed out, was
    /// interrupted, or more bytes are needed); [`FrameError::Closed`] means
    /// the peer closed cleanly at a frame boundary, while a close mid-frame
    /// is an I/O error (truncated frame).
    pub fn poll(&mut self, r: &mut (impl Read + ?Sized)) -> Result<Option<String>, FrameError> {
        if let Some(f) = self.take_frame()? {
            return Ok(Some(f));
        }
        let mut tmp = [0u8; 4096];
        match r.read(&mut tmp) {
            Ok(0) if self.buf.is_empty() => Err(FrameError::Closed),
            Ok(0) => Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ))),
            Ok(n) => {
                self.buf.extend_from_slice(&tmp[..n]);
                self.take_frame()
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(FrameError::Io(e)),
        }
    }
}

/// One protocol message.
#[derive(Debug)]
pub enum Msg {
    /// Worker → coordinator: first frame on a fresh connection.
    Hello {
        /// The worker's [`PROTO_VERSION`].
        proto: u64,
        /// `None` for a brand-new worker; `Some(token)` when reconnecting
        /// mid-campaign to re-attach to an existing session (and its live
        /// leases).
        session: Option<u64>,
    },
    /// Coordinator → worker: the campaign to rebuild locally.
    Welcome {
        /// The full campaign spec.
        spec: CampaignSpec,
        /// The session token to present when reconnecting.
        session: u64,
    },
    /// Worker → coordinator: ready for (more) work.
    LeaseRequest,
    /// Coordinator → worker: a batch of fault indices to execute.
    Lease {
        /// Lease id (echoed in heartbeats and the batch report).
        lease: u64,
        /// Fault indices into the campaign's sampled fault list.
        indices: Vec<usize>,
    },
    /// Coordinator → worker: no work available right now (everything is
    /// leased out); poll again shortly.
    Drain,
    /// Coordinator → worker: the campaign is complete; disconnect.
    Done,
    /// Worker → coordinator: still alive and working on `lease`.
    Heartbeat {
        /// The lease being extended.
        lease: u64,
    },
    /// Worker → coordinator: a finished batch.
    BatchDone {
        /// The lease these results discharge.
        lease: u64,
        /// `(fault index, result)` pairs, journal-record encoded.
        results: Vec<(usize, InjectionResult)>,
        /// The batch's mergeable telemetry delta (deterministic counters).
        telemetry: MetricsSnapshot,
    },
    /// Coordinator → worker: fatal rejection (bad protocol version, spec
    /// the worker cannot satisfy, …).
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

impl Msg {
    /// Serializes the message to its JSON frame payload.
    pub fn to_json(&self) -> String {
        match self {
            Msg::Hello { proto, session } => {
                let session = session.map_or_else(|| "null".to_string(), |s| s.to_string());
                format!("{{\"t\":\"hello\",\"proto\":{proto},\"session\":{session}}}")
            }
            Msg::Welcome { spec, session } => format!(
                "{{\"t\":\"welcome\",\"spec\":{},\"session\":{session}}}",
                spec.to_json()
            ),
            Msg::LeaseRequest => "{\"t\":\"lease_request\"}".into(),
            Msg::Lease { lease, indices } => {
                let mut out = format!("{{\"t\":\"lease\",\"lease\":{lease},\"indices\":[");
                for (k, i) in indices.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&i.to_string());
                }
                out.push_str("]}");
                out
            }
            Msg::Drain => "{\"t\":\"drain\"}".into(),
            Msg::Done => "{\"t\":\"done\"}".into(),
            Msg::Heartbeat { lease } => format!("{{\"t\":\"heartbeat\",\"lease\":{lease}}}"),
            Msg::BatchDone {
                lease,
                results,
                telemetry,
            } => {
                let mut out = format!("{{\"t\":\"batch_done\",\"lease\":{lease},\"results\":[");
                for (k, (idx, r)) in results.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let line = record_line(*idx, r);
                    out.push_str(line.trim_end());
                }
                out.push_str("],\"telemetry\":");
                out.push_str(&telemetry.deterministic_counters_json());
                out.push('}');
                out
            }
            Msg::Reject { reason } => {
                format!("{{\"t\":\"reject\",\"reason\":\"{}\"}}", escape(reason))
            }
        }
    }

    /// Parses a frame payload back into a message.
    pub fn from_json(payload: &str) -> Result<Msg, String> {
        let v = parse(payload)?;
        let int = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing `{key}`"))
        };
        match v.get("t").and_then(Json::as_str) {
            Some("hello") => Ok(Msg::Hello {
                proto: int(&v, "proto")?,
                session: match v.get("session") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(s.as_u64().ok_or("bad session")?),
                },
            }),
            Some("welcome") => Ok(Msg::Welcome {
                spec: CampaignSpec::from_json_value(v.get("spec").ok_or("missing `spec`")?)?,
                session: int(&v, "session")?,
            }),
            Some("lease_request") => Ok(Msg::LeaseRequest),
            Some("lease") => {
                let indices = v
                    .get("indices")
                    .and_then(Json::as_array)
                    .ok_or("missing `indices`")?
                    .iter()
                    .map(|i| i.as_u64().map(|n| n as usize).ok_or("bad index"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Msg::Lease {
                    lease: int(&v, "lease")?,
                    indices,
                })
            }
            Some("drain") => Ok(Msg::Drain),
            Some("done") => Ok(Msg::Done),
            Some("heartbeat") => Ok(Msg::Heartbeat {
                lease: int(&v, "lease")?,
            }),
            Some("batch_done") => {
                let results = v
                    .get("results")
                    .and_then(Json::as_array)
                    .ok_or("missing `results`")?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let telemetry = MetricsSnapshot::from_deterministic_value(
                    v.get("telemetry").ok_or("missing `telemetry`")?,
                    &[],
                )?;
                Ok(Msg::BatchDone {
                    lease: int(&v, "lease")?,
                    results,
                    telemetry,
                })
            }
            Some("reject") => Ok(Msg::Reject {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            other => Err(format!("unknown message tag {other:?}")),
        }
    }
}

/// Writes one message as a frame.
pub fn send(w: &mut (impl Write + ?Sized), msg: &Msg) -> std::io::Result<()> {
    write_frame(w, &msg.to_json())
}

/// Reads and parses one message.
pub fn recv(r: &mut (impl Read + ?Sized)) -> Result<Msg, FrameError> {
    let payload = read_frame(r)?;
    Msg::from_json(&payload).map_err(FrameError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), "hello");
        assert_eq!(read_frame(&mut r).unwrap(), "");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_refused_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        match read_frame(&mut &buf[..]) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_error_distinctly() {
        // Torn length prefix.
        let buf = [0u8, 0];
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
        // Complete prefix, torn payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"shor");
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn simple_messages_round_trip() {
        for msg in [
            Msg::Hello {
                proto: 2,
                session: None,
            },
            Msg::Hello {
                proto: 2,
                session: Some(17),
            },
            Msg::LeaseRequest,
            Msg::Lease {
                lease: 7,
                indices: vec![3, 1, 4],
            },
            Msg::Drain,
            Msg::Done,
            Msg::Heartbeat { lease: 9 },
            Msg::Reject {
                reason: "bad \"spec\"".into(),
            },
        ] {
            let back = Msg::from_json(&msg.to_json()).unwrap();
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "first").unwrap();
        write_frame(&mut wire, "second").unwrap();
        let mut fb = FrameBuffer::new();
        // Feed the bytes one at a time: every intermediate poll must report
        // "incomplete" without corrupting the stream position.
        let mut got = Vec::new();
        for b in &wire {
            if let Some(f) = fb.poll(&mut &[*b][..]).unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec!["first".to_string(), "second".to_string()]);
        assert!(matches!(fb.poll(&mut &[][..]), Err(FrameError::Closed)));
    }

    #[test]
    fn frame_buffer_rejects_oversized_prefix_and_mid_frame_close() {
        let mut fb = FrameBuffer::new();
        let mut wire = u32::MAX.to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        assert!(matches!(
            fb.poll(&mut &wire[..]),
            Err(FrameError::TooLarge(_))
        ));
        // A peer vanishing mid-frame is an I/O error, not a clean close.
        let mut fb = FrameBuffer::new();
        let torn = 10u32.to_be_bytes();
        assert!(fb.poll(&mut &torn[..]).unwrap().is_none());
        assert!(matches!(fb.poll(&mut &[][..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn corrupted_payload_fails_the_crc_check() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "pristine").unwrap();
        // Flip one payload bit: both the blocking reader and the
        // incremental buffer must reject the frame.
        wire[6] ^= 0x10;
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Crc { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        let mut fb = FrameBuffer::new();
        assert!(matches!(
            fb.poll(&mut &wire[..]),
            Err(FrameError::Crc { .. })
        ));
        // A flipped trailer bit is equally fatal.
        let mut wire = Vec::new();
        write_frame(&mut wire, "pristine").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::Crc { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_garbage_are_rejected() {
        assert!(Msg::from_json("{\"t\":\"launch_missiles\"}").is_err());
        assert!(Msg::from_json("not json").is_err());
        assert!(Msg::from_json("{\"no_tag\":1}").is_err());
    }
}
