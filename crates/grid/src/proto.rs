//! The grid wire protocol: length-prefixed, CRC-trailed frames carrying
//! JSON control messages and (since v3) binary hot-path messages.
//!
//! Every message is one frame: a 4-byte big-endian payload length, that
//! many payload bytes, and a 4-byte big-endian CRC32 of the payload.
//! Framing keeps the stream self-synchronizing for well-behaved peers and
//! makes misbehaviour cheap to reject: a length prefix above [`MAX_FRAME`]
//! is refused before a single payload byte is read, a CRC mismatch
//! ([`FrameError::Crc`]) or a payload that does not decode as a known
//! message drops the connection — never the process (the coordinator keeps
//! the peer's leases for its session to reclaim on reconnect, or for the
//! expiry sweep — see `DESIGN.md` §10/§12/§15 for the frame layout and the
//! lease state machine).
//!
//! # Payload dialects
//!
//! The first payload byte selects the dialect. `0x7b` (`{`) is a JSON
//! message — the same hand-rolled JSON subset the campaign journal uses
//! (see [`avgi_faultsim::json`]), retained for the handshake, spec
//! exchange, and every rarely-sent control message. Bytes `0x01..=0x03`
//! are the proto-v3 binary encodings of the three messages that dominate
//! a campaign's traffic:
//!
//! * [`BIN_LEASE`] — lease id, campaign id, and the fault indices as
//!   LEB128 varints.
//! * [`BIN_BATCH_DONE`] — the batch's results and its telemetry delta,
//!   varint-packed (sparse outcome/structure/histogram vectors; only
//!   non-zero counters travel).
//! * [`BIN_HEARTBEAT`] — two varints.
//!
//! JSON `batch_done` frames re-serialize every journal record plus a full
//! labelled counters object per batch; the binary encoding drops the label
//! text and the base-10 digits, which is where the fault-free path's wire
//! cost lives (ZOFI's lesson applied to the link). [`WireStats`] tallies
//! per-message-kind frames and bytes so the shrink is measurable, not
//! asserted.
//!
//! # Version negotiation
//!
//! The worker's `hello` carries the highest version it speaks; the
//! coordinator answers `welcome` with [`negotiate`]d `min(peer, ours)`, or
//! rejects peers older than [`MIN_PROTO_VERSION`]. Both sides then encode
//! hot messages per the negotiated version ([`Msg::encode`]); decoding is
//! version-blind because the payload's first byte already names the
//! dialect. A v2 peer (JSON-only, single-campaign) therefore interoperates
//! with a v3 coordinator: it never sees a binary frame, and the campaign
//! fields v3 added to JSON messages are omitted when zero, so the v2 wire
//! shape is byte-identical to what a v2 coordinator emits.
//!
//! The CRC turns link-level bit corruption (see [`crate::chaos`]) into a
//! detected connection drop instead of a silently wrong lease id or fault
//! index: an undetected flip would need to beat a 2⁻³² check *and* still
//! decode as a valid message.

use crate::spec::CampaignSpec;
use avgi_faultsim::journal::{crc32, record_from_json, record_line};
use avgi_faultsim::json::{escape, parse, Json};
use avgi_faultsim::telemetry::{MetricsSnapshot, HIST_BUCKETS, OUTCOME_LABELS};
use avgi_faultsim::InjectionResult;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_muarch::mem::MemFault;
use avgi_muarch::run::{RunOutcome, TrapKind};
use avgi_muarch::trace::{CommitRecord, Deviation};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Highest protocol version this build speaks. Version 2 added frame CRC
/// trailers and session-token reconnect; version 3 added binary hot
/// messages, multi-campaign leases, and the spec exchange.
pub const PROTO_VERSION: u64 = 3;

/// Oldest peer version still accepted at hello.
pub const MIN_PROTO_VERSION: u64 = 2;

/// Resolves the version a connection will speak: the lower of the peer's
/// advertised maximum and ours, or `None` when the peer is too old.
pub fn negotiate(peer: u64) -> Option<u64> {
    let v = peer.min(PROTO_VERSION);
    (v >= MIN_PROTO_VERSION).then_some(v)
}

/// Upper bound on a frame payload (a batch of a few thousand records fits
/// with a wide margin; anything larger is a corrupt or hostile prefix).
pub const MAX_FRAME: u32 = 32 << 20;

/// Bytes of CRC32 trailer after every frame payload.
pub const FRAME_CRC_BYTES: usize = 4;

/// Bytes of framing overhead around every payload (length prefix + CRC).
pub const FRAME_OVERHEAD: usize = 4 + FRAME_CRC_BYTES;

/// First payload byte of a binary `lease` message.
pub const BIN_LEASE: u8 = 0x01;
/// First payload byte of a binary `batch_done` message.
pub const BIN_BATCH_DONE: u8 = 0x02;
/// First payload byte of a binary `heartbeat` message.
pub const BIN_HEARTBEAT: u8 = 0x03;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended or errored mid-frame (truncated length prefix,
    /// payload, or CRC trailer).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`]; nothing after it was read.
    TooLarge(u32),
    /// The payload's CRC32 does not match its trailer: the frame was
    /// corrupted in flight.
    Crc {
        /// CRC the trailer claimed.
        expected: u32,
        /// CRC the payload actually has.
        found: u32,
    },
    /// The payload is not a known message in either dialect.
    Malformed(String),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::Crc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: trailer {expected:08x}, payload {found:08x}"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Builds one complete frame (length prefix + payload + CRC trailer) as a
/// byte vector — the unit the nonblocking service buffers per connection.
pub fn frame_bytes(payload: &[u8]) -> std::io::Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too long")
    })?;
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    Ok(out)
}

/// Writes one frame (length prefix + payload + CRC trailer) and flushes it.
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&frame_bytes(payload)?)?;
    w.flush()
}

/// Verifies a payload against its CRC trailer.
fn check_crc(payload: Vec<u8>, trailer: [u8; 4]) -> Result<Vec<u8>, FrameError> {
    let expected = u32::from_be_bytes(trailer);
    let found = crc32(&payload);
    if expected != found {
        return Err(FrameError::Crc { expected, found });
    }
    Ok(payload)
}

/// Reads one frame payload.
///
/// Distinguishes a clean close at a frame boundary ([`FrameError::Closed`])
/// from a truncated frame ([`FrameError::Io`] with `UnexpectedEof`),
/// refuses an oversized length prefix before reading any payload, and
/// rejects a corrupted payload via its CRC trailer.
pub fn read_frame(r: &mut (impl Read + ?Sized)) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Err(FrameError::Closed),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated length prefix",
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; FRAME_CRC_BYTES];
    r.read_exact(&mut trailer)?;
    check_crc(payload, trailer)
}

/// Capacity a [`FrameBuffer`] shrinks back to after draining a frame that
/// forced a larger allocation. Covers every hot-path frame (leases and
/// heartbeats are tens of bytes; a binary batch of hundreds of results
/// fits in a few KiB), so only a rare oversized JSON frame ever grows the
/// buffer — and the growth no longer outlives the frame.
pub const FRAME_BUF_RETAIN: usize = 64 << 10;

/// An incremental frame decoder for sockets read with a timeout or in
/// nonblocking mode.
///
/// [`read_frame`] assumes a blocking stream: abandoning it on a read
/// timeout mid-frame would tear the stream position. The coordinator's
/// connection handlers instead read with short timeouts (and the service's
/// event loop reads nonblocking sockets); `FrameBuffer` accumulates
/// whatever bytes arrive and yields a frame only once it is complete, so a
/// timeout or `WouldBlock` between polls never desynchronizes the stream.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current backing allocation, in bytes (test hook for the shrink
    /// behaviour after oversized frames).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        let total = 4 + len as usize + FRAME_CRC_BYTES;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total - FRAME_CRC_BYTES].to_vec();
        let trailer: [u8; 4] = self.buf[total - FRAME_CRC_BYTES..total]
            .try_into()
            .expect("slice is exactly FRAME_CRC_BYTES long");
        self.buf.drain(..total);
        // One oversized frame must not pin its high-water allocation for
        // the rest of a long-lived connection: once the bytes are drained,
        // give the excess back (keeping FRAME_BUF_RETAIN so steady-state
        // traffic never reallocates).
        if self.buf.capacity() > FRAME_BUF_RETAIN && self.buf.len() <= FRAME_BUF_RETAIN {
            self.buf.shrink_to(FRAME_BUF_RETAIN);
        }
        check_crc(payload, trailer).map(Some)
    }

    /// Polls the stream once and returns a complete frame if one is
    /// available.
    ///
    /// `Ok(None)` means no complete frame yet (the read timed out, would
    /// block, was interrupted, or more bytes are needed);
    /// [`FrameError::Closed`] means the peer closed cleanly at a frame
    /// boundary, while a close mid-frame is an I/O error (truncated frame).
    pub fn poll(&mut self, r: &mut (impl Read + ?Sized)) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(f) = self.take_frame()? {
            return Ok(Some(f));
        }
        let mut tmp = [0u8; 4096];
        match r.read(&mut tmp) {
            Ok(0) if self.buf.is_empty() => Err(FrameError::Closed),
            Ok(0) => Err(FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ))),
            Ok(n) => {
                self.buf.extend_from_slice(&tmp[..n]);
                self.take_frame()
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(FrameError::Io(e)),
        }
    }
}

// ---------------------------------------------------------------------------
// LEB128 varints — the integer encoding behind every binary message.

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = continue).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked reader over a binary payload.
struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("binary payload truncated")?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                return Err("varint overflows u64".into());
            }
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!("loop returns")
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or("binary payload truncated")?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after binary message",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn structure_code(s: Structure) -> u8 {
    Structure::all()
        .iter()
        .position(|&x| x == s)
        .expect("Structure::all() covers every structure") as u8
}

fn structure_from_code(c: u8) -> Result<Structure, String> {
    Structure::all()
        .get(c as usize)
        .copied()
        .ok_or_else(|| format!("unknown structure code {c}"))
}

// Outcome codes. Flat: every RunOutcome shape gets its own byte, memory
// traps carry their faulting address as a varint and integrity violations
// their structure code, so the binary form loses nothing the journal
// records.
const OUT_COMPLETED: u8 = 0;
const OUT_TRAP_UNDEF: u8 = 1;
const OUT_TRAP_MEM_RANGE: u8 = 2;
const OUT_TRAP_MEM_WCODE: u8 = 3;
const OUT_TRAP_MEM_ALIGN: u8 = 4;
const OUT_TRAP_MEM_EXEC: u8 = 5;
const OUT_INTEGRITY: u8 = 6;
const OUT_WATCHDOG: u8 = 7;
const OUT_STOPPED_AT_DEVIATION: u8 = 8;
const OUT_ERT_EXPIRED: u8 = 9;
const OUT_WALL_EXPIRED: u8 = 10;
const OUT_SIM_ABORT: u8 = 11;

fn put_outcome(out: &mut Vec<u8>, o: RunOutcome) {
    match o {
        RunOutcome::Completed => out.push(OUT_COMPLETED),
        RunOutcome::Trap(TrapKind::UndefinedInstruction) => out.push(OUT_TRAP_UNDEF),
        RunOutcome::Trap(TrapKind::Memory(m)) => {
            let (code, addr) = match m {
                MemFault::OutOfRange(a) => (OUT_TRAP_MEM_RANGE, a),
                MemFault::WriteToCode(a) => (OUT_TRAP_MEM_WCODE, a),
                MemFault::Misaligned(a) => (OUT_TRAP_MEM_ALIGN, a),
                MemFault::ExecuteFault(a) => (OUT_TRAP_MEM_EXEC, a),
            };
            out.push(code);
            put_varint(out, u64::from(addr));
        }
        RunOutcome::IntegrityViolation(s) => {
            out.push(OUT_INTEGRITY);
            out.push(structure_code(s));
        }
        RunOutcome::Watchdog => out.push(OUT_WATCHDOG),
        RunOutcome::StoppedAtDeviation => out.push(OUT_STOPPED_AT_DEVIATION),
        RunOutcome::ErtExpired => out.push(OUT_ERT_EXPIRED),
        RunOutcome::WallClockExpired => out.push(OUT_WALL_EXPIRED),
        RunOutcome::SimAbort => out.push(OUT_SIM_ABORT),
    }
}

fn get_outcome(r: &mut BinReader<'_>) -> Result<RunOutcome, String> {
    let addr = |r: &mut BinReader<'_>| -> Result<u32, String> {
        u32::try_from(r.varint()?).map_err(|_| "trap address overflows u32".to_string())
    };
    Ok(match r.u8()? {
        OUT_COMPLETED => RunOutcome::Completed,
        OUT_TRAP_UNDEF => RunOutcome::Trap(TrapKind::UndefinedInstruction),
        OUT_TRAP_MEM_RANGE => RunOutcome::Trap(TrapKind::Memory(MemFault::OutOfRange(addr(r)?))),
        OUT_TRAP_MEM_WCODE => RunOutcome::Trap(TrapKind::Memory(MemFault::WriteToCode(addr(r)?))),
        OUT_TRAP_MEM_ALIGN => RunOutcome::Trap(TrapKind::Memory(MemFault::Misaligned(addr(r)?))),
        OUT_TRAP_MEM_EXEC => RunOutcome::Trap(TrapKind::Memory(MemFault::ExecuteFault(addr(r)?))),
        OUT_INTEGRITY => RunOutcome::IntegrityViolation(structure_from_code(r.u8()?)?),
        OUT_WATCHDOG => RunOutcome::Watchdog,
        OUT_STOPPED_AT_DEVIATION => RunOutcome::StoppedAtDeviation,
        OUT_ERT_EXPIRED => RunOutcome::ErtExpired,
        OUT_WALL_EXPIRED => RunOutcome::WallClockExpired,
        OUT_SIM_ABORT => RunOutcome::SimAbort,
        other => return Err(format!("unknown outcome code {other}")),
    })
}

const RES_FLAG_DEVIATION: u8 = 1 << 0;
const RES_FLAG_MATCH_PRESENT: u8 = 1 << 1;
const RES_FLAG_MATCH_VALUE: u8 = 1 << 2;
const RES_FLAG_ABORT: u8 = 1 << 3;

fn put_commit(out: &mut Vec<u8>, c: &CommitRecord) {
    put_varint(out, c.cycle);
    put_varint(out, u64::from(c.pc));
    put_varint(out, u64::from(c.raw));
    put_varint(out, u64::from(c.ea));
    put_varint(out, u64::from(c.val));
}

fn get_commit(r: &mut BinReader<'_>) -> Result<CommitRecord, String> {
    let u32of = |v: u64| u32::try_from(v).map_err(|_| "commit field overflows u32".to_string());
    Ok(CommitRecord {
        cycle: r.varint()?,
        pc: u32of(r.varint()?)?,
        raw: u32of(r.varint()?)?,
        ea: u32of(r.varint()?)?,
        val: u32of(r.varint()?)?,
    })
}

fn put_result(out: &mut Vec<u8>, idx: usize, r: &InjectionResult) {
    put_varint(out, idx as u64);
    out.push(structure_code(r.fault.site.structure));
    put_varint(out, r.fault.site.bit);
    put_varint(out, r.fault.cycle);
    put_outcome(out, r.outcome);
    let mut flags = 0u8;
    if r.deviation.is_some() {
        flags |= RES_FLAG_DEVIATION;
    }
    if let Some(m) = r.output_matches {
        flags |= RES_FLAG_MATCH_PRESENT;
        if m {
            flags |= RES_FLAG_MATCH_VALUE;
        }
    }
    if r.abort_message.is_some() {
        flags |= RES_FLAG_ABORT;
    }
    out.push(flags);
    if let Some(d) = &r.deviation {
        put_varint(out, d.index);
        put_commit(out, &d.golden);
        put_commit(out, &d.faulty);
    }
    put_varint(out, r.cycles);
    put_varint(out, r.post_inject_cycles);
    if let Some(msg) = &r.abort_message {
        put_varint(out, msg.len() as u64);
        out.extend_from_slice(msg.as_bytes());
    }
}

fn get_result(r: &mut BinReader<'_>) -> Result<(usize, InjectionResult), String> {
    let idx = usize::try_from(r.varint()?).map_err(|_| "index overflows usize".to_string())?;
    let structure = structure_from_code(r.u8()?)?;
    let bit = r.varint()?;
    let fault_cycle = r.varint()?;
    let outcome = get_outcome(r)?;
    let flags = r.u8()?;
    let deviation = if flags & RES_FLAG_DEVIATION != 0 {
        Some(Deviation {
            index: r.varint()?,
            golden: get_commit(r)?,
            faulty: get_commit(r)?,
        })
    } else {
        None
    };
    let cycles = r.varint()?;
    let post_inject_cycles = r.varint()?;
    let abort_message = if flags & RES_FLAG_ABORT != 0 {
        let len = usize::try_from(r.varint()?).map_err(|_| "abort length".to_string())?;
        Some(
            std::str::from_utf8(r.bytes(len)?)
                .map_err(|e| format!("abort message not UTF-8: {e}"))?
                .to_string(),
        )
    } else {
        None
    };
    Ok((
        idx,
        InjectionResult {
            fault: Fault {
                site: FaultSite { structure, bit },
                cycle: fault_cycle,
            },
            outcome,
            deviation,
            output_matches: (flags & RES_FLAG_MATCH_PRESENT != 0)
                .then_some(flags & RES_FLAG_MATCH_VALUE != 0),
            cycles,
            post_inject_cycles,
            abort_message,
        },
    ))
}

/// Encodes the deterministic counter subset of a telemetry snapshot in
/// sparse binary form: only non-zero outcome, structure, and histogram
/// slots travel, each as `(u8 slot, varint count)`. Classes keep their
/// label text (they are caller-defined), length-prefixed.
fn put_telemetry(out: &mut Vec<u8>, t: &MetricsSnapshot) {
    put_varint(out, t.planned);
    put_varint(out, t.completed);
    put_varint(out, t.retries);
    let outcomes: Vec<(usize, u64)> = t
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(i, (_, n))| (i, *n))
        .collect();
    out.push(outcomes.len() as u8);
    for (i, n) in outcomes {
        out.push(i as u8);
        put_varint(out, n);
    }
    put_varint(out, t.classes.len() as u64);
    for (label, n) in &t.classes {
        put_varint(out, label.len() as u64);
        out.extend_from_slice(label.as_bytes());
        put_varint(out, *n);
    }
    let structures: Vec<(u8, u64)> = t
        .structures
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(s, n)| (structure_code(*s), *n))
        .collect();
    out.push(structures.len() as u8);
    for (code, n) in structures {
        out.push(code);
        put_varint(out, n);
    }
    let buckets: Vec<(usize, u64)> = t
        .post_inject_cycles
        .counts
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| (i, n))
        .collect();
    out.push(buckets.len() as u8);
    for (i, n) in buckets {
        out.push(i as u8);
        put_varint(out, n);
    }
}

fn get_telemetry(
    r: &mut BinReader<'_>,
    class_labels: &[&'static str],
) -> Result<MetricsSnapshot, String> {
    let mut t = MetricsSnapshot::empty();
    t.planned = r.varint()?;
    t.completed = r.varint()?;
    t.retries = r.varint()?;
    for _ in 0..r.u8()? {
        let i = r.u8()? as usize;
        if i >= OUTCOME_LABELS.len() {
            return Err(format!("unknown outcome slot {i}"));
        }
        t.outcomes[i].1 = r.varint()?;
    }
    let classes = r.varint()?;
    for _ in 0..classes {
        let len = usize::try_from(r.varint()?).map_err(|_| "class label length".to_string())?;
        let label = std::str::from_utf8(r.bytes(len)?)
            .map_err(|e| format!("class label not UTF-8: {e}"))?;
        let resolved = class_labels
            .iter()
            .find(|l| **l == label)
            .ok_or_else(|| format!("unknown class label `{label}`"))?;
        t.classes.push((resolved, r.varint()?));
    }
    for _ in 0..r.u8()? {
        let s = structure_from_code(r.u8()?)?;
        let n = r.varint()?;
        t.structures
            .iter_mut()
            .find(|(x, _)| *x == s)
            .expect("Structure::all() covers every structure")
            .1 = n;
    }
    for _ in 0..r.u8()? {
        let i = r.u8()? as usize;
        if i >= HIST_BUCKETS {
            return Err(format!("unknown histogram bucket {i}"));
        }
        t.post_inject_cycles.counts[i] = r.varint()?;
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Messages.

/// One protocol message.
#[derive(Debug)]
pub enum Msg {
    /// Worker → coordinator: first frame on a fresh connection.
    Hello {
        /// The highest [`PROTO_VERSION`] the worker speaks.
        proto: u64,
        /// `None` for a brand-new worker; `Some(token)` when reconnecting
        /// mid-campaign to re-attach to an existing session (and its live
        /// leases).
        session: Option<u64>,
    },
    /// Coordinator → worker: handshake accepted.
    Welcome {
        /// The negotiated protocol version this connection will speak.
        proto: u64,
        /// The session token to present when reconnecting.
        session: u64,
        /// Campaign id `spec` belongs to (`0` for a single-campaign
        /// coordinator or when no spec is pinned).
        campaign: u64,
        /// The campaign to rebuild locally. `Some` for v2 peers (which
        /// are pinned to one campaign for their whole session) and for
        /// the classic one-campaign coordinator; `None` from a
        /// multi-campaign service speaking v3, which sends [`Msg::Spec`]
        /// per campaign instead.
        spec: Option<CampaignSpec>,
    },
    /// Worker → coordinator: ready for (more) work.
    LeaseRequest,
    /// Coordinator → worker: a batch of fault indices to execute.
    Lease {
        /// Lease id (echoed in heartbeats and the batch report).
        lease: u64,
        /// Which campaign's fault list the indices address (`0` on a
        /// single-campaign link).
        campaign: u64,
        /// Fault indices into that campaign's sampled fault list.
        indices: Vec<usize>,
    },
    /// Coordinator → worker: no work available right now (everything is
    /// leased out); poll again shortly.
    Drain,
    /// Coordinator → worker: the campaign is complete (or the service is
    /// shutting down); disconnect.
    Done,
    /// Worker → coordinator: still alive and working on `lease`.
    Heartbeat {
        /// The lease being extended.
        lease: u64,
        /// The lease's campaign (`0` on a single-campaign link).
        campaign: u64,
    },
    /// Worker → coordinator: a finished batch.
    BatchDone {
        /// The lease these results discharge.
        lease: u64,
        /// The lease's campaign (`0` on a single-campaign link).
        campaign: u64,
        /// `(fault index, result)` pairs.
        results: Vec<(usize, InjectionResult)>,
        /// The batch's mergeable telemetry delta (deterministic counters).
        telemetry: MetricsSnapshot,
    },
    /// Coordinator → worker (v3): the spec for a campaign the worker is
    /// about to receive leases for. Sent once per campaign per session,
    /// and again on [`Msg::SpecRequest`].
    Spec {
        /// The campaign the spec describes.
        campaign: u64,
        /// The campaign definition.
        spec: CampaignSpec,
    },
    /// Worker → coordinator (v3): the worker holds a lease for `campaign`
    /// but no spec (e.g. it reconnected and lost its cache); resend
    /// [`Msg::Spec`].
    SpecRequest {
        /// The campaign whose spec is missing.
        campaign: u64,
    },
    /// Coordinator → worker: fatal rejection (bad protocol version, spec
    /// the worker cannot satisfy, …).
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

/// Message kinds, for per-kind wire tallies ([`WireStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// [`Msg::Hello`]
    Hello,
    /// [`Msg::Welcome`]
    Welcome,
    /// [`Msg::LeaseRequest`]
    LeaseRequest,
    /// [`Msg::Lease`]
    Lease,
    /// [`Msg::Drain`]
    Drain,
    /// [`Msg::Done`]
    Done,
    /// [`Msg::Heartbeat`]
    Heartbeat,
    /// [`Msg::BatchDone`]
    BatchDone,
    /// [`Msg::Spec`]
    Spec,
    /// [`Msg::SpecRequest`]
    SpecRequest,
    /// [`Msg::Reject`]
    Reject,
}

impl MsgKind {
    /// Every kind, in tally order.
    pub const ALL: [MsgKind; 11] = [
        MsgKind::Hello,
        MsgKind::Welcome,
        MsgKind::LeaseRequest,
        MsgKind::Lease,
        MsgKind::Drain,
        MsgKind::Done,
        MsgKind::Heartbeat,
        MsgKind::BatchDone,
        MsgKind::Spec,
        MsgKind::SpecRequest,
        MsgKind::Reject,
    ];

    /// Stable lowercase name (log/tally label).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Hello => "hello",
            MsgKind::Welcome => "welcome",
            MsgKind::LeaseRequest => "lease_request",
            MsgKind::Lease => "lease",
            MsgKind::Drain => "drain",
            MsgKind::Done => "done",
            MsgKind::Heartbeat => "heartbeat",
            MsgKind::BatchDone => "batch_done",
            MsgKind::Spec => "spec",
            MsgKind::SpecRequest => "spec_request",
            MsgKind::Reject => "reject",
        }
    }
}

/// Per-stream wire accounting in the style of `ChaosStats`: lock-free
/// frame and payload-byte tallies per message kind, split by direction at
/// the call site (each endpoint keeps one `WireStats` per connection or
/// per negotiated protocol version — that split is what makes the v3
/// `batch_done` shrink measurable against v2 JSON on a mixed fleet).
#[derive(Debug, Default)]
pub struct WireStats {
    frames: [AtomicU64; MsgKind::ALL.len()],
    bytes: [AtomicU64; MsgKind::ALL.len()],
}

impl WireStats {
    /// Fresh, all-zero tallies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame of `kind` whose payload was `payload_len` bytes
    /// (framing overhead is added here, so tallies reflect bytes on the
    /// wire, not just payload).
    pub fn record(&self, kind: MsgKind, payload_len: usize) {
        let i = kind as usize;
        self.frames[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add((payload_len + FRAME_OVERHEAD) as u64, Ordering::Relaxed);
    }

    /// `(frames, wire bytes)` tallied for `kind`.
    pub fn of(&self, kind: MsgKind) -> (u64, u64) {
        let i = kind as usize;
        (
            self.frames[i].load(Ordering::Relaxed),
            self.bytes[i].load(Ordering::Relaxed),
        )
    }

    /// Total `(frames, wire bytes)` across all kinds.
    pub fn total(&self) -> (u64, u64) {
        MsgKind::ALL.iter().fold((0, 0), |(f, b), &k| {
            let (kf, kb) = self.of(k);
            (f + kf, b + kb)
        })
    }

    /// One log line listing every kind with traffic.
    pub fn summary(&self) -> String {
        use core::fmt::Write as _;
        let (frames, bytes) = self.total();
        let mut line = format!("{frames} frames, {bytes} bytes on the wire");
        for &kind in &MsgKind::ALL {
            let (f, b) = self.of(kind);
            if f > 0 {
                let _ = write!(line, " | {} {f}x {b}B", kind.name());
            }
        }
        line
    }
}

impl Msg {
    /// This message's kind (tally key).
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Hello { .. } => MsgKind::Hello,
            Msg::Welcome { .. } => MsgKind::Welcome,
            Msg::LeaseRequest => MsgKind::LeaseRequest,
            Msg::Lease { .. } => MsgKind::Lease,
            Msg::Drain => MsgKind::Drain,
            Msg::Done => MsgKind::Done,
            Msg::Heartbeat { .. } => MsgKind::Heartbeat,
            Msg::BatchDone { .. } => MsgKind::BatchDone,
            Msg::Spec { .. } => MsgKind::Spec,
            Msg::SpecRequest { .. } => MsgKind::SpecRequest,
            Msg::Reject { .. } => MsgKind::Reject,
        }
    }

    /// Serializes the message to its JSON frame payload.
    ///
    /// Campaign ids are emitted only when non-zero, so single-campaign
    /// traffic keeps the exact v2 wire shape (and a v2 peer's parser —
    /// which ignores unknown keys — stays compatible when they do appear).
    pub fn to_json(&self) -> String {
        let campaign_field = |campaign: &u64| {
            if *campaign == 0 {
                String::new()
            } else {
                format!(",\"campaign\":{campaign}")
            }
        };
        match self {
            Msg::Hello { proto, session } => {
                let session = session.map_or_else(|| "null".to_string(), |s| s.to_string());
                format!("{{\"t\":\"hello\",\"proto\":{proto},\"session\":{session}}}")
            }
            Msg::Welcome {
                proto,
                session,
                campaign,
                spec,
            } => format!(
                "{{\"t\":\"welcome\",\"proto\":{proto},\"spec\":{},\"session\":{session}{}}}",
                spec.as_ref()
                    .map_or_else(|| "null".to_string(), |s| s.to_json()),
                campaign_field(campaign),
            ),
            Msg::LeaseRequest => "{\"t\":\"lease_request\"}".into(),
            Msg::Lease {
                lease,
                campaign,
                indices,
            } => {
                let mut out = format!(
                    "{{\"t\":\"lease\",\"lease\":{lease}{},\"indices\":[",
                    campaign_field(campaign)
                );
                for (k, i) in indices.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&i.to_string());
                }
                out.push_str("]}");
                out
            }
            Msg::Drain => "{\"t\":\"drain\"}".into(),
            Msg::Done => "{\"t\":\"done\"}".into(),
            Msg::Heartbeat { lease, campaign } => format!(
                "{{\"t\":\"heartbeat\",\"lease\":{lease}{}}}",
                campaign_field(campaign)
            ),
            Msg::BatchDone {
                lease,
                campaign,
                results,
                telemetry,
            } => {
                let mut out = format!(
                    "{{\"t\":\"batch_done\",\"lease\":{lease}{},\"results\":[",
                    campaign_field(campaign)
                );
                for (k, (idx, r)) in results.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let line = record_line(*idx, r);
                    out.push_str(line.trim_end());
                }
                out.push_str("],\"telemetry\":");
                out.push_str(&telemetry.deterministic_counters_json());
                out.push('}');
                out
            }
            Msg::Spec { campaign, spec } => format!(
                "{{\"t\":\"spec\",\"campaign\":{campaign},\"spec\":{}}}",
                spec.to_json()
            ),
            Msg::SpecRequest { campaign } => {
                format!("{{\"t\":\"spec_request\",\"campaign\":{campaign}}}")
            }
            Msg::Reject { reason } => {
                format!("{{\"t\":\"reject\",\"reason\":\"{}\"}}", escape(reason))
            }
        }
    }

    /// Parses a JSON frame payload back into a message.
    pub fn from_json(payload: &str) -> Result<Msg, String> {
        let v = parse(payload)?;
        let int = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing `{key}`"))
        };
        // Absent on v2 peers and on single-campaign traffic.
        let campaign = v.get("campaign").and_then(Json::as_u64).unwrap_or(0);
        match v.get("t").and_then(Json::as_str) {
            Some("hello") => Ok(Msg::Hello {
                proto: int(&v, "proto")?,
                session: match v.get("session") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(s.as_u64().ok_or("bad session")?),
                },
            }),
            Some("welcome") => Ok(Msg::Welcome {
                // A welcome without `proto` is from a v2 coordinator.
                proto: v.get("proto").and_then(Json::as_u64).unwrap_or(2),
                session: int(&v, "session")?,
                campaign,
                spec: match v.get("spec") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(CampaignSpec::from_json_value(s)?),
                },
            }),
            Some("lease_request") => Ok(Msg::LeaseRequest),
            Some("lease") => {
                let indices = v
                    .get("indices")
                    .and_then(Json::as_array)
                    .ok_or("missing `indices`")?
                    .iter()
                    .map(|i| i.as_u64().map(|n| n as usize).ok_or("bad index"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Msg::Lease {
                    lease: int(&v, "lease")?,
                    campaign,
                    indices,
                })
            }
            Some("drain") => Ok(Msg::Drain),
            Some("done") => Ok(Msg::Done),
            Some("heartbeat") => Ok(Msg::Heartbeat {
                lease: int(&v, "lease")?,
                campaign,
            }),
            Some("batch_done") => {
                let results = v
                    .get("results")
                    .and_then(Json::as_array)
                    .ok_or("missing `results`")?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let telemetry = MetricsSnapshot::from_deterministic_value(
                    v.get("telemetry").ok_or("missing `telemetry`")?,
                    &[],
                )?;
                Ok(Msg::BatchDone {
                    lease: int(&v, "lease")?,
                    campaign,
                    results,
                    telemetry,
                })
            }
            Some("spec") => Ok(Msg::Spec {
                campaign: int(&v, "campaign")?,
                spec: CampaignSpec::from_json_value(v.get("spec").ok_or("missing `spec`")?)?,
            }),
            Some("spec_request") => Ok(Msg::SpecRequest {
                campaign: int(&v, "campaign")?,
            }),
            Some("reject") => Ok(Msg::Reject {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            other => Err(format!("unknown message tag {other:?}")),
        }
    }

    /// Encodes the message for a connection speaking `proto`.
    ///
    /// At v3+, the hot messages (`lease`, `batch_done`, `heartbeat`) use
    /// the binary dialect; everything else — and everything on a v2 link —
    /// is JSON. Decoding ([`Msg::decode`]) needs no version because the
    /// first payload byte names the dialect.
    pub fn encode(&self, proto: u64) -> Vec<u8> {
        if proto >= 3 {
            match self {
                Msg::Lease {
                    lease,
                    campaign,
                    indices,
                } => {
                    let mut out = vec![BIN_LEASE];
                    put_varint(&mut out, *lease);
                    put_varint(&mut out, *campaign);
                    put_varint(&mut out, indices.len() as u64);
                    for &i in indices {
                        put_varint(&mut out, i as u64);
                    }
                    return out;
                }
                Msg::Heartbeat { lease, campaign } => {
                    let mut out = vec![BIN_HEARTBEAT];
                    put_varint(&mut out, *lease);
                    put_varint(&mut out, *campaign);
                    return out;
                }
                Msg::BatchDone {
                    lease,
                    campaign,
                    results,
                    telemetry,
                } => {
                    let mut out = vec![BIN_BATCH_DONE];
                    put_varint(&mut out, *lease);
                    put_varint(&mut out, *campaign);
                    put_varint(&mut out, results.len() as u64);
                    for (idx, r) in results {
                        put_result(&mut out, *idx, r);
                    }
                    put_telemetry(&mut out, telemetry);
                    return out;
                }
                _ => {}
            }
        }
        self.to_json().into_bytes()
    }

    /// Decodes a frame payload in either dialect.
    ///
    /// `class_labels` resolves telemetry class labels exactly as
    /// [`MetricsSnapshot::from_deterministic_value`] does (the grid runs
    /// classifier-free workers, so callers pass `&[]`).
    pub fn decode_with_classes(
        payload: &[u8],
        class_labels: &[&'static str],
    ) -> Result<Msg, String> {
        match payload.first() {
            Some(&BIN_LEASE) => {
                let mut r = BinReader::new(&payload[1..]);
                let lease = r.varint()?;
                let campaign = r.varint()?;
                let count = r.varint()?;
                let mut indices = Vec::with_capacity(count.min(MAX_FRAME as u64) as usize);
                for _ in 0..count {
                    indices
                        .push(usize::try_from(r.varint()?).map_err(|_| "index overflows usize")?);
                }
                r.finish()?;
                Ok(Msg::Lease {
                    lease,
                    campaign,
                    indices,
                })
            }
            Some(&BIN_HEARTBEAT) => {
                let mut r = BinReader::new(&payload[1..]);
                let lease = r.varint()?;
                let campaign = r.varint()?;
                r.finish()?;
                Ok(Msg::Heartbeat { lease, campaign })
            }
            Some(&BIN_BATCH_DONE) => {
                let mut r = BinReader::new(&payload[1..]);
                let lease = r.varint()?;
                let campaign = r.varint()?;
                let count = r.varint()?;
                let mut results = Vec::with_capacity(count.min(MAX_FRAME as u64) as usize);
                for _ in 0..count {
                    results.push(get_result(&mut r)?);
                }
                let telemetry = get_telemetry(&mut r, class_labels)?;
                r.finish()?;
                Ok(Msg::BatchDone {
                    lease,
                    campaign,
                    results,
                    telemetry,
                })
            }
            Some(&b'{') => {
                Msg::from_json(std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?)
            }
            Some(&b) => Err(format!("unknown payload dialect byte {b:#04x}")),
            None => Err("empty payload".into()),
        }
    }

    /// [`Msg::decode_with_classes`] with no classifier labels.
    pub fn decode(payload: &[u8]) -> Result<Msg, String> {
        Self::decode_with_classes(payload, &[])
    }
}

/// Writes one message as a frame in the connection's negotiated dialect,
/// returning the payload length (for [`WireStats`] tallies).
pub fn send(w: &mut (impl Write + ?Sized), msg: &Msg, proto: u64) -> std::io::Result<usize> {
    let payload = msg.encode(proto);
    write_frame(w, &payload)?;
    Ok(payload.len())
}

/// Reads and decodes one message.
pub fn recv(r: &mut (impl Read + ?Sized)) -> Result<Msg, FrameError> {
    let payload = read_frame(r)?;
    Msg::decode(&payload).map_err(FrameError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_refused_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        match read_frame(&mut &buf[..]) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_error_distinctly() {
        // Torn length prefix.
        let buf = [0u8, 0];
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
        // Complete prefix, torn payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"shor");
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn version_negotiation_matrix() {
        assert_eq!(negotiate(3), Some(3));
        assert_eq!(negotiate(2), Some(2));
        assert_eq!(
            negotiate(99),
            Some(PROTO_VERSION),
            "future peers cap at ours"
        );
        assert_eq!(negotiate(1), None, "pre-CRC peers are refused");
        assert_eq!(negotiate(0), None);
    }

    #[test]
    fn varints_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = BinReader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
        // Truncated and overlong inputs are rejected, not mis-read.
        assert!(BinReader::new(&[0x80]).varint().is_err());
        assert!(BinReader::new(&[0xff; 11]).varint().is_err());
    }

    #[test]
    fn simple_messages_round_trip_in_json() {
        for msg in [
            Msg::Hello {
                proto: 3,
                session: None,
            },
            Msg::Hello {
                proto: 2,
                session: Some(17),
            },
            Msg::LeaseRequest,
            Msg::Lease {
                lease: 7,
                campaign: 0,
                indices: vec![3, 1, 4],
            },
            Msg::Lease {
                lease: 7,
                campaign: 5,
                indices: vec![3, 1, 4],
            },
            Msg::Drain,
            Msg::Done,
            Msg::Heartbeat {
                lease: 9,
                campaign: 0,
            },
            Msg::Heartbeat {
                lease: 9,
                campaign: 2,
            },
            Msg::SpecRequest { campaign: 11 },
            Msg::Reject {
                reason: "bad \"spec\"".into(),
            },
        ] {
            let back = Msg::from_json(&msg.to_json()).unwrap();
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn v2_json_shape_is_preserved_for_untagged_messages() {
        // A single-campaign lease/heartbeat must serialize exactly as the
        // v2 protocol did — no stray `campaign` key for v2 peers to trip
        // on (their parser ignores unknown keys, but byte-identical frames
        // make the compatibility obvious).
        let lease = Msg::Lease {
            lease: 7,
            campaign: 0,
            indices: vec![1, 2],
        };
        assert_eq!(
            lease.to_json(),
            "{\"t\":\"lease\",\"lease\":7,\"indices\":[1,2]}"
        );
        let hb = Msg::Heartbeat {
            lease: 9,
            campaign: 0,
        };
        assert_eq!(hb.to_json(), "{\"t\":\"heartbeat\",\"lease\":9}");
        // And a v2-style welcome (no proto key) still parses, defaulting
        // to proto 2.
        let welcome = "{\"t\":\"welcome\",\"spec\":null,\"session\":4}";
        match Msg::from_json(welcome).unwrap() {
            Msg::Welcome { proto, session, .. } => {
                assert_eq!(proto, 2);
                assert_eq!(session, 4);
            }
            other => panic!("expected welcome, got {other:?}"),
        }
    }

    fn rich_results() -> Vec<(usize, InjectionResult)> {
        let fault = |s, bit, cycle| Fault {
            site: FaultSite { structure: s, bit },
            cycle,
        };
        vec![
            (
                0,
                InjectionResult {
                    fault: fault(Structure::RegFile, 1 << 40, 12345),
                    outcome: RunOutcome::Completed,
                    deviation: None,
                    output_matches: Some(true),
                    cycles: 100_000,
                    post_inject_cycles: 87_655,
                    abort_message: None,
                },
            ),
            (
                17,
                InjectionResult {
                    fault: fault(Structure::Rob, 3, 7),
                    outcome: RunOutcome::Trap(TrapKind::Memory(MemFault::Misaligned(0xdead_beef))),
                    deviation: Some(Deviation {
                        index: 42,
                        golden: CommitRecord {
                            cycle: 99,
                            pc: 0x100,
                            raw: 0xdead_beef,
                            ea: 0,
                            val: 7,
                        },
                        faulty: CommitRecord {
                            cycle: 99,
                            pc: 0x104,
                            raw: 0xfeed_face,
                            ea: 4,
                            val: 8,
                        },
                    }),
                    output_matches: Some(false),
                    cycles: 500,
                    post_inject_cycles: 493,
                    abort_message: None,
                },
            ),
            (
                3,
                InjectionResult {
                    fault: fault(Structure::Dtlb, 0, 1),
                    outcome: RunOutcome::IntegrityViolation(Structure::Sq),
                    deviation: None,
                    output_matches: None,
                    cycles: 2,
                    post_inject_cycles: 1,
                    abort_message: Some("sq häd an ünusual day".into()),
                },
            ),
            (
                4,
                InjectionResult {
                    fault: fault(Structure::L2Data, 9, 2),
                    outcome: RunOutcome::SimAbort,
                    deviation: None,
                    output_matches: None,
                    cycles: 0,
                    post_inject_cycles: 0,
                    abort_message: Some("panicked".into()),
                },
            ),
        ]
    }

    fn rich_telemetry() -> MetricsSnapshot {
        let mut t = MetricsSnapshot::empty();
        t.planned = 4;
        t.completed = 4;
        t.retries = 1;
        t.outcomes[0].1 = 1;
        t.outcomes[1].1 = 1;
        t.outcomes[2].1 = 1;
        t.outcomes[7].1 = 1;
        t.structures[6].1 = 2;
        t.structures[7].1 = 1;
        t.structures[11].1 = 1;
        t.post_inject_cycles.counts[0] = 1;
        t.post_inject_cycles.counts[1] = 1;
        t.post_inject_cycles.counts[9] = 1;
        t.post_inject_cycles.counts[17] = 1;
        t
    }

    #[test]
    fn binary_hot_messages_round_trip() {
        let msgs = [
            Msg::Lease {
                lease: 300,
                campaign: 7,
                indices: vec![0, 1, 127, 128, 999_999],
            },
            Msg::Heartbeat {
                lease: u64::MAX,
                campaign: 0,
            },
            Msg::BatchDone {
                lease: 12,
                campaign: 3,
                results: rich_results(),
                telemetry: rich_telemetry(),
            },
        ];
        for msg in msgs {
            let payload = msg.encode(3);
            assert_ne!(payload[0], b'{', "v3 hot messages must be binary");
            let back = Msg::decode(&payload).unwrap();
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
            // The same message on a v2 link stays JSON and still round-trips.
            let json = msg.encode(2);
            assert_eq!(json[0], b'{');
            let back = Msg::decode(&json).unwrap();
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn binary_batch_done_is_smaller_than_json() {
        let msg = Msg::BatchDone {
            lease: 12,
            campaign: 3,
            results: rich_results(),
            telemetry: rich_telemetry(),
        };
        let bin = msg.encode(3).len();
        let json = msg.encode(2).len();
        assert!(
            bin * 4 < json,
            "binary batch_done ({bin}B) should be at least 4x smaller than JSON ({json}B)"
        );
    }

    #[test]
    fn binary_decode_rejects_corruption_shapes() {
        let msg = Msg::Heartbeat {
            lease: 5,
            campaign: 1,
        };
        let mut payload = msg.encode(3);
        // Trailing garbage is an error, not silently ignored.
        payload.push(0);
        assert!(Msg::decode(&payload).is_err());
        // Truncation is an error.
        let payload = msg.encode(3);
        assert!(Msg::decode(&payload[..payload.len() - 1]).is_err());
        // Unknown dialect bytes are refused.
        assert!(Msg::decode(&[0x42, 0, 0]).is_err());
        assert!(Msg::decode(&[]).is_err());
        // Unknown outcome codes inside a batch are refused.
        let mut bad = vec![BIN_BATCH_DONE];
        put_varint(&mut bad, 1); // lease
        put_varint(&mut bad, 0); // campaign
        put_varint(&mut bad, 1); // one result
        put_varint(&mut bad, 0); // idx
        bad.push(0); // structure
        put_varint(&mut bad, 0); // bit
        put_varint(&mut bad, 0); // cycle
        bad.push(0xEE); // bogus outcome code
        assert!(Msg::decode(&bad).is_err());
    }

    #[test]
    fn wire_stats_tally_per_kind() {
        let stats = WireStats::new();
        let hb = Msg::Heartbeat {
            lease: 1,
            campaign: 0,
        };
        let payload = hb.encode(3);
        stats.record(hb.kind(), payload.len());
        stats.record(hb.kind(), payload.len());
        stats.record(MsgKind::BatchDone, 100);
        let (f, b) = stats.of(MsgKind::Heartbeat);
        assert_eq!(f, 2);
        assert_eq!(b, 2 * (payload.len() + FRAME_OVERHEAD) as u64);
        assert_eq!(
            stats.of(MsgKind::BatchDone),
            (1, 100 + FRAME_OVERHEAD as u64)
        );
        assert_eq!(stats.total().0, 3);
        let s = stats.summary();
        assert!(s.contains("heartbeat 2x"));
        assert!(s.contains("batch_done 1x"));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut fb = FrameBuffer::new();
        // Feed the bytes one at a time: every intermediate poll must report
        // "incomplete" without corrupting the stream position.
        let mut got = Vec::new();
        for b in &wire {
            if let Some(f) = fb.poll(&mut &[*b][..]).unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
        assert!(matches!(fb.poll(&mut &[][..]), Err(FrameError::Closed)));
    }

    #[test]
    fn frame_buffer_sheds_oversized_allocations() {
        // One ~1 MiB frame must not pin a ~1 MiB buffer for the rest of
        // the connection's life.
        let big = vec![b'x'; 1 << 20];
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        write_frame(&mut wire, b"small").unwrap();
        let mut fb = FrameBuffer::new();
        let mut src = &wire[..];
        let first = loop {
            if let Some(f) = fb.poll(&mut src).unwrap() {
                break f;
            }
        };
        assert_eq!(first.len(), big.len());
        assert!(
            fb.capacity() <= FRAME_BUF_RETAIN,
            "buffer retained {} bytes after draining an oversized frame",
            fb.capacity()
        );
        // The stream keeps working after the shrink.
        let second = loop {
            if let Some(f) = fb.poll(&mut src).unwrap() {
                break f;
            }
        };
        assert_eq!(second, b"small");
    }

    #[test]
    fn frame_buffer_rejects_oversized_prefix_and_mid_frame_close() {
        let mut fb = FrameBuffer::new();
        let mut wire = u32::MAX.to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        assert!(matches!(
            fb.poll(&mut &wire[..]),
            Err(FrameError::TooLarge(_))
        ));
        // A peer vanishing mid-frame is an I/O error, not a clean close.
        let mut fb = FrameBuffer::new();
        let torn = 10u32.to_be_bytes();
        assert!(fb.poll(&mut &torn[..]).unwrap().is_none());
        assert!(matches!(fb.poll(&mut &[][..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn corrupted_payload_fails_the_crc_check() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"pristine").unwrap();
        // Flip one payload bit: both the blocking reader and the
        // incremental buffer must reject the frame.
        wire[6] ^= 0x10;
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Crc { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
        let mut fb = FrameBuffer::new();
        assert!(matches!(
            fb.poll(&mut &wire[..]),
            Err(FrameError::Crc { .. })
        ));
        // A flipped trailer bit is equally fatal.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"pristine").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::Crc { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_garbage_are_rejected() {
        assert!(Msg::from_json("{\"t\":\"launch_missiles\"}").is_err());
        assert!(Msg::from_json("not json").is_err());
        assert!(Msg::from_json("{\"no_tag\":1}").is_err());
    }
}
