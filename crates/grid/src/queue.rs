//! The durable campaign submission queue.
//!
//! Submissions must survive the service process: a tenant that got a 201
//! back from `POST /campaigns` owns a promise, so the queue is a
//! journal-shaped log on disk, sealed line-by-line with the exact CRC32
//! format the campaign journals use ([`avgi_faultsim::journal::seal`]) —
//! one integrity story for every durable artifact in the system.
//!
//! The file is: one header line (`{"kind":"avgi-grid-queue","version":1}`),
//! then an append-only op stream. `submit` records carry the campaign id
//! and its full [`SubmitSpec`]; `done` records retire an id once its
//! campaign's merged result is finalized. Replaying the ops rebuilds the
//! pending set (submitted minus done, in submission order) and the id
//! high-water mark, so a restarted service resumes every in-flight
//! campaign under its original id — which is what lets the per-campaign
//! result journals (keyed by id) resume bit-identically.
//!
//! Durability follows the campaign journal's rules: the header is created
//! atomically (temp file + `fsync` + rename, no crash window can leave a
//! headerless file), every op append is flushed and fsynced (submissions
//! are rare — a disk round-trip per tenant request is the right trade),
//! and replay truncates at the first torn or corrupt line rather than
//! trusting anything after it.

use crate::spec::SubmitSpec;
use avgi_faultsim::journal::{seal, unseal};
use avgi_faultsim::json::{parse, Json};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Queue format version; bumped on any incompatible record change.
pub const QUEUE_VERSION: u64 = 1;

const HEADER: &str = "{\"kind\":\"avgi-grid-queue\",\"version\":1}";

/// One queued submission.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedCampaign {
    /// The campaign id the service assigned at submit time (stable across
    /// restarts; keys the per-campaign result journal).
    pub id: u64,
    /// What the tenant asked for.
    pub spec: SubmitSpec,
}

/// The journal-backed submission queue (see the module docs).
#[derive(Debug)]
pub struct SubmissionQueue {
    path: PathBuf,
    file: File,
    pending: Vec<QueuedCampaign>,
    next_id: u64,
}

impl SubmissionQueue {
    /// Opens (or atomically creates) the queue at `path` and replays it.
    ///
    /// A corrupt or torn tail is truncated — the ops before it are intact
    /// by CRC, and everything after a torn line is unreachable anyway. A
    /// file whose header is wrong (different kind/version, or a foreign
    /// file) is an error, never silently rewritten.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if !path.exists() {
            // Atomic create: no crash window may leave a headerless queue.
            let tmp = path.with_extension("tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(seal(HEADER).as_bytes())?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, path)?;
        }
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);

        let mut pending: Vec<QueuedCampaign> = Vec::new();
        let mut next_id: u64 = 1;
        let mut good_bytes = 0usize;
        let mut first = true;
        for line in text.split_inclusive('\n') {
            let complete = line.ends_with('\n');
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() && complete {
                good_bytes += line.len();
                continue;
            }
            let json = match (complete, unseal(trimmed)) {
                (true, Ok(j)) => j,
                // Torn tail or corrupt line: stop replaying here.
                _ => break,
            };
            let v = match parse(json) {
                Ok(v) => v,
                Err(_) => break,
            };
            if first {
                let kind = v.get("kind").and_then(Json::as_str);
                let version = v.get("version").and_then(Json::as_u64);
                if kind != Some("avgi-grid-queue") || version != Some(QUEUE_VERSION) {
                    return Err(bad(format!(
                        "not an avgi-grid-queue v{QUEUE_VERSION} file: {}",
                        path.display()
                    )));
                }
                first = false;
                good_bytes += line.len();
                continue;
            }
            match v.get("op").and_then(Json::as_str) {
                Some("submit") => {
                    let id = v
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("submit op without id".into()))?;
                    let spec = SubmitSpec::from_json_value(
                        v.get("spec")
                            .ok_or_else(|| bad("submit op without spec".into()))?,
                    )
                    .map_err(bad)?;
                    next_id = next_id.max(id + 1);
                    pending.push(QueuedCampaign { id, spec });
                }
                Some("done") => {
                    let id = v
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("done op without id".into()))?;
                    next_id = next_id.max(id + 1);
                    pending.retain(|q| q.id != id);
                }
                // An op from a future minor revision: ignore it (the CRC
                // says it is intact; we just do not understand it).
                _ => {}
            }
            good_bytes += line.len();
        }
        if first {
            return Err(bad(format!("queue has no header: {}", path.display())));
        }
        if good_bytes < text.len() {
            // Drop the corrupt/torn tail so appends extend a clean log.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_bytes as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(SubmissionQueue {
            path: path.to_path_buf(),
            file,
            pending,
            next_id,
        })
    }

    /// The queue's backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Submissions not yet retired, in submission order.
    pub fn pending(&self) -> &[QueuedCampaign] {
        &self.pending
    }

    /// The id the next submission will receive.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    fn append(&mut self, json: &str) -> std::io::Result<()> {
        self.file.write_all(seal(json).as_bytes())?;
        self.file.flush()?;
        // Submissions and retirements are tenant-visible promises; fsync
        // each one (they are rare — nowhere near the lease hot path).
        self.file.sync_data()
    }

    /// Durably enqueues a submission and returns its campaign id. The id
    /// is on disk before this returns — a crash after the caller sees it
    /// cannot lose the campaign.
    pub fn submit(&mut self, spec: SubmitSpec) -> std::io::Result<u64> {
        let id = self.next_id;
        self.append(&format!(
            "{{\"op\":\"submit\",\"id\":{id},\"spec\":{}}}",
            spec.to_json()
        ))?;
        self.next_id += 1;
        self.pending.push(QueuedCampaign { id, spec });
        Ok(id)
    }

    /// Durably retires a campaign (its merged result is finalized).
    pub fn complete(&mut self, id: u64) -> std::io::Result<()> {
        self.append(&format!("{{\"op\":\"done\",\"id\":{id}}}"))?;
        self.pending.retain(|q| q.id != id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_muarch::fault::Structure;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "avgi-queue-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn spec(seed: u64) -> SubmitSpec {
        SubmitSpec::new("bitcount", Structure::RegFile, 16, seed)
    }

    #[test]
    fn submissions_survive_reopen_and_retire() {
        let path = tmp_path("roundtrip");
        let (a, b) = {
            let mut q = SubmissionQueue::open(&path).unwrap();
            assert!(q.pending().is_empty());
            let a = q.submit(spec(1)).unwrap();
            let b = q.submit(spec(2)).unwrap();
            assert_ne!(a, b);
            q.complete(a).unwrap();
            (a, b)
        };
        // Reopen: only the unretired submission remains, ids are stable,
        // and the id counter never reuses a retired id.
        let mut q = SubmissionQueue::open(&path).unwrap();
        assert_eq!(q.pending().len(), 1);
        assert_eq!(q.pending()[0].id, b);
        assert_eq!(q.pending()[0].spec, spec(2));
        let c = q.submit(spec(3)).unwrap();
        assert!(c > b && c > a);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp_path("torn");
        {
            let mut q = SubmissionQueue::open(&path).unwrap();
            q.submit(spec(1)).unwrap();
            q.submit(spec(2)).unwrap();
        }
        // Tear the last line mid-record (classic crash shape).
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 10;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep as u64).unwrap();
        drop(f);
        let mut q = SubmissionQueue::open(&path).unwrap();
        assert_eq!(q.pending().len(), 1, "torn submission is gone");
        assert_eq!(q.pending()[0].spec, spec(1));
        // The log extends cleanly after truncation.
        q.submit(spec(9)).unwrap();
        let q = SubmissionQueue::open(&path).unwrap();
        assert_eq!(q.pending().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_stops_replay_at_the_flip() {
        let path = tmp_path("corrupt");
        {
            let mut q = SubmissionQueue::open(&path).unwrap();
            q.submit(spec(1)).unwrap();
            q.submit(spec(2)).unwrap();
            q.submit(spec(3)).unwrap();
        }
        // Flip a bit inside the second submission's JSON.
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second = text
            .match_indices("\"op\":\"submit\"")
            .nth(1)
            .map(|(i, _)| i)
            .unwrap();
        bytes[second + 20] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let q = SubmissionQueue::open(&path).unwrap();
        assert_eq!(
            q.pending().len(),
            1,
            "everything from the corrupt line on is dropped"
        );
        assert_eq!(q.pending()[0].spec, spec(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_refused() {
        let path = tmp_path("foreign");
        std::fs::write(&path, seal("{\"kind\":\"something-else\",\"version\":1}")).unwrap();
        assert!(SubmissionQueue::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
