//! The multi-campaign control plane: campaigns as a service.
//!
//! The classic [`Coordinator`](crate::Coordinator) is one campaign, one
//! process, one thread per connection. [`Service`] is the grown-up
//! sibling: a single-threaded, poll-based event loop that multiplexes
//! *many* tenant campaigns over one shared worker fleet, with
//!
//! * **fair-share scheduling** ([`FairScheduler`]) — priority tiers,
//!   per-campaign quotas, smooth weighted round-robin within a tier;
//! * **a durable submission queue** ([`SubmissionQueue`]) — every
//!   accepted submission survives a service restart, and per-campaign
//!   result journals (`campaign-<id>.jsonl`) resume bit-identically;
//! * **protocol v3** — binary hot messages with per-dialect wire tallies
//!   ([`WireStats`]), while v2 workers negotiate down to JSON and get
//!   pinned to a single campaign for their session;
//! * **an HTTP surface** ([`crate::http`]) — `POST /campaigns`,
//!   `GET /campaigns/<id>`, `GET /fleet`.
//!
//! Every connection — worker fabric and HTTP alike — runs nonblocking.
//! The loop accepts, reads whatever bytes arrived, advances per-connection
//! incremental parsers ([`FrameBuffer`], [`HttpBuffer`]), appends response
//! bytes to per-connection outbound buffers, and flushes those buffers as
//! sockets drain. No thread per connection, no locks: all campaign state
//! lives on the loop thread.
//!
//! The per-campaign invariants are exactly the single-campaign fabric's,
//! held *per tenant* under interleaving: a campaign's merged results and
//! telemetry deterministic counters are bit-identical to a single-process
//! run of the same spec, leases are first-responder-wins, and expiry
//! requeues honor the owning campaign's priority. Cross-tenant mixing is
//! structurally prevented — every lease knows its campaign, and merged
//! telemetry snapshots carry a campaign tag that the merge asserts on.

use crate::coord::GridError;
use crate::http::{response, HttpBuffer, HttpPoll, HttpRequest};
use crate::proto::{
    frame_bytes, negotiate, FrameBuffer, FrameError, Msg, MsgKind, WireStats, MIN_PROTO_VERSION,
};
use crate::queue::SubmissionQueue;
use crate::sched::FairScheduler;
use crate::spec::{CampaignSpec, SubmitSpec};
use crate::transport::{TcpTransport, Transport};
use avgi_faultsim::campaign::golden_for;
use avgi_faultsim::journal::{config_hash, record_line, CampaignKey, DurabilityPolicy, Journal};
use avgi_faultsim::sampling::sample_faults;
use avgi_faultsim::telemetry::{CampaignObserver, MetricsCollector, MetricsSnapshot};
use avgi_faultsim::{CampaignConfig, InjectionResult};
use avgi_muarch::fault::Fault;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Control-plane configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker-fabric address to listen on (`"127.0.0.1:0"` picks a port).
    pub bind: String,
    /// HTTP surface address (`None` = fabric only).
    pub http_bind: Option<String>,
    /// The durable submission queue file.
    pub queue: PathBuf,
    /// Directory for per-campaign result journals (`campaign-<id>.jsonl`);
    /// `None` = campaigns are not restart-resumable.
    pub journal_dir: Option<PathBuf>,
    /// Faults per lease.
    pub batch: usize,
    /// How long a lease stays valid without a heartbeat or report.
    pub lease_timeout: Duration,
    /// How aggressively journal appends are pushed to stable storage.
    pub durability: DurabilityPolicy,
    /// Overall wall-clock failsafe (`None` = serve forever).
    pub deadline: Option<Duration>,
    /// Exit once this many campaigns have completed (`None` = keep
    /// serving). The CI smoke and tests use this for clean shutdown.
    pub exit_after: Option<u64>,
    /// Cooperative shutdown: when this flag flips true the service drains
    /// the fleet and returns (the embedding test or process owns the flag).
    pub stop: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Live worker-connection cap; beyond it new peers are shed with a
    /// `Reject` frame.
    pub max_conns: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bind: "127.0.0.1:0".into(),
            http_bind: None,
            queue: PathBuf::from("avgi-grid-queue.jsonl"),
            journal_dir: None,
            batch: 16,
            lease_timeout: Duration::from_secs(30),
            durability: DurabilityPolicy::Flush,
            deadline: None,
            exit_after: None,
            stop: None,
            max_conns: 64,
        }
    }
}

/// Service-level statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Campaigns accepted (HTTP submissions; excludes queue resumes).
    pub campaigns_submitted: u64,
    /// Campaigns restored from the submission queue at startup.
    pub campaigns_resumed: u64,
    /// Campaigns finished (merged result finalized).
    pub campaigns_completed: u64,
    /// Workers that completed a fresh handshake.
    pub workers_seen: u64,
    /// Reconnections that re-attached to an existing session token.
    pub sessions_reattached: u64,
    /// Leases granted (including re-grants of requeued indices).
    pub leases_granted: u64,
    /// Leases whose indices were requeued (expiry or clean disconnect).
    pub leases_reassigned: u64,
    /// Batch reports discarded (stale lease or wrong session).
    pub batches_rejected: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Frames rejected by the CRC check.
    pub corrupt_frames: u64,
    /// Worker connections shed at the connection cap.
    pub connections_shed: u64,
    /// Results restored from per-campaign journals instead of executed.
    pub results_resumed: u64,
    /// HTTP requests served (routed; excludes malformed ones).
    pub http_requests: u64,
}

/// One campaign's public status (also what `GET /campaigns/<id>` reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: u64,
    /// Whether the merged result is finalized.
    pub done: bool,
    /// Planned injections.
    pub faults: usize,
    /// Injections with an accepted result.
    pub completed: usize,
}

/// One live campaign.
struct Run {
    submit: SubmitSpec,
    spec: CampaignSpec,
    faults: Vec<Fault>,
    queue: VecDeque<usize>,
    results: Vec<Option<InjectionResult>>,
    remaining: usize,
    telemetry: MetricsSnapshot,
    journal: Option<Journal>,
    done: bool,
    /// Final report JSON, cached at finalization.
    report: Option<String>,
}

impl Run {
    fn completed(&self) -> usize {
        self.results.len() - self.remaining
    }
}

struct LeaseRec {
    campaign: u64,
    session: u64,
    indices: Vec<usize>,
    deadline: Instant,
}

struct Session {
    /// The connection currently speaking for this token.
    conn: u64,
    /// The campaign a v2 session is pinned to (`None` for v3 sessions).
    pinned: Option<u64>,
    /// Campaigns whose spec this session has been sent (v3 only).
    specs_sent: HashSet<u64>,
}

struct WorkerConn {
    transport: Box<dyn Transport>,
    fb: FrameBuffer,
    /// Outbound bytes not yet accepted by the socket.
    out: Vec<u8>,
    session: Option<u64>,
    proto: u64,
    /// Flush what is queued, then drop the connection.
    close_after_flush: bool,
}

struct HttpConn {
    stream: TcpStream,
    hb: HttpBuffer,
    out: Vec<u8>,
    /// A response is queued; close once it has flushed.
    responded: bool,
}

/// The campaign-as-a-service control plane (see the module docs).
pub struct Service {
    cfg: ServiceConfig,
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    queue: SubmissionQueue,
    sched: FairScheduler,
    campaigns: BTreeMap<u64, Run>,
    leases: HashMap<u64, LeaseRec>,
    sessions: HashMap<u64, Session>,
    conns: HashMap<u64, WorkerConn>,
    https: HashMap<u64, HttpConn>,
    next_conn: u64,
    next_lease: u64,
    next_session: u64,
    draining: bool,
    stats: ServiceStats,
    wire_v2: Arc<WireStats>,
    wire_v3: Arc<WireStats>,
}

impl Service {
    /// Opens (and replays) the submission queue, reactivates every pending
    /// campaign — resuming its journal if one exists — and binds the
    /// listeners. Nothing is served until [`run`](Service::run).
    pub fn bind(cfg: ServiceConfig) -> Result<Service, GridError> {
        let queue = SubmissionQueue::open(&cfg.queue)?;
        let listener = TcpListener::bind(cfg.bind.as_str())?;
        listener.set_nonblocking(true)?;
        let http_listener = match &cfg.http_bind {
            None => None,
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
        };
        let mut svc = Service {
            cfg,
            listener,
            http_listener,
            queue,
            sched: FairScheduler::new(),
            campaigns: BTreeMap::new(),
            leases: HashMap::new(),
            sessions: HashMap::new(),
            conns: HashMap::new(),
            https: HashMap::new(),
            next_conn: 1,
            next_lease: 1,
            next_session: 1,
            draining: false,
            stats: ServiceStats::default(),
            wire_v2: Arc::new(WireStats::new()),
            wire_v3: Arc::new(WireStats::new()),
        };
        // Restart resume: every unretired submission comes back under its
        // original id, so its journal (keyed by id) resumes bit-identically.
        let pending: Vec<_> = svc
            .queue
            .pending()
            .iter()
            .map(|q| (q.id, q.spec.clone()))
            .collect();
        for (id, spec) in pending {
            svc.activate(id, spec)?;
            svc.stats.campaigns_resumed += 1;
        }
        Ok(svc)
    }

    /// The worker-fabric listening address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The HTTP listening address (if an HTTP surface was configured).
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Per-dialect wire tallies (v2 = JSON links, v3 = binary links).
    /// Clone the handles before [`run`](Service::run) to inspect after.
    pub fn wire_stats(&self) -> (Arc<WireStats>, Arc<WireStats>) {
        (self.wire_v2.clone(), self.wire_v3.clone())
    }

    /// Current status of every known campaign, in id order.
    pub fn statuses(&self) -> Vec<CampaignStatus> {
        self.campaigns
            .iter()
            .map(|(&id, r)| CampaignStatus {
                id,
                done: r.done,
                faults: r.results.len(),
                completed: r.completed(),
            })
            .collect()
    }

    /// Serves the control plane until the exit condition
    /// ([`ServiceConfig::exit_after`]) is met, then drains the fleet and
    /// returns the accumulated statistics.
    pub fn run(mut self) -> Result<ServiceStats, GridError> {
        let started = Instant::now();
        loop {
            self.tick()?;
            let exit_count = self
                .cfg
                .exit_after
                .is_some_and(|n| self.stats.campaigns_completed >= n);
            let stop_flag = self
                .cfg
                .stop
                .as_ref()
                .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed));
            if exit_count || stop_flag {
                self.drain_fleet();
                return Ok(self.stats);
            }
            if let Some(deadline) = self.cfg.deadline {
                if started.elapsed() > deadline {
                    return Err(GridError::Protocol(format!(
                        "service deadline ({deadline:?}) exceeded"
                    )));
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// One event-loop iteration: accept, pump every connection, sweep.
    fn tick(&mut self) -> Result<(), GridError> {
        self.accept_workers();
        self.accept_http();
        self.pump_workers();
        self.pump_http();
        self.sweep_leases();
        Ok(())
    }

    // -- campaign lifecycle -------------------------------------------------

    /// Builds and registers campaign `id` from a submission: golden
    /// capture, fault sampling, journal resume, scheduler registration.
    fn activate(&mut self, id: u64, sub: SubmitSpec) -> Result<(), GridError> {
        let workload = avgi_workloads::by_name(&sub.workload)
            .ok_or_else(|| GridError::Spec(format!("unknown workload `{}`", sub.workload)))?;
        let workload_id = avgi_workloads::index_of(workload.name).ok_or_else(|| {
            GridError::Spec(format!("workload {:?} not in registry", workload.name))
        })?;
        let cfg = sub.preset.config();
        let golden = golden_for(&workload, &cfg);
        let mut ccfg = CampaignConfig::new(sub.structure, sub.faults, sub.mode)
            .with_seed(sub.seed)
            .with_burst(sub.burst_width);
        ccfg.checkpoints = sub.checkpoints;
        let faults = sample_faults(sub.structure, &cfg, golden.cycles, sub.faults, sub.seed)
            .map_err(|e| GridError::Spec(format!("fault sampling failed: {e}")))?;
        let spec = CampaignSpec {
            workload: workload.name.to_string(),
            workload_id,
            preset: sub.preset,
            structure: sub.structure,
            faults: sub.faults,
            seed: sub.seed,
            mode: sub.mode,
            burst_width: sub.burst_width,
            checkpoints: sub.checkpoints,
            golden_cycles: golden.cycles,
            config_hash: config_hash(&cfg),
            lease_timeout_ms: u64::try_from(self.cfg.lease_timeout.as_millis()).unwrap_or(u64::MAX),
        };

        let mut results: Vec<Option<InjectionResult>> = vec![None; sub.faults];
        let mut telemetry = MetricsSnapshot::empty();
        let journal = match &self.cfg.journal_dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("campaign-{id}.jsonl"));
                let key = CampaignKey::new(workload.name, &cfg, golden.cycles, &ccfg);
                let (journal, done) = Journal::open_with(&path, &key, self.cfg.durability)?;
                for (&i, r) in &done {
                    if r.fault != faults[i] {
                        return Err(GridError::Spec(format!(
                            "campaign {id} journal fault mismatch at index {i}"
                        )));
                    }
                }
                if !done.is_empty() {
                    // Replay restored results through a collector so the
                    // merged telemetry accounts for them exactly as a
                    // single-process resumed campaign would.
                    let collector = MetricsCollector::new();
                    collector.on_campaign_start(sub.structure, done.len());
                    for r in done.values() {
                        collector.on_resumed(sub.structure, r);
                    }
                    telemetry = collector.snapshot();
                }
                self.stats.results_resumed += done.len() as u64;
                for (i, r) in done {
                    results[i] = Some(r);
                }
                Some(journal)
            }
        };
        let remaining = results.iter().filter(|r| r.is_none()).count();
        let mut pending: Vec<usize> = (0..sub.faults).filter(|&i| results[i].is_none()).collect();
        // Cycle-sorted leases: consecutive indices tend to share a worker
        // checkpoint, like the single-process engine's work order.
        pending.sort_by_key(|&i| faults[i].cycle);
        self.sched.register(id, sub.share(), pending.len());
        self.campaigns.insert(
            id,
            Run {
                submit: sub,
                spec,
                faults,
                queue: pending.into(),
                results,
                remaining,
                telemetry,
                journal,
                done: false,
                report: None,
            },
        );
        if remaining == 0 {
            // Fully journaled already (restart after the last batch).
            self.finalize(id)?;
        }
        Ok(())
    }

    /// Seals a finished campaign: journal sync, report construction, queue
    /// retirement, scheduler deregistration.
    fn finalize(&mut self, id: u64) -> Result<(), GridError> {
        let run = self
            .campaigns
            .get_mut(&id)
            .expect("finalizing known campaign");
        if let Some(journal) = &mut run.journal {
            journal.sync()?;
        }
        run.done = true;
        run.report = Some(build_report(run));
        self.sched.deregister(id);
        self.queue.complete(id)?;
        self.stats.campaigns_completed += 1;
        Ok(())
    }

    /// The campaign a freshly attached v2 session gets pinned to: highest
    /// priority first, then lowest id — deterministic, and aligned with
    /// what the scheduler would serve first anyway.
    fn pick_pin(&self) -> Option<u64> {
        self.campaigns
            .iter()
            .filter(|(_, r)| !r.done)
            .max_by_key(|&(&id, r)| (r.submit.priority, std::cmp::Reverse(id)))
            .map(|(&id, _)| id)
    }

    // -- worker fabric ------------------------------------------------------

    fn wire_for(&self, proto: u64) -> &WireStats {
        if proto >= 3 {
            &self.wire_v3
        } else {
            &self.wire_v2
        }
    }

    /// Encodes `msg` in the connection's dialect and queues it for write.
    fn push(&self, conn: &mut WorkerConn, msg: &Msg) {
        let payload = msg.encode(conn.proto);
        self.wire_for(conn.proto).record(msg.kind(), payload.len());
        match frame_bytes(&payload) {
            Ok(frame) => conn.out.extend_from_slice(&frame),
            // A payload past MAX_FRAME cannot be framed; drop the peer
            // rather than desynchronize it.
            Err(_) => conn.close_after_flush = true,
        }
    }

    fn accept_workers(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let transport: Box<dyn Transport> = match TcpTransport::new(stream) {
                        Ok(t) => Box::new(t),
                        Err(_) => continue,
                    };
                    if transport.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let mut conn = WorkerConn {
                        transport,
                        fb: FrameBuffer::new(),
                        out: Vec::new(),
                        session: None,
                        proto: MIN_PROTO_VERSION,
                        close_after_flush: false,
                    };
                    if self.conns.len() >= self.cfg.max_conns {
                        self.stats.connections_shed += 1;
                        self.push(
                            &mut conn,
                            &Msg::Reject {
                                reason: "service at connection capacity".into(),
                            },
                        );
                        conn.close_after_flush = true;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn pump_workers(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut conn = self.conns.remove(&id).expect("conn id just listed");
            let alive = self.pump_worker_conn(id, &mut conn);
            if alive {
                self.conns.insert(id, conn);
            } else if let Some(session) = conn.session {
                // A vanished connection's leases stay put briefly — the
                // session may reconnect and retransmit — unless the close
                // was clean (handled in `read_worker_frames`).
                let _ = session;
            }
        }
    }

    /// Flushes and reads one worker connection. Returns `false` when the
    /// connection should be dropped.
    fn pump_worker_conn(&mut self, id: u64, conn: &mut WorkerConn) -> bool {
        if !flush_out(&mut *conn.transport, &mut conn.out) {
            self.requeue_session_if_current(conn.session, id);
            return false;
        }
        if conn.close_after_flush {
            if conn.out.is_empty() {
                let _ = conn.transport.shutdown();
                return false;
            }
            return true; // keep flushing; skip reads on a dying connection
        }
        let alive = self.read_worker_frames(id, conn);
        // Push out whatever the handlers queued without waiting a tick.
        if alive && !flush_out(&mut *conn.transport, &mut conn.out) {
            self.requeue_session_if_current(conn.session, id);
            return false;
        }
        alive
    }

    /// Drains every decodable frame from one connection.
    fn read_worker_frames(&mut self, id: u64, conn: &mut WorkerConn) -> bool {
        loop {
            match conn.fb.poll(&mut *conn.transport) {
                Ok(Some(payload)) => {
                    if !self.handle_worker_msg(id, conn, &payload) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(FrameError::Closed) => {
                    // Clean close at a frame boundary: the worker left for
                    // good; hand its leases back immediately.
                    self.requeue_session_if_current(conn.session, id);
                    return false;
                }
                Err(e) => {
                    let corrupt = matches!(e, FrameError::Crc { .. });
                    self.protocol_error(conn, &format!("bad frame: {e}"), corrupt);
                    // Leases deliberately stay: under link corruption the
                    // "violation" is usually the link's fault, and the
                    // worker will re-attach with its session token.
                    return true;
                }
            }
        }
    }

    /// Records a violation and queues a `Reject` before closing.
    fn protocol_error(&mut self, conn: &mut WorkerConn, reason: &str, corrupt: bool) {
        self.stats.protocol_errors += 1;
        if corrupt {
            self.stats.corrupt_frames += 1;
        }
        self.push(
            conn,
            &Msg::Reject {
                reason: reason.to_string(),
            },
        );
        conn.close_after_flush = true;
    }

    /// Handles one decoded frame. Returns `false` to drop the connection
    /// immediately (clean `Done` handoff).
    fn handle_worker_msg(&mut self, id: u64, conn: &mut WorkerConn, payload: &[u8]) -> bool {
        let msg = match Msg::decode(payload) {
            Ok(m) => m,
            Err(e) => {
                self.protocol_error(conn, &format!("bad message: {e}"), false);
                return true;
            }
        };
        self.wire_for(conn.proto).record(msg.kind(), payload.len());
        match msg {
            Msg::Hello { proto, session } => self.handle_hello(id, conn, proto, session),
            Msg::LeaseRequest => self.handle_lease_request(conn),
            Msg::Heartbeat { lease, .. } => {
                if let (Some(session), Some(l)) = (conn.session, self.leases.get_mut(&lease)) {
                    if l.session == session {
                        l.deadline = Instant::now() + self.cfg.lease_timeout;
                    }
                }
                true
            }
            Msg::BatchDone {
                lease,
                results,
                telemetry,
                ..
            } => {
                let Some(session) = conn.session else {
                    self.protocol_error(conn, "batch before hello", false);
                    return true;
                };
                match self.accept_batch(session, lease, results, telemetry) {
                    Ok(()) => {}
                    Err(Some(reason)) => {
                        self.protocol_error(conn, &reason, false);
                    }
                    // Stale lease: silently dropped, worker carries on.
                    Err(None) => {}
                }
                true
            }
            Msg::SpecRequest { campaign } => {
                match self.campaigns.get(&campaign) {
                    Some(run) => {
                        let spec = run.spec.clone();
                        self.push(conn, &Msg::Spec { campaign, spec });
                    }
                    None => self.protocol_error(
                        conn,
                        &format!("spec requested for unknown campaign {campaign}"),
                        false,
                    ),
                }
                true
            }
            Msg::Welcome { .. }
            | Msg::Lease { .. }
            | Msg::Drain
            | Msg::Done
            | Msg::Spec { .. }
            | Msg::Reject { .. } => {
                self.protocol_error(conn, "unexpected message", false);
                true
            }
        }
    }

    fn handle_hello(
        &mut self,
        id: u64,
        conn: &mut WorkerConn,
        peer_proto: u64,
        requested: Option<u64>,
    ) -> bool {
        let Some(proto) = negotiate(peer_proto) else {
            self.protocol_error(
                conn,
                &format!(
                    "protocol version {peer_proto} unsupported (need {}..={})",
                    MIN_PROTO_VERSION,
                    crate::proto::PROTO_VERSION
                ),
                false,
            );
            return true;
        };
        conn.proto = proto;
        // Resolve the session: fresh hellos allocate, returning tokens
        // re-attach (rebinding to this connection). Duplicate hellos from a
        // chaotic link land in the reattach arm and are harmless.
        let token = match requested.or(conn.session) {
            Some(token) => {
                match self.sessions.get_mut(&token) {
                    Some(s) => {
                        s.conn = id;
                        self.stats.sessions_reattached += 1;
                    }
                    None => {
                        // Unknown token: a worker outliving a service
                        // restart. Honor it so retransmissions attribute.
                        self.sessions.insert(
                            token,
                            Session {
                                conn: id,
                                pinned: None,
                                specs_sent: HashSet::new(),
                            },
                        );
                        self.stats.workers_seen += 1;
                    }
                }
                token
            }
            None => {
                while self.sessions.contains_key(&self.next_session) {
                    self.next_session += 1;
                }
                let token = self.next_session;
                self.next_session += 1;
                self.sessions.insert(
                    token,
                    Session {
                        conn: id,
                        pinned: None,
                        specs_sent: HashSet::new(),
                    },
                );
                self.stats.workers_seen += 1;
                token
            }
        };
        conn.session = Some(token);
        // v2 sessions are pinned to one campaign for their whole life; v3
        // sessions are unpinned and get specs per campaign on demand.
        let (campaign, spec) = if proto < 3 {
            let session = self.sessions.get_mut(&token).expect("session just bound");
            let pin = match session.pinned {
                Some(pin) => Some(pin),
                None => {
                    let pin = self.pick_pin();
                    self.sessions
                        .get_mut(&token)
                        .expect("session just bound")
                        .pinned = pin;
                    pin
                }
            };
            match pin {
                Some(pin) => {
                    let spec = self.campaigns[&pin].spec.clone();
                    (pin, Some(spec))
                }
                None => {
                    // Nothing to pin a v2 worker to: send it home.
                    self.push(conn, &Msg::Done);
                    conn.close_after_flush = true;
                    return true;
                }
            }
        } else {
            (0, None)
        };
        self.push(
            conn,
            &Msg::Welcome {
                proto,
                session: token,
                campaign,
                spec,
            },
        );
        true
    }

    fn handle_lease_request(&mut self, conn: &mut WorkerConn) -> bool {
        let Some(token) = conn.session else {
            self.protocol_error(conn, "lease request before hello", false);
            return true;
        };
        let pinned = self.sessions.get(&token).and_then(|s| s.pinned);
        // A pinned session whose campaign finished goes home; an unpinned
        // one goes home only when the whole service is draining.
        if let Some(pin) = pinned {
            if self.campaigns.get(&pin).is_none_or(|r| r.done) {
                self.push(conn, &Msg::Done);
                conn.close_after_flush = true;
                return true;
            }
        } else if self.draining {
            self.push(conn, &Msg::Done);
            conn.close_after_flush = true;
            return true;
        }
        let filter = pinned.map(|pin| move |id: u64| id == pin);
        let picked = match &filter {
            Some(f) => self.sched.pick(Some(f)),
            None => self.sched.pick(None),
        };
        let Some(campaign) = picked else {
            self.push(conn, &Msg::Drain);
            return true;
        };
        // First lease for a campaign on a v3 session: ship the spec ahead
        // of the lease (the worker can also SpecRequest after a cache
        // loss, so this is an optimization AND a correctness default).
        if conn.proto >= 3 {
            let session = self
                .sessions
                .get_mut(&token)
                .expect("session resolved above");
            if session.specs_sent.insert(campaign) {
                let spec = self.campaigns[&campaign].spec.clone();
                self.push(conn, &Msg::Spec { campaign, spec });
            }
        }
        let run = self
            .campaigns
            .get_mut(&campaign)
            .expect("scheduler picked a live campaign");
        let take = self.cfg.batch.max(1).min(run.queue.len());
        let indices: Vec<usize> = run.queue.drain(..take).collect();
        self.sched.leased(campaign, indices.len());
        let lease = self.next_lease;
        self.next_lease += 1;
        self.leases.insert(
            lease,
            LeaseRec {
                campaign,
                session: token,
                indices: indices.clone(),
                deadline: Instant::now() + self.cfg.lease_timeout,
            },
        );
        self.stats.leases_granted += 1;
        self.push(
            conn,
            &Msg::Lease {
                lease,
                campaign,
                indices,
            },
        );
        true
    }

    /// Accepts or rejects one batch report. `Err(None)` is a silent
    /// rejection (stale lease — dropped wholly, nothing double-counted);
    /// `Err(Some(reason))` is a protocol violation.
    fn accept_batch(
        &mut self,
        session: u64,
        lease: u64,
        results: Vec<(usize, InjectionResult)>,
        telemetry: MetricsSnapshot,
    ) -> Result<(), Option<String>> {
        let owned = self
            .leases
            .get(&lease)
            .is_some_and(|l| l.session == session);
        if !owned {
            self.stats.batches_rejected += 1;
            return Err(None);
        }
        let rec = &self.leases[&lease];
        let campaign = rec.campaign;
        if results.len() != rec.indices.len()
            || results
                .iter()
                .zip(&rec.indices)
                .any(|((i, _), &want)| *i != want)
        {
            return Err(Some("batch does not match its lease".into()));
        }
        let run = self
            .campaigns
            .get_mut(&campaign)
            .expect("lease names a live campaign");
        if let Some((i, r)) = results
            .iter()
            .find(|(i, r)| run.faults.get(*i) != Some(&r.fault))
        {
            return Err(Some(format!(
                "fault mismatch at index {i}: reported {:?}",
                r.fault
            )));
        }
        let rec = self.leases.remove(&lease).expect("ownership checked above");
        self.sched.completed(campaign, rec.indices.len());
        let mut fatal = None;
        for (i, r) in results {
            if run.results[i].is_none() {
                if let Some(journal) = &mut run.journal {
                    if let Err(e) = journal.append(i, &r) {
                        fatal = Some(format!("campaign {campaign} journal append failed: {e}"));
                    }
                }
                run.results[i] = Some(r);
                run.remaining -= 1;
            }
        }
        // Tag the delta with its tenant before merging: the merge asserts
        // agreement, so cross-campaign mixing is structurally impossible.
        run.telemetry.merge(&telemetry.with_campaign(campaign));
        if let Some(msg) = fatal {
            return Err(Some(msg));
        }
        if run.remaining == 0 {
            if let Err(e) = self.finalize(campaign) {
                return Err(Some(format!("finalizing campaign {campaign} failed: {e}")));
            }
        }
        Ok(())
    }

    /// Returns a session's leased indices to their campaigns' queue fronts
    /// — but only if `conn` is still the connection speaking for it.
    fn requeue_session_if_current(&mut self, session: Option<u64>, conn: u64) {
        let Some(session) = session else { return };
        if self.sessions.get(&session).map(|s| s.conn) != Some(conn) {
            return;
        }
        let ids: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.session == session)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            self.requeue_lease(id);
        }
    }

    fn requeue_lease(&mut self, lease: u64) {
        let Some(rec) = self.leases.remove(&lease) else {
            return;
        };
        if let Some(run) = self.campaigns.get_mut(&rec.campaign) {
            for &i in rec.indices.iter().rev() {
                run.queue.push_front(i);
            }
        }
        if self.sched.contains(rec.campaign) {
            self.sched.requeued(rec.campaign, rec.indices.len());
        }
        self.stats.leases_reassigned += 1;
    }

    /// Requeues every lease whose deadline passed without a heartbeat.
    fn sweep_leases(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.requeue_lease(id);
        }
    }

    /// Tells every connected worker to go home and keeps answering until
    /// they hang up (or a short grace period ends).
    fn drain_fleet(&mut self) {
        self.draining = true;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut conn = self.conns.remove(&id).expect("conn id just listed");
            self.push(&mut conn, &Msg::Done);
            self.conns.insert(id, conn);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while !self.conns.is_empty() && Instant::now() < deadline {
            self.pump_workers();
            self.accept_http();
            self.pump_http();
            std::thread::sleep(Duration::from_millis(2));
        }
        // Linger on the HTTP surface briefly: status clients poll
        // per-request, so give in-flight pollers one more window to fetch
        // the final reports before the listener goes away.
        let linger = Instant::now() + Duration::from_millis(1_000);
        while Instant::now() < linger {
            self.accept_http();
            self.pump_http();
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // -- HTTP surface -------------------------------------------------------

    fn accept_http(&mut self) {
        let Some(listener) = &self.http_listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.https.insert(
                        id,
                        HttpConn {
                            stream,
                            hb: HttpBuffer::new(),
                            out: Vec::new(),
                            responded: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn pump_http(&mut self) {
        let ids: Vec<u64> = self.https.keys().copied().collect();
        for id in ids {
            let mut conn = self.https.remove(&id).expect("http conn id just listed");
            let alive = self.pump_http_conn(&mut conn);
            if alive {
                self.https.insert(id, conn);
            }
        }
    }

    fn pump_http_conn(&mut self, conn: &mut HttpConn) -> bool {
        if !conn.responded {
            match conn.hb.poll(&mut conn.stream) {
                Ok(HttpPoll::Pending) => {}
                Ok(HttpPoll::Closed) | Err(_) => return false,
                Ok(HttpPoll::Bad(resp)) => {
                    conn.out = resp;
                    conn.responded = true;
                }
                Ok(HttpPoll::Request(req)) => {
                    self.stats.http_requests += 1;
                    conn.out = self.handle_http(req);
                    conn.responded = true;
                }
            }
        }
        if !flush_out(&mut conn.stream, &mut conn.out) {
            return false;
        }
        if conn.responded && conn.out.is_empty() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            return false;
        }
        true
    }

    fn handle_http(&mut self, req: HttpRequest) -> Vec<u8> {
        match req {
            HttpRequest::Submit(spec) => {
                let id = match self.queue.submit(spec.clone()) {
                    Ok(id) => id,
                    Err(e) => {
                        return response(
                            500,
                            &format!(
                                "{{\"error\":\"queue append failed: {}\"}}",
                                avgi_faultsim::json::escape(&e.to_string())
                            ),
                        )
                    }
                };
                if let Err(e) = self.activate(id, spec) {
                    // The submission journaled but cannot run; retire it so
                    // a restart does not resurrect a poison campaign.
                    let _ = self.queue.complete(id);
                    self.campaigns.remove(&id);
                    self.sched.deregister(id);
                    return response(
                        400,
                        &format!(
                            "{{\"error\":\"{}\"}}",
                            avgi_faultsim::json::escape(&e.to_string())
                        ),
                    );
                }
                self.stats.campaigns_submitted += 1;
                response(201, &format!("{{\"id\":{id}}}"))
            }
            HttpRequest::Status(id) => match self.campaigns.get(&id) {
                None => response(404, &format!("{{\"error\":\"no campaign {id}\"}}")),
                Some(run) => {
                    let mut body = format!(
                        "{{\"id\":{id},\"done\":{},\"workload\":\"{}\",\"structure\":\"{}\",\"faults\":{},\"completed\":{}",
                        run.done,
                        avgi_faultsim::json::escape(&run.spec.workload),
                        run.spec.structure.ident(),
                        run.results.len(),
                        run.completed(),
                    );
                    if let Some(report) = &run.report {
                        body.push_str(",\"report\":");
                        body.push_str(report);
                    }
                    body.push('}');
                    response(200, &body)
                }
            },
            HttpRequest::Fleet => {
                let campaigns = self
                    .statuses()
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"id\":{},\"done\":{},\"faults\":{},\"completed\":{}}}",
                            s.id, s.done, s.faults, s.completed
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let body = format!(
                    "{{\"workers\":{},\"sessions\":{},\"campaigns\":[{campaigns}],\"wire\":{{\"v2\":{},\"v3\":{}}}}}",
                    self.conns.len(),
                    self.sessions.len(),
                    wire_json(&self.wire_v2),
                    wire_json(&self.wire_v3),
                );
                response(200, &body)
            }
        }
    }
}

/// Serializes per-kind wire tallies for the `/fleet` endpoint.
fn wire_json(wire: &WireStats) -> String {
    let mut parts = Vec::new();
    for kind in [MsgKind::Lease, MsgKind::BatchDone, MsgKind::Heartbeat] {
        let (frames, bytes) = wire.of(kind);
        parts.push(format!(
            "\"{}\":{{\"frames\":{frames},\"bytes\":{bytes}}}",
            kind.name()
        ));
    }
    let (frames, bytes) = wire.total();
    parts.push(format!(
        "\"total\":{{\"frames\":{frames},\"bytes\":{bytes}}}"
    ));
    format!("{{{}}}", parts.join(","))
}

/// The finished campaign's report: every result in index order (the exact
/// journal record shape) plus the merged telemetry's deterministic
/// counters. Byte-comparable against a single-process rebuild.
fn build_report(run: &Run) -> String {
    let records = run
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            record_line(i, r.as_ref().expect("finalized campaign is complete"))
                .trim_end()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"workload\":\"{}\",\"structure\":\"{}\",\"golden_cycles\":{},\"results\":[{records}],\"telemetry\":{}}}",
        avgi_faultsim::json::escape(&run.spec.workload),
        run.spec.structure.ident(),
        run.spec.golden_cycles,
        run.telemetry.deterministic_counters_json(),
    )
}

/// Builds the same report shape from a single-process campaign — the
/// reference side of the service's bit-identity check (used by
/// `grid_submit --verify` and the service tests).
pub fn reference_report(
    workload: &str,
    structure: avgi_muarch::fault::Structure,
    golden_cycles: u64,
    results: &[InjectionResult],
    telemetry: &MetricsSnapshot,
) -> String {
    let records = results
        .iter()
        .enumerate()
        .map(|(i, r)| record_line(i, r).trim_end().to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"workload\":\"{}\",\"structure\":\"{}\",\"golden_cycles\":{golden_cycles},\"results\":[{records}],\"telemetry\":{}}}",
        avgi_faultsim::json::escape(workload),
        structure.ident(),
        telemetry.deterministic_counters_json(),
    )
}

/// Writes as much of `out` as the socket will take. Returns `false` on a
/// dead socket.
fn flush_out(w: &mut (impl Write + ?Sized), out: &mut Vec<u8>) -> bool {
    while !out.is_empty() {
        match w.write(out) {
            Ok(0) => return false,
            Ok(n) => {
                out.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}
