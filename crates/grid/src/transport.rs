//! The byte-stream abstraction under the frame protocol.
//!
//! Production connections are plain TCP ([`TcpTransport`]); tests and the
//! `grid_chaos` soak bin interpose a [`ChaosTransport`](crate::chaos::ChaosTransport)
//! that injects deterministic, seeded faults into the stream. Everything
//! above this layer — framing, the lease state machine, reconnect — is
//! written against `dyn Transport`, so the fabric's failure handling can be
//! exercised without real network failures.
//!
//! The trait deliberately mirrors the small slice of [`TcpStream`] the
//! fabric actually uses: blocking reads with an optional timeout,
//! `try_clone` for the worker's split reader/writer (heartbeats ride a
//! cloned write handle while the main loop blocks in reads), and `shutdown`
//! for deliberate disconnects.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A bidirectional byte stream a grid peer talks over.
///
/// Implementations must behave like a socket: reads and writes on separate
/// [`try_clone`](Transport::try_clone) handles may proceed concurrently,
/// and [`shutdown`](Transport::shutdown) takes down every handle to the
/// same connection.
pub trait Transport: Read + Write + Send {
    /// A second, independently usable handle to the same connection.
    fn try_clone(&self) -> std::io::Result<Box<dyn Transport>>;

    /// Sets the read timeout for this handle (like
    /// [`TcpStream::set_read_timeout`]).
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// Switches the connection between blocking and nonblocking mode (like
    /// [`TcpStream::set_nonblocking`]). The service's poll-based event loop
    /// runs every accepted connection nonblocking; the classic
    /// thread-per-connection coordinator never calls this.
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()>;

    /// Tears down the connection for every handle.
    fn shutdown(&self) -> std::io::Result<()>;
}

/// The production transport: a plain TCP stream with `TCP_NODELAY` set
/// (frames are small and latency-sensitive).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        // Accepted sockets must not inherit the listener's non-blocking
        // mode: the handlers rely on blocking reads with timeouts.
        stream.set_nonblocking(false)?;
        Ok(TcpTransport { stream })
    }

    /// Connects to `addr` and wraps the stream.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

impl Transport for TcpTransport {
    fn try_clone(&self) -> std::io::Result<Box<dyn Transport>> {
        Ok(Box::new(TcpTransport {
            stream: self.stream.try_clone()?,
        }))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self.stream.shutdown(std::net::Shutdown::Both) {
            // Already closed by the peer (or a prior shutdown): not an error.
            Err(e) if e.kind() == std::io::ErrorKind::NotConnected => Ok(()),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn tcp_transport_round_trips_and_clones() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let mut buf = [0u8; 5];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
        });
        let mut t = TcpTransport::connect(&addr.to_string()).unwrap();
        let mut w = Transport::try_clone(&t).unwrap();
        w.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        t.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        server.join().unwrap();
        t.shutdown().unwrap();
        t.shutdown().unwrap(); // idempotent
    }
}
