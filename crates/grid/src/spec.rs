//! The campaign spec: everything a remote worker needs to rebuild the
//! coordinator's campaign locally.
//!
//! A spec is deliberately compact — a workload registry id, a named
//! microarchitecture preset, and the sampling parameters — rather than a
//! serialized machine image: fault sampling and checkpoint construction are
//! deterministic, so shipping `(workload_id, preset, seed, …)` is enough
//! for every worker to arrive at bit-identical faults and snapshots. Two
//! cross-check fields guard the reconstruction: `golden_cycles` (pins the
//! golden run) and `config_hash` (pins the microarchitecture
//! configuration); a worker whose local rebuild disagrees refuses the
//! campaign instead of contributing wrong results.

use avgi_faultsim::campaign::RunMode;
use avgi_faultsim::json::Json;
use avgi_faultsim::CampaignConfig;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

/// A named microarchitecture configuration.
///
/// Only presets go on the wire: the two configurations the reproduction
/// studies are [`MuarchConfig::big`] and [`MuarchConfig::small`], and a
/// name plus [`config_hash`](avgi_faultsim::journal::config_hash)
/// cross-check is both smaller and safer than serializing every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigPreset {
    /// The paper's big (Skylake-like) core.
    Big,
    /// The paper's small (Cortex-A15-like) core.
    Small,
}

impl ConfigPreset {
    /// The wire name.
    pub fn ident(self) -> &'static str {
        match self {
            ConfigPreset::Big => "big",
            ConfigPreset::Small => "small",
        }
    }

    /// Parses a wire name.
    pub fn from_ident(s: &str) -> Option<Self> {
        match s {
            "big" => Some(ConfigPreset::Big),
            "small" => Some(ConfigPreset::Small),
            _ => None,
        }
    }

    /// Builds the configuration this preset names.
    pub fn config(self) -> MuarchConfig {
        match self {
            ConfigPreset::Big => MuarchConfig::big(),
            ConfigPreset::Small => MuarchConfig::small(),
        }
    }
}

/// The complete description of a distributed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Workload name (human-readable cross-check for `workload_id`).
    pub workload: String,
    /// Workload registry id ([`avgi_workloads::NAMES`] index).
    pub workload_id: usize,
    /// Microarchitecture preset.
    pub preset: ConfigPreset,
    /// Target structure.
    pub structure: Structure,
    /// Number of injections in the campaign.
    pub faults: usize,
    /// Fault-sampling seed.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Multi-bit burst width.
    pub burst_width: u32,
    /// Checkpoint count.
    pub checkpoints: u32,
    /// Fault-free execution length the coordinator measured; a worker whose
    /// local golden capture disagrees must refuse the campaign.
    pub golden_cycles: u64,
    /// [`config_hash`](avgi_faultsim::journal::config_hash) of the
    /// coordinator's microarchitecture configuration (second cross-check).
    pub config_hash: u64,
    /// Lease duration in milliseconds; workers derive their heartbeat
    /// interval from it.
    pub lease_timeout_ms: u64,
}

impl CampaignSpec {
    /// The microarchitecture configuration of this campaign.
    pub fn muarch_config(&self) -> MuarchConfig {
        self.preset.config()
    }

    /// The [`CampaignConfig`] this spec describes (no observer; callers
    /// attach their own).
    pub fn campaign_config(&self) -> CampaignConfig {
        let mut ccfg = CampaignConfig::new(self.structure, self.faults, self.mode)
            .with_seed(self.seed)
            .with_burst(self.burst_width);
        ccfg.checkpoints = self.checkpoints;
        ccfg
    }

    /// Serializes the spec (embedded in the `welcome` frame).
    pub fn to_json(&self) -> String {
        let (mode, ert) = match self.mode {
            RunMode::EndToEnd => ("EndToEnd", None),
            RunMode::Instrumented => ("Instrumented", None),
            RunMode::FirstDeviation { ert_window } => ("FirstDeviation", ert_window),
        };
        let ert = ert.map_or_else(|| "null".to_string(), |n| n.to_string());
        format!(
            "{{\"workload\":\"{}\",\"workload_id\":{},\"preset\":\"{}\",\"structure\":\"{}\",\"faults\":{},\"seed\":{},\"mode\":\"{mode}\",\"ert_window\":{ert},\"burst\":{},\"checkpoints\":{},\"golden_cycles\":{},\"config_hash\":{},\"lease_timeout_ms\":{}}}",
            avgi_faultsim::json::escape(&self.workload),
            self.workload_id,
            self.preset.ident(),
            self.structure.ident(),
            self.faults,
            self.seed,
            self.burst_width,
            self.checkpoints,
            self.golden_cycles,
            self.config_hash,
            self.lease_timeout_ms,
        )
    }

    /// Decodes a spec from an already-parsed JSON value.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("spec: missing `{key}`"))
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("spec: missing `{key}`"))
        };
        let ert = match v.get("ert_window") {
            None | Some(Json::Null) => None,
            Some(w) => Some(w.as_u64().ok_or("spec: bad ert_window")?),
        };
        let mode = match s("mode")? {
            "EndToEnd" => RunMode::EndToEnd,
            "Instrumented" => RunMode::Instrumented,
            "FirstDeviation" => RunMode::FirstDeviation { ert_window: ert },
            other => return Err(format!("spec: unknown mode {other:?}")),
        };
        Ok(CampaignSpec {
            workload: s("workload")?.to_string(),
            workload_id: int("workload_id")? as usize,
            preset: ConfigPreset::from_ident(s("preset")?)
                .ok_or_else(|| "spec: unknown preset".to_string())?,
            structure: Structure::from_ident(s("structure")?)
                .ok_or_else(|| "spec: unknown structure".to_string())?,
            faults: int("faults")? as usize,
            seed: int("seed")?,
            mode,
            burst_width: int("burst")? as u32,
            checkpoints: int("checkpoints")? as u32,
            golden_cycles: int("golden_cycles")?,
            config_hash: int("config_hash")?,
            lease_timeout_ms: int("lease_timeout_ms")?,
        })
    }
}

/// A tenant's campaign submission: what `POST /campaigns` accepts, what
/// the durable submission queue journals, and what `grid_submit` sends.
///
/// Unlike [`CampaignSpec`] — which carries the coordinator's *measured*
/// cross-checks (`golden_cycles`, `config_hash`) — a submission holds only
/// what the tenant decides: the campaign definition plus its fair-share
/// scheduling knobs. The service derives the full spec when it activates
/// the campaign (capturing the golden run itself).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Workload name (resolved against [`avgi_workloads::NAMES`]).
    pub workload: String,
    /// Microarchitecture preset.
    pub preset: ConfigPreset,
    /// Target structure.
    pub structure: Structure,
    /// Number of injections.
    pub faults: usize,
    /// Fault-sampling seed.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Multi-bit burst width.
    pub burst_width: u32,
    /// Checkpoint count.
    pub checkpoints: u32,
    /// Fair-share priority tier (higher = served first).
    pub priority: u32,
    /// Fair-share weight within the tier (≥ 1).
    pub weight: u32,
    /// Max concurrently leased runs (0 = unlimited).
    pub quota: usize,
}

impl SubmitSpec {
    /// A submission with default knobs for `workload`/`structure`/`faults`.
    pub fn new(workload: &str, structure: Structure, faults: usize, seed: u64) -> Self {
        SubmitSpec {
            workload: workload.to_string(),
            preset: ConfigPreset::Big,
            structure,
            faults,
            seed,
            mode: RunMode::Instrumented,
            burst_width: 1,
            checkpoints: 8,
            priority: 0,
            weight: 1,
            quota: 0,
        }
    }

    /// The scheduling share this submission asks for.
    pub fn share(&self) -> crate::sched::ShareConfig {
        crate::sched::ShareConfig {
            priority: self.priority,
            weight: self.weight.max(1),
            quota: self.quota,
        }
    }

    /// Serializes the submission (HTTP body / queue journal record).
    pub fn to_json(&self) -> String {
        let (mode, ert) = match self.mode {
            RunMode::EndToEnd => ("EndToEnd", None),
            RunMode::Instrumented => ("Instrumented", None),
            RunMode::FirstDeviation { ert_window } => ("FirstDeviation", ert_window),
        };
        let ert = ert.map_or_else(|| "null".to_string(), |n| n.to_string());
        format!(
            "{{\"workload\":\"{}\",\"preset\":\"{}\",\"structure\":\"{}\",\"faults\":{},\"seed\":{},\"mode\":\"{mode}\",\"ert_window\":{ert},\"burst\":{},\"checkpoints\":{},\"priority\":{},\"weight\":{},\"quota\":{}}}",
            avgi_faultsim::json::escape(&self.workload),
            self.preset.ident(),
            self.structure.ident(),
            self.faults,
            self.seed,
            self.burst_width,
            self.checkpoints,
            self.priority,
            self.weight,
            self.quota,
        )
    }

    /// Decodes a submission from an already-parsed JSON value. The
    /// scheduling knobs, preset, mode, burst, and checkpoints are optional
    /// (defaults as in [`SubmitSpec::new`]); the campaign identity fields
    /// are required.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("submit: missing `{key}`"))
        };
        let opt_int = |key: &str, default: u64| match v.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(n) => n.as_u64().ok_or_else(|| format!("submit: bad `{key}`")),
        };
        let workload = v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("submit: missing `workload`")?
            .to_string();
        if !avgi_workloads::NAMES.contains(&workload.as_str()) {
            return Err(format!("submit: unknown workload `{workload}`"));
        }
        let structure = v
            .get("structure")
            .and_then(Json::as_str)
            .and_then(Structure::from_ident)
            .ok_or("submit: missing or unknown `structure`")?;
        let preset = match v.get("preset").and_then(Json::as_str) {
            None => ConfigPreset::Big,
            Some(p) => ConfigPreset::from_ident(p).ok_or("submit: unknown preset")?,
        };
        let ert = match v.get("ert_window") {
            None | Some(Json::Null) => None,
            Some(w) => Some(w.as_u64().ok_or("submit: bad ert_window")?),
        };
        let mode = match v.get("mode").and_then(Json::as_str) {
            None | Some("Instrumented") => RunMode::Instrumented,
            Some("EndToEnd") => RunMode::EndToEnd,
            Some("FirstDeviation") => RunMode::FirstDeviation { ert_window: ert },
            Some(other) => return Err(format!("submit: unknown mode {other:?}")),
        };
        let faults = int("faults")? as usize;
        if faults == 0 {
            return Err("submit: `faults` must be positive".into());
        }
        Ok(SubmitSpec {
            workload,
            preset,
            structure,
            faults,
            seed: int("seed")?,
            mode,
            burst_width: opt_int("burst", 1)? as u32,
            checkpoints: opt_int("checkpoints", 8)? as u32,
            priority: opt_int("priority", 0)? as u32,
            weight: opt_int("weight", 1)?.max(1) as u32,
            quota: opt_int("quota", 0)? as usize,
        })
    }

    /// Decodes a submission from JSON text.
    pub fn from_json(s: &str) -> Result<Self, String> {
        Self::from_json_value(&avgi_faultsim::json::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_faultsim::json::parse;

    #[test]
    fn submit_spec_round_trips_and_defaults() {
        let full = SubmitSpec {
            workload: "crc32".into(),
            preset: ConfigPreset::Small,
            structure: Structure::Rob,
            faults: 96,
            seed: 0xBEE,
            mode: RunMode::FirstDeviation {
                ert_window: Some(500),
            },
            burst_width: 2,
            checkpoints: 4,
            priority: 3,
            weight: 5,
            quota: 16,
        };
        let back = SubmitSpec::from_json(&full.to_json()).unwrap();
        assert_eq!(back, full);
        // Minimal body: identity fields only, everything else defaulted.
        let min = SubmitSpec::from_json(
            "{\"workload\":\"bitcount\",\"structure\":\"RegFile\",\"faults\":8,\"seed\":1}",
        )
        .unwrap();
        assert_eq!(min, SubmitSpec::new("bitcount", Structure::RegFile, 8, 1));
        assert_eq!(min.share().weight, 1);
        // Bad submissions are refused with a reason.
        assert!(SubmitSpec::from_json(
            "{\"workload\":\"nope\",\"structure\":\"RegFile\",\"faults\":8,\"seed\":1}"
        )
        .is_err());
        assert!(SubmitSpec::from_json(
            "{\"workload\":\"bitcount\",\"structure\":\"RegFile\",\"faults\":0,\"seed\":1}"
        )
        .is_err());
        assert!(
            SubmitSpec::from_json("{\"workload\":\"bitcount\",\"faults\":8,\"seed\":1}").is_err()
        );
    }

    #[test]
    fn spec_round_trips() {
        let spec = CampaignSpec {
            workload: "sha".into(),
            workload_id: 1,
            preset: ConfigPreset::Big,
            structure: Structure::RegFile,
            faults: 240,
            seed: 0xDEAD,
            mode: RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
            burst_width: 2,
            checkpoints: 8,
            golden_cycles: 123_456,
            config_hash: 42,
            lease_timeout_ms: 30_000,
        };
        let back = CampaignSpec::from_json_value(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
        // And with a None ert_window / different preset.
        let spec = CampaignSpec {
            mode: RunMode::EndToEnd,
            preset: ConfigPreset::Small,
            ..spec
        };
        let back = CampaignSpec::from_json_value(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn campaign_config_matches_spec() {
        let spec = CampaignSpec {
            workload: "crc32".into(),
            workload_id: 2,
            preset: ConfigPreset::Big,
            structure: Structure::L1DData,
            faults: 64,
            seed: 7,
            mode: RunMode::Instrumented,
            burst_width: 3,
            checkpoints: 5,
            golden_cycles: 1,
            config_hash: 1,
            lease_timeout_ms: 1_000,
        };
        let ccfg = spec.campaign_config();
        assert_eq!(ccfg.structure, Structure::L1DData);
        assert_eq!(ccfg.faults, 64);
        assert_eq!(ccfg.seed, 7);
        assert_eq!(ccfg.burst_width, 3);
        assert_eq!(ccfg.checkpoints, 5);
    }
}
