//! The campaign spec: everything a remote worker needs to rebuild the
//! coordinator's campaign locally.
//!
//! A spec is deliberately compact — a workload registry id, a named
//! microarchitecture preset, and the sampling parameters — rather than a
//! serialized machine image: fault sampling and checkpoint construction are
//! deterministic, so shipping `(workload_id, preset, seed, …)` is enough
//! for every worker to arrive at bit-identical faults and snapshots. Two
//! cross-check fields guard the reconstruction: `golden_cycles` (pins the
//! golden run) and `config_hash` (pins the microarchitecture
//! configuration); a worker whose local rebuild disagrees refuses the
//! campaign instead of contributing wrong results.

use avgi_faultsim::campaign::RunMode;
use avgi_faultsim::json::Json;
use avgi_faultsim::CampaignConfig;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

/// A named microarchitecture configuration.
///
/// Only presets go on the wire: the two configurations the reproduction
/// studies are [`MuarchConfig::big`] and [`MuarchConfig::small`], and a
/// name plus [`config_hash`](avgi_faultsim::journal::config_hash)
/// cross-check is both smaller and safer than serializing every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigPreset {
    /// The paper's big (Skylake-like) core.
    Big,
    /// The paper's small (Cortex-A15-like) core.
    Small,
}

impl ConfigPreset {
    /// The wire name.
    pub fn ident(self) -> &'static str {
        match self {
            ConfigPreset::Big => "big",
            ConfigPreset::Small => "small",
        }
    }

    /// Parses a wire name.
    pub fn from_ident(s: &str) -> Option<Self> {
        match s {
            "big" => Some(ConfigPreset::Big),
            "small" => Some(ConfigPreset::Small),
            _ => None,
        }
    }

    /// Builds the configuration this preset names.
    pub fn config(self) -> MuarchConfig {
        match self {
            ConfigPreset::Big => MuarchConfig::big(),
            ConfigPreset::Small => MuarchConfig::small(),
        }
    }
}

/// The complete description of a distributed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Workload name (human-readable cross-check for `workload_id`).
    pub workload: String,
    /// Workload registry id ([`avgi_workloads::NAMES`] index).
    pub workload_id: usize,
    /// Microarchitecture preset.
    pub preset: ConfigPreset,
    /// Target structure.
    pub structure: Structure,
    /// Number of injections in the campaign.
    pub faults: usize,
    /// Fault-sampling seed.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Multi-bit burst width.
    pub burst_width: u32,
    /// Checkpoint count.
    pub checkpoints: u32,
    /// Fault-free execution length the coordinator measured; a worker whose
    /// local golden capture disagrees must refuse the campaign.
    pub golden_cycles: u64,
    /// [`config_hash`](avgi_faultsim::journal::config_hash) of the
    /// coordinator's microarchitecture configuration (second cross-check).
    pub config_hash: u64,
    /// Lease duration in milliseconds; workers derive their heartbeat
    /// interval from it.
    pub lease_timeout_ms: u64,
}

impl CampaignSpec {
    /// The microarchitecture configuration of this campaign.
    pub fn muarch_config(&self) -> MuarchConfig {
        self.preset.config()
    }

    /// The [`CampaignConfig`] this spec describes (no observer; callers
    /// attach their own).
    pub fn campaign_config(&self) -> CampaignConfig {
        let mut ccfg = CampaignConfig::new(self.structure, self.faults, self.mode)
            .with_seed(self.seed)
            .with_burst(self.burst_width);
        ccfg.checkpoints = self.checkpoints;
        ccfg
    }

    /// Serializes the spec (embedded in the `welcome` frame).
    pub fn to_json(&self) -> String {
        let (mode, ert) = match self.mode {
            RunMode::EndToEnd => ("EndToEnd", None),
            RunMode::Instrumented => ("Instrumented", None),
            RunMode::FirstDeviation { ert_window } => ("FirstDeviation", ert_window),
        };
        let ert = ert.map_or_else(|| "null".to_string(), |n| n.to_string());
        format!(
            "{{\"workload\":\"{}\",\"workload_id\":{},\"preset\":\"{}\",\"structure\":\"{}\",\"faults\":{},\"seed\":{},\"mode\":\"{mode}\",\"ert_window\":{ert},\"burst\":{},\"checkpoints\":{},\"golden_cycles\":{},\"config_hash\":{},\"lease_timeout_ms\":{}}}",
            avgi_faultsim::json::escape(&self.workload),
            self.workload_id,
            self.preset.ident(),
            self.structure.ident(),
            self.faults,
            self.seed,
            self.burst_width,
            self.checkpoints,
            self.golden_cycles,
            self.config_hash,
            self.lease_timeout_ms,
        )
    }

    /// Decodes a spec from an already-parsed JSON value.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("spec: missing `{key}`"))
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("spec: missing `{key}`"))
        };
        let ert = match v.get("ert_window") {
            None | Some(Json::Null) => None,
            Some(w) => Some(w.as_u64().ok_or("spec: bad ert_window")?),
        };
        let mode = match s("mode")? {
            "EndToEnd" => RunMode::EndToEnd,
            "Instrumented" => RunMode::Instrumented,
            "FirstDeviation" => RunMode::FirstDeviation { ert_window: ert },
            other => return Err(format!("spec: unknown mode {other:?}")),
        };
        Ok(CampaignSpec {
            workload: s("workload")?.to_string(),
            workload_id: int("workload_id")? as usize,
            preset: ConfigPreset::from_ident(s("preset")?)
                .ok_or_else(|| "spec: unknown preset".to_string())?,
            structure: Structure::from_ident(s("structure")?)
                .ok_or_else(|| "spec: unknown structure".to_string())?,
            faults: int("faults")? as usize,
            seed: int("seed")?,
            mode,
            burst_width: int("burst")? as u32,
            checkpoints: int("checkpoints")? as u32,
            golden_cycles: int("golden_cycles")?,
            config_hash: int("config_hash")?,
            lease_timeout_ms: int("lease_timeout_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_faultsim::json::parse;

    #[test]
    fn spec_round_trips() {
        let spec = CampaignSpec {
            workload: "sha".into(),
            workload_id: 1,
            preset: ConfigPreset::Big,
            structure: Structure::RegFile,
            faults: 240,
            seed: 0xDEAD,
            mode: RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
            burst_width: 2,
            checkpoints: 8,
            golden_cycles: 123_456,
            config_hash: 42,
            lease_timeout_ms: 30_000,
        };
        let back = CampaignSpec::from_json_value(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
        // And with a None ert_window / different preset.
        let spec = CampaignSpec {
            mode: RunMode::EndToEnd,
            preset: ConfigPreset::Small,
            ..spec
        };
        let back = CampaignSpec::from_json_value(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn campaign_config_matches_spec() {
        let spec = CampaignSpec {
            workload: "crc32".into(),
            workload_id: 2,
            preset: ConfigPreset::Big,
            structure: Structure::L1DData,
            faults: 64,
            seed: 7,
            mode: RunMode::Instrumented,
            burst_width: 3,
            checkpoints: 5,
            golden_cycles: 1,
            config_hash: 1,
            lease_timeout_ms: 1_000,
        };
        let ccfg = spec.campaign_config();
        assert_eq!(ccfg.structure, Structure::L1DData);
        assert_eq!(ccfg.faults, 64);
        assert_eq!(ccfg.seed, 7);
        assert_eq!(ccfg.burst_width, 3);
        assert_eq!(ccfg.checkpoints, 5);
    }
}
