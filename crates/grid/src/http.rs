//! A minimal, dependency-free HTTP/1.1 surface for the campaign service.
//!
//! The control plane needs exactly three endpoints:
//!
//! * `POST /campaigns` — submit a campaign ([`SubmitSpec`] JSON body)
//! * `GET /campaigns/<id>` — one campaign's status (and, once finished,
//!   its full merged report)
//! * `GET /fleet` — fleet-wide status: workers, campaigns, wire tallies
//!
//! That does not justify an HTTP stack: this module implements just
//! enough of RFC 9112 to serve those routes — request line, headers (only
//! `Content-Length` is interpreted), a body, and a one-shot response with
//! `Connection: close`. The parser is incremental ([`HttpBuffer`]) so it
//! drops straight into the service's nonblocking event loop: feed it a
//! socket whenever the socket is readable, and it yields a routed request
//! exactly once the full message has arrived, no matter how the bytes
//! were fragmented.
//!
//! Everything unroutable gets a ready-made error response and the
//! connection closes — tenants talk to the service per-request, which
//! keeps connection state out of the event loop (no keep-alive
//! bookkeeping for a surface that sees a handful of requests per
//! campaign).

use crate::spec::SubmitSpec;
use std::io::Read;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 << 10;
/// Upper bound on a request body (a [`SubmitSpec`] is < 1 KiB).
const MAX_BODY: usize = 256 << 10;

/// A routed control-plane request.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpRequest {
    /// `POST /campaigns` with a parsed submission body.
    Submit(SubmitSpec),
    /// `GET /campaigns/<id>`.
    Status(u64),
    /// `GET /fleet`.
    Fleet,
}

/// One poll of an HTTP connection.
#[derive(Debug)]
pub enum HttpPoll {
    /// No complete request yet; poll again when the socket is readable.
    Pending,
    /// A complete, routed request.
    Request(HttpRequest),
    /// The peer closed before completing a request.
    Closed,
    /// Malformed or unroutable input: send these response bytes and close.
    Bad(Vec<u8>),
}

/// Incremental request accumulator for one connection (see module docs).
#[derive(Debug, Default)]
pub struct HttpBuffer {
    buf: Vec<u8>,
}

impl HttpBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads whatever the socket has and returns a request once complete.
    ///
    /// `WouldBlock`/`TimedOut`/`Interrupted` map to [`HttpPoll::Pending`];
    /// real I/O errors surface as `Err` (close the connection).
    pub fn poll(&mut self, r: &mut (impl Read + ?Sized)) -> std::io::Result<HttpPoll> {
        let mut tmp = [0u8; 4096];
        match r.read(&mut tmp) {
            Ok(0) => {
                return Ok(if self.buf.is_empty() {
                    HttpPoll::Closed
                } else {
                    // Half a request then EOF: nothing to respond to.
                    HttpPoll::Closed
                });
            }
            Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
        Ok(self.try_route())
    }

    /// Attempts to parse and route the accumulated bytes.
    fn try_route(&mut self) -> HttpPoll {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return HttpPoll::Bad(response(431, "{\"error\":\"request head too large\"}"));
            }
            return HttpPoll::Pending;
        };
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(h) => h,
            Err(_) => return HttpPoll::Bad(response(400, "{\"error\":\"non-UTF-8 head\"}")),
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p),
            _ => return HttpPoll::Bad(response(400, "{\"error\":\"bad request line\"}")),
        };
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    match value.trim().parse::<usize>() {
                        Ok(n) => content_length = n,
                        Err(_) => {
                            return HttpPoll::Bad(response(
                                400,
                                "{\"error\":\"bad content-length\"}",
                            ))
                        }
                    }
                }
            }
        }
        if content_length > MAX_BODY {
            return HttpPoll::Bad(response(413, "{\"error\":\"body too large\"}"));
        }
        let body_start = head_end + 4;
        if self.buf.len() < body_start + content_length {
            return HttpPoll::Pending;
        }
        let body = &self.buf[body_start..body_start + content_length];
        route(method, path, body)
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Maps `(method, path, body)` to a control-plane request.
fn route(method: &str, path: &str, body: &[u8]) -> HttpPoll {
    match (method, path) {
        ("POST", "/campaigns") => {
            let text = match std::str::from_utf8(body) {
                Ok(t) => t,
                Err(_) => return HttpPoll::Bad(response(400, "{\"error\":\"non-UTF-8 body\"}")),
            };
            match SubmitSpec::from_json(text) {
                Ok(spec) => HttpPoll::Request(HttpRequest::Submit(spec)),
                Err(e) => HttpPoll::Bad(response(
                    400,
                    &format!("{{\"error\":\"{}\"}}", avgi_faultsim::json::escape(&e)),
                )),
            }
        }
        ("GET", "/fleet") => HttpPoll::Request(HttpRequest::Fleet),
        ("GET", p) => match p
            .strip_prefix("/campaigns/")
            .and_then(|id| id.parse::<u64>().ok())
        {
            Some(id) => HttpPoll::Request(HttpRequest::Status(id)),
            None => HttpPoll::Bad(response(404, "{\"error\":\"no such route\"}")),
        },
        ("POST", _) => HttpPoll::Bad(response(404, "{\"error\":\"no such route\"}")),
        _ => HttpPoll::Bad(response(405, "{\"error\":\"method not allowed\"}")),
    }
}

/// Builds a complete one-shot JSON response (`Connection: close`).
pub fn response(status: u16, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_muarch::fault::Structure;

    /// A `Read` that hands out a script of chunks, then `WouldBlock`s.
    struct Chunks {
        script: Vec<Vec<u8>>,
    }

    impl Read for Chunks {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.script.is_empty() {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let chunk = self.script.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    fn status_line(resp: &[u8]) -> String {
        String::from_utf8_lossy(resp)
            .lines()
            .next()
            .unwrap_or_default()
            .to_string()
    }

    #[test]
    fn submit_parses_across_arbitrary_fragmentation() {
        let spec = SubmitSpec::new("bitcount", Structure::RegFile, 32, 7);
        let body = spec.to_json();
        let raw = format!(
            "POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        // Try every split point: the parser must be insensitive to where
        // the kernel fragments the stream.
        for cut in 1..raw.len() {
            let mut src = Chunks {
                script: vec![
                    raw.as_bytes()[..cut].to_vec(),
                    raw.as_bytes()[cut..].to_vec(),
                ],
            };
            let mut hb = HttpBuffer::new();
            let got = loop {
                match hb.poll(&mut src).unwrap() {
                    HttpPoll::Pending => continue,
                    other => break other,
                }
            };
            match got {
                HttpPoll::Request(HttpRequest::Submit(s)) => assert_eq!(s, spec),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn get_routes_resolve() {
        let mut hb = HttpBuffer::new();
        let mut src = Chunks {
            script: vec![b"GET /campaigns/42 HTTP/1.1\r\n\r\n".to_vec()],
        };
        match hb.poll(&mut src).unwrap() {
            HttpPoll::Request(HttpRequest::Status(42)) => {}
            other => panic!("unexpected {other:?}"),
        }
        let mut hb = HttpBuffer::new();
        let mut src = Chunks {
            script: vec![b"GET /fleet HTTP/1.1\r\nAccept: */*\r\n\r\n".to_vec()],
        };
        match hb.poll(&mut src).unwrap() {
            HttpPoll::Request(HttpRequest::Fleet) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unroutable_and_malformed_requests_get_error_responses() {
        let cases: Vec<(&[u8], &str)> = vec![
            (b"GET /nope HTTP/1.1\r\n\r\n", "404"),
            (b"GET /campaigns/abc HTTP/1.1\r\n\r\n", "404"),
            (b"POST /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n", "404"),
            (b"DELETE /fleet HTTP/1.1\r\n\r\n", "405"),
            (b"garbage\r\n\r\n", "400"),
            (
                b"POST /campaigns HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
                "400",
            ),
        ];
        for (raw, want) in cases {
            let mut hb = HttpBuffer::new();
            let mut src = Chunks {
                script: vec![raw.to_vec()],
            };
            match hb.poll(&mut src).unwrap() {
                HttpPoll::Bad(resp) => {
                    let line = status_line(&resp);
                    assert!(
                        line.contains(want),
                        "{:?}: wanted {want}, got {line}",
                        String::from_utf8_lossy(raw)
                    );
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let raw = format!(
            "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut hb = HttpBuffer::new();
        let mut src = Chunks {
            script: vec![raw.into_bytes()],
        };
        match hb.poll(&mut src).unwrap() {
            HttpPoll::Bad(resp) => assert!(status_line(&resp).contains("413")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn responses_carry_length_and_close() {
        let resp = String::from_utf8(response(200, "{\"ok\":true}")).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(resp.contains("Content-Length: 11\r\n"));
        assert!(resp.contains("Connection: close\r\n"));
        assert!(resp.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
