//! # avgi-grid — the distributed campaign fabric
//!
//! Shards a fault-injection campaign across processes (or machines): one
//! [`Coordinator`] owns the fault list and hands out cycle-sorted work
//! leases over a hand-rolled, length-prefixed binary protocol on TCP;
//! any number of [workers](run_worker) rebuild the campaign locally from a
//! compact [`CampaignSpec`], execute leased index batches through the same
//! [`ShardRunner`](avgi_faultsim::ShardRunner) hot path a single-process
//! campaign uses, and stream back results plus mergeable telemetry deltas.
//!
//! The fabric inherits the framework's determinism contract: every injected
//! run is a pure function of `(seed, fault index, mode)`, so the merged
//! [`CampaignResult`](avgi_faultsim::CampaignResult) — and the merged
//! telemetry's deterministic counters — are bit-identical to a
//! single-process [`run_campaign`](avgi_faultsim::run_campaign) of the same
//! configuration, no matter how many workers participate, how batches
//! interleave, or how many workers die mid-campaign (dead workers' leases
//! are detected by heartbeat expiry and reassigned; late duplicate reports
//! are discarded wholly, so nothing is double-counted).
//!
//! ```no_run
//! use avgi_faultsim::{CampaignConfig, RunMode};
//! use avgi_grid::{Coordinator, ConfigPreset, GridConfig};
//! use avgi_muarch::Structure;
//!
//! let w = avgi_workloads::by_name("sha").unwrap();
//! let ccfg = CampaignConfig::new(Structure::RegFile, 500, RunMode::EndToEnd);
//! let coord = Coordinator::bind(&w, ConfigPreset::Big, &ccfg, &GridConfig::default()).unwrap();
//! println!("listening on {}", coord.local_addr().unwrap());
//! let outcome = coord.run().unwrap(); // blocks until workers finish it
//! assert_eq!(outcome.result.len(), 500);
//! ```
//!
//! The fabric is also hardened against *itself* failing: frames carry a
//! CRC32 trailer, workers hold session tokens and reconnect with jittered
//! exponential backoff ([`Backoff`]), the coordinator isolates handler
//! panics and sheds excess connections, and the campaign journal seals
//! every line with a checksum under a configurable
//! [`DurabilityPolicy`](avgi_faultsim::DurabilityPolicy). All of it is
//! exercised deterministically by interposing a seeded [`ChaosTransport`]
//! on the [`Transport`] abstraction — see the [`chaos`] module and
//! `DESIGN.md` §12.
//!
//! The protocol (frame layout, lease state machine, merge semantics) is
//! documented in `DESIGN.md` §10; `README.md` shows the two-terminal
//! localhost workflow via the `grid_coordinator`/`grid_worker` binaries.

pub mod chaos;
pub mod coord;
pub mod http;
pub mod proto;
pub mod queue;
pub mod sched;
pub mod service;
pub mod spec;
pub mod transport;
pub mod worker;

pub use chaos::{ChaosInterposer, ChaosPolicy, ChaosStats, ChaosTransport};
pub use coord::{Coordinator, GridConfig, GridError, GridOutcome, GridStats};
pub use queue::{QueuedCampaign, SubmissionQueue};
pub use sched::{FairScheduler, ShareConfig};
pub use service::{CampaignStatus, Service, ServiceConfig, ServiceStats};
pub use spec::{CampaignSpec, ConfigPreset, SubmitSpec};
pub use transport::{TcpTransport, Transport};
pub use worker::{run_worker, Backoff, WorkerConfig, WorkerStats};
