//! The campaign worker: rebuilds the campaign locally from the spec, then
//! executes leases until the coordinator says the campaign is done.
//!
//! A worker carries no campaign state of its own. It rebuilds everything —
//! workload, microarchitecture configuration, golden run, fault list,
//! checkpoints — deterministically from the compact [`CampaignSpec`] in the
//! welcome frame, validates the rebuild against the spec's `golden_cycles`
//! and `config_hash` cross-checks, and then loops: request a lease, run the
//! leased indices through the shared [`ShardRunner`] hot path, report the
//! results plus a fresh per-batch telemetry delta. A heartbeat thread keeps
//! the active lease alive while long batches execute, so slow workers are
//! distinguished from dead ones.
//!
//! The worker survives its link, not just its work: the welcome carries a
//! session token, and when a connection dies mid-campaign (I/O error,
//! corrupt frame, mid-session rejection) the worker reconnects with
//! exponential backoff plus deterministic jitter, re-presents the token,
//! verifies the spec is unchanged, and retransmits its last unacknowledged
//! batch report. The coordinator's first-responder-wins dedup makes the
//! retransmission idempotent: if the lease survived the outage the report
//! is accepted once, and if it expired the report is silently discarded and
//! the indices re-execute deterministically elsewhere — either way nothing
//! is double-counted.

use crate::chaos::ChaosInterposer;
use crate::coord::GridError;
use crate::proto::{recv, send, FrameError, Msg, PROTO_VERSION};
use crate::spec::CampaignSpec;
use crate::transport::{TcpTransport, Transport};
use avgi_faultsim::campaign::golden_for;
use avgi_faultsim::journal::config_hash;
use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::ShardRunner;
use avgi_rng::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::coord::lock_clean;

/// Worker-side configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Threads for batch execution (`0` = all available cores).
    pub threads: usize,
    /// How long to keep retrying each (re)connection attempt's TCP dial
    /// (covers the worker starting before the coordinator, and the
    /// coordinator restarting mid-campaign).
    pub connect_timeout: Duration,
    /// How long a read may sit silent before the coordinator is presumed
    /// gone and the session is retried. The coordinator answers every
    /// request promptly, so this is a liveness bound, not pacing; it also
    /// caps the heartbeat interval (a beat is always sent well inside one
    /// timeout window).
    pub read_timeout: Duration,
    /// Session-loss budget: how many *consecutive* failed handshake
    /// attempts the worker tolerates before giving up and reporting the
    /// underlying error. A successful (re-)attach resets the count — a
    /// worker that keeps getting real work keeps retrying.
    pub reconnect_attempts: u32,
    /// First reconnect backoff delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (mixed with the attempt
    /// number; give concurrent workers different seeds to de-thunder them).
    pub jitter_seed: u64,
    /// Test hook: after completing this many batches, drop the connection
    /// abruptly on the next lease instead of executing it — simulating a
    /// worker dying mid-campaign (`None` = run to completion).
    pub max_batches: Option<usize>,
    /// Fault injection on this worker's outbound frames (`None` = plain
    /// TCP). Test/soak instrumentation; see [`crate::chaos`].
    pub chaos: Option<Arc<ChaosInterposer>>,
}

impl WorkerConfig {
    /// A worker for `addr` with default tuning.
    pub fn new(addr: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            threads: 0,
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(60),
            reconnect_attempts: 8,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5EED,
            max_batches: None,
            chaos: None,
        }
    }
}

/// What one worker contributed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Batches executed and reported.
    pub batches: u64,
    /// Individual injections executed.
    pub runs: u64,
    /// Sessions lost and re-established mid-campaign.
    pub reconnects: u64,
}

/// Exponential backoff with deterministic jitter: attempt `n` sleeps a
/// uniform draw from `[cap_n / 2, cap_n]` where `cap_n = base * 2^n`,
/// clamped to the ceiling. The draw comes from a seeded [`Rng`], so a
/// worker's retry schedule is a pure function of (seed, attempt) — chaos
/// tests replay byte-identically — while distinct seeds still de-thunder a
/// fleet hitting a restarting coordinator.
#[derive(Debug)]
pub struct Backoff {
    rng: Rng,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule (next delay is the base-scale one).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            rng: Rng::seed_from_u64(seed),
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempt: 0,
        }
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over (the rng stream continues — a reset replays
    /// the delay *scale*, not the exact delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay in the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let scale = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let hi = scale.as_nanos().min(u128::from(u64::MAX)) as u64;
        let lo = hi / 2;
        Duration::from_nanos(lo + self.rng.gen_range_u64(hi - lo + 1))
    }
}

/// Dials the coordinator, retrying until `connect_timeout`, with the same
/// jittered exponential backoff the session loop uses (the coordinator may
/// be restarting). Logs attempt counts so a stuck worker is diagnosable.
fn connect_with_retry(wcfg: &WorkerConfig) -> Result<Box<dyn Transport>, GridError> {
    let deadline = Instant::now() + wcfg.connect_timeout;
    let mut backoff = Backoff::new(
        wcfg.backoff_base,
        wcfg.backoff_cap,
        wcfg.jitter_seed ^ 0xD1A1, // distinct stream from session-loss backoff
    );
    loop {
        match TcpTransport::connect(&wcfg.addr) {
            Ok(t) => {
                let t: Box<dyn Transport> = Box::new(t);
                return Ok(match &wcfg.chaos {
                    Some(chaos) => chaos.wrap(t),
                    None => t,
                });
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!(
                        "avgi-grid worker: giving up on {} after {} attempts: {e}",
                        wcfg.addr,
                        backoff.attempts() + 1
                    );
                    return Err(GridError::Io(e));
                }
                let delay = backoff.next_delay();
                eprintln!(
                    "avgi-grid worker: connect attempt {} to {} failed ({e}); retrying in {delay:?}",
                    backoff.attempts(),
                    wcfg.addr
                );
                std::thread::sleep(delay);
            }
        }
    }
}

/// Rebuilds the campaign the spec describes and cross-checks it.
fn rebuild(
    spec: &CampaignSpec,
) -> Result<
    (
        avgi_workloads::Workload,
        avgi_muarch::config::MuarchConfig,
        std::sync::Arc<avgi_muarch::trace::GoldenRun>,
    ),
    GridError,
> {
    let workload = avgi_workloads::by_index(spec.workload_id)
        .ok_or_else(|| GridError::Spec(format!("unknown workload id {}", spec.workload_id)))?;
    if workload.name != spec.workload {
        return Err(GridError::Spec(format!(
            "workload id {} is {:?} here, coordinator calls it {:?} — registry skew",
            spec.workload_id, workload.name, spec.workload
        )));
    }
    let cfg = spec.muarch_config();
    let local_hash = config_hash(&cfg);
    if local_hash != spec.config_hash {
        return Err(GridError::Spec(format!(
            "config hash mismatch for preset {:?}: local {local_hash}, coordinator {}",
            spec.preset, spec.config_hash
        )));
    }
    let golden = golden_for(&workload, &cfg);
    if golden.cycles != spec.golden_cycles {
        return Err(GridError::Spec(format!(
            "golden run mismatch: local {} cycles, coordinator {}",
            golden.cycles, spec.golden_cycles
        )));
    }
    Ok((workload, cfg, golden))
}

/// A completed handshake.
enum Handshake {
    /// Welcomed into the campaign (possibly re-attached).
    Attached(Box<dyn Transport>, CampaignSpec, u64),
    /// The campaign finished while we were away; nothing left to do.
    Finished,
}

/// Connects and handshakes, presenting `session` when re-attaching.
/// Duplicate frames from a chaotic link are tolerated: any number of
/// welcomes may arrive and the first one wins.
fn establish(wcfg: &WorkerConfig, session: Option<u64>) -> Result<Handshake, GridError> {
    let mut stream = connect_with_retry(wcfg)?;
    stream.set_read_timeout(Some(wcfg.read_timeout))?;
    send(
        &mut *stream,
        &Msg::Hello {
            proto: PROTO_VERSION,
            session,
        },
    )?;
    match recv(&mut *stream)? {
        Msg::Welcome { spec, session } => Ok(Handshake::Attached(stream, spec, session)),
        Msg::Done => Ok(Handshake::Finished),
        Msg::Reject { reason } => Err(GridError::Protocol(reason)),
        other => Err(GridError::Protocol(format!(
            "expected welcome, got {other:?}"
        ))),
    }
}

/// Why one session ended.
enum SessionEnd {
    /// The coordinator said the campaign is complete (or the death-test
    /// hook fired): the worker is done for good.
    Finished,
    /// The link failed; the session may be worth re-attaching.
    Lost(GridError),
}

/// Session-loss errors worth a reconnect. `Spec` and `Campaign` failures
/// are environmental (wrong binary, wrong registry) and never heal by
/// retrying; everything link-shaped — including a handshake rejection,
/// which under chaos is usually a corrupted hello — is retryable within
/// the attempt budget.
fn retryable(e: &GridError) -> bool {
    matches!(
        e,
        GridError::Io(_) | GridError::Frame(_) | GridError::Protocol(_)
    )
}

/// Connects to a coordinator and works until the campaign completes,
/// reconnecting through link failures.
///
/// Returns the worker's own contribution statistics; the authoritative
/// merged campaign lives on the coordinator.
pub fn run_worker(wcfg: &WorkerConfig) -> Result<WorkerStats, GridError> {
    let mut backoff = Backoff::new(wcfg.backoff_base, wcfg.backoff_cap, wcfg.jitter_seed);
    // Even the first handshake retries within the budget: on a chaotic link
    // the very first welcome can be a casualty.
    let (mut stream, spec, mut session) = loop {
        match establish(wcfg, None) {
            Ok(Handshake::Attached(stream, spec, session)) => break (stream, spec, session),
            Ok(Handshake::Finished) => return Ok(WorkerStats::default()),
            Err(e) if retryable(&e) && backoff.attempts() < wcfg.reconnect_attempts => {
                let delay = backoff.next_delay();
                eprintln!(
                    "avgi-grid worker: handshake attempt {} failed ({e}); retrying in {delay:?}",
                    backoff.attempts()
                );
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    };
    backoff.reset();
    let (workload, cfg, golden) = rebuild(&spec)?;
    let mut ccfg = spec.campaign_config();
    ccfg.threads = wcfg.threads;
    let runner = ShardRunner::new(&workload, &cfg, &golden, &ccfg);

    let mut stats = WorkerStats::default();
    // The last batch report whose delivery is unconfirmed; retransmitted on
    // re-attach (idempotent — see the module docs).
    let mut pending: Option<Msg> = None;
    loop {
        let end = drive_session(wcfg, &spec, stream, &runner, &mut stats, &mut pending);
        let lost = match end {
            Ok(SessionEnd::Finished) => return Ok(stats),
            Ok(SessionEnd::Lost(e)) => e,
            Err(e) => return Err(e),
        };
        // Re-attach loop: each failed attempt burns budget and backs off.
        stream = loop {
            if backoff.attempts() >= wcfg.reconnect_attempts {
                eprintln!(
                    "avgi-grid worker: session {session} unrecoverable after {} attempts: {lost}",
                    backoff.attempts()
                );
                return Err(lost);
            }
            let delay = backoff.next_delay();
            eprintln!(
                "avgi-grid worker: session {session} lost ({lost}); re-attach attempt {} in {delay:?}",
                backoff.attempts()
            );
            std::thread::sleep(delay);
            match establish(wcfg, Some(session)) {
                Ok(Handshake::Attached(stream, new_spec, new_session)) => {
                    if new_spec != spec {
                        return Err(GridError::Spec(
                            "campaign spec changed across reconnect".into(),
                        ));
                    }
                    session = new_session;
                    stats.reconnects += 1;
                    backoff.reset();
                    break stream;
                }
                // The campaign finished during the outage: our pending
                // report is moot (its indices completed — via us or a
                // reassignment), so this is success.
                Ok(Handshake::Finished) => return Ok(stats),
                Err(e) if retryable(&e) => {
                    eprintln!("avgi-grid worker: re-attach failed: {e}");
                }
                Err(e) => return Err(e),
            }
        };
    }
}

/// Runs one connected session to its end. `Err` is fatal (no reconnect).
fn drive_session(
    wcfg: &WorkerConfig,
    spec: &CampaignSpec,
    stream: Box<dyn Transport>,
    runner: &ShardRunner,
    stats: &mut WorkerStats,
    pending: &mut Option<Msg>,
) -> Result<SessionEnd, GridError> {
    let mut stream = stream;
    // The heartbeat thread shares the write half of the connection and the
    // id of the lease currently executing; it pings often enough that
    // several missed beats are needed before the coordinator declares us
    // dead, and always well inside one read-timeout window.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let current_lease: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let beat = Duration::from_millis(spec.lease_timeout_ms / 3)
        .min(wcfg.read_timeout / 2)
        .max(Duration::from_millis(10));
    let heartbeat = {
        let writer = writer.clone();
        let current_lease = current_lease.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                // Sleep in short steps so shutdown never waits a full beat.
                std::thread::sleep(Duration::from_millis(10));
                if last.elapsed() < beat {
                    continue;
                }
                last = Instant::now();
                let lease = *lock_clean(&current_lease);
                if let Some(lease) = lease {
                    if send(&mut **lock_clean(&writer), &Msg::Heartbeat { lease }).is_err() {
                        return; // coordinator gone; main thread will notice
                    }
                }
            }
        })
    };

    let outcome = (|| -> Result<SessionEnd, GridError> {
        let lost = |e: GridError| Ok(SessionEnd::Lost(e));
        // Retransmit the batch whose delivery the last session never
        // confirmed.
        if let Some(msg) = pending.as_ref() {
            if let Err(e) = send(&mut **lock_clean(&writer), msg) {
                return lost(e.into());
            }
        }
        loop {
            if let Err(e) = send(&mut **lock_clean(&writer), &Msg::LeaseRequest) {
                return lost(e.into());
            }
            // Read until a usable reply: a chaotic link may replay stale
            // welcomes, which the handshake already consumed once.
            let reply = loop {
                match recv(&mut *stream) {
                    Ok(Msg::Welcome { .. }) => continue,
                    Ok(msg) => break msg,
                    Err(FrameError::Closed) => {
                        return lost(GridError::Protocol(
                            "coordinator closed the connection".into(),
                        ))
                    }
                    Err(e) => return lost(e.into()),
                }
            };
            // An in-order reply proves every earlier frame we sent — the
            // retransmission included — was consumed.
            *pending = None;
            match reply {
                Msg::Lease { lease, indices } => {
                    if wcfg
                        .max_batches
                        .is_some_and(|max| stats.batches as usize >= max)
                    {
                        // Test hook: die abruptly with a lease in hand. The
                        // shutdown closes the connection even though the
                        // heartbeat thread still holds a cloned handle.
                        let _ = stream.shutdown();
                        return Ok(SessionEnd::Finished);
                    }
                    *lock_clean(&current_lease) = Some(lease);
                    let collector = Arc::new(MetricsCollector::new());
                    let results = runner.run_indices(&indices, Some(collector.clone()))?;
                    *lock_clean(&current_lease) = None;
                    stats.batches += 1;
                    stats.runs += results.len() as u64;
                    let report = Msg::BatchDone {
                        lease,
                        results,
                        telemetry: collector.snapshot(),
                    };
                    let sent = send(&mut **lock_clean(&writer), &report);
                    // Hold the report for retransmission until the next
                    // in-order reply confirms it arrived.
                    *pending = Some(report);
                    if let Err(e) = sent {
                        return lost(e.into());
                    }
                }
                Msg::Drain => std::thread::sleep(Duration::from_millis(50)),
                Msg::Done => return Ok(SessionEnd::Finished),
                Msg::Reject { reason } => return lost(GridError::Protocol(reason)),
                other => return lost(GridError::Protocol(format!("unexpected message {other:?}"))),
            }
        }
    })();
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome
}
