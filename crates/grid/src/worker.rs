//! The campaign worker: rebuilds the campaign locally from the spec, then
//! executes leases until the coordinator says the campaign is done.
//!
//! A worker carries no campaign state of its own. It rebuilds everything —
//! workload, microarchitecture configuration, golden run, fault list,
//! checkpoints — deterministically from the compact [`CampaignSpec`] in the
//! welcome frame, validates the rebuild against the spec's `golden_cycles`
//! and `config_hash` cross-checks, and then loops: request a lease, run the
//! leased indices through the shared [`ShardRunner`] hot path, report the
//! results plus a fresh per-batch telemetry delta. A heartbeat thread keeps
//! the active lease alive while long batches execute, so slow workers are
//! distinguished from dead ones.

use crate::coord::GridError;
use crate::proto::{recv, send, FrameError, Msg, PROTO_VERSION};
use crate::spec::CampaignSpec;
use avgi_faultsim::campaign::golden_for;
use avgi_faultsim::journal::config_hash;
use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::ShardRunner;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker-side configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Threads for batch execution (`0` = all available cores).
    pub threads: usize,
    /// How long to keep retrying the initial connection (covers the worker
    /// starting before the coordinator).
    pub connect_timeout: Duration,
    /// Test hook: after completing this many batches, drop the connection
    /// abruptly on the next lease instead of executing it — simulating a
    /// worker dying mid-campaign (`None` = run to completion).
    pub max_batches: Option<usize>,
}

impl WorkerConfig {
    /// A worker for `addr` with default tuning.
    pub fn new(addr: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            threads: 0,
            connect_timeout: Duration::from_secs(10),
            max_batches: None,
        }
    }
}

/// What one worker contributed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Batches executed and reported.
    pub batches: u64,
    /// Individual injections executed.
    pub runs: u64,
}

fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, GridError> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(GridError::Io(e));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Rebuilds the campaign the spec describes and cross-checks it.
fn rebuild(
    spec: &CampaignSpec,
) -> Result<
    (
        avgi_workloads::Workload,
        avgi_muarch::config::MuarchConfig,
        std::sync::Arc<avgi_muarch::trace::GoldenRun>,
    ),
    GridError,
> {
    let workload = avgi_workloads::by_index(spec.workload_id)
        .ok_or_else(|| GridError::Spec(format!("unknown workload id {}", spec.workload_id)))?;
    if workload.name != spec.workload {
        return Err(GridError::Spec(format!(
            "workload id {} is {:?} here, coordinator calls it {:?} — registry skew",
            spec.workload_id, workload.name, spec.workload
        )));
    }
    let cfg = spec.muarch_config();
    let local_hash = config_hash(&cfg);
    if local_hash != spec.config_hash {
        return Err(GridError::Spec(format!(
            "config hash mismatch for preset {:?}: local {local_hash}, coordinator {}",
            spec.preset, spec.config_hash
        )));
    }
    let golden = golden_for(&workload, &cfg);
    if golden.cycles != spec.golden_cycles {
        return Err(GridError::Spec(format!(
            "golden run mismatch: local {} cycles, coordinator {}",
            golden.cycles, spec.golden_cycles
        )));
    }
    Ok((workload, cfg, golden))
}

/// Connects to a coordinator and works until the campaign completes.
///
/// Returns the worker's own contribution statistics; the authoritative
/// merged campaign lives on the coordinator.
pub fn run_worker(wcfg: &WorkerConfig) -> Result<WorkerStats, GridError> {
    let mut stream = connect_with_retry(&wcfg.addr, wcfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    // Generous read timeout: the coordinator answers every request promptly,
    // so a silent minute means it is gone.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    send(
        &mut stream,
        &Msg::Hello {
            proto: PROTO_VERSION,
        },
    )?;
    let spec = match recv(&mut stream)? {
        Msg::Welcome { spec } => spec,
        Msg::Reject { reason } => return Err(GridError::Protocol(reason)),
        other => {
            return Err(GridError::Protocol(format!(
                "expected welcome, got {other:?}"
            )))
        }
    };
    let (workload, cfg, golden) = rebuild(&spec)?;
    let mut ccfg = spec.campaign_config();
    ccfg.threads = wcfg.threads;
    let runner = ShardRunner::new(&workload, &cfg, &golden, &ccfg);

    // The heartbeat thread shares the write half of the socket and the id
    // of the lease currently executing; it pings often enough that three
    // missed beats are needed before the coordinator declares us dead.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let current_lease: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let beat = Duration::from_millis((spec.lease_timeout_ms / 3).max(10));
    let heartbeat = {
        let writer = writer.clone();
        let current_lease = current_lease.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                // Sleep in short steps so shutdown never waits a full beat.
                std::thread::sleep(Duration::from_millis(10));
                if last.elapsed() < beat {
                    continue;
                }
                last = Instant::now();
                let lease = *current_lease.lock().unwrap();
                if let Some(lease) = lease {
                    if send(&mut *writer.lock().unwrap(), &Msg::Heartbeat { lease }).is_err() {
                        return; // coordinator gone; main thread will notice
                    }
                }
            }
        })
    };

    let mut stats = WorkerStats::default();
    let outcome = (|| -> Result<(), GridError> {
        loop {
            send(&mut *writer.lock().unwrap(), &Msg::LeaseRequest)?;
            match recv(&mut stream) {
                Ok(Msg::Lease { lease, indices }) => {
                    if wcfg
                        .max_batches
                        .is_some_and(|max| stats.batches as usize >= max)
                    {
                        // Test hook: die abruptly with a lease in hand. The
                        // shutdown closes the connection even though the
                        // heartbeat thread still holds a cloned handle.
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return Ok(());
                    }
                    *current_lease.lock().unwrap() = Some(lease);
                    let collector = Arc::new(MetricsCollector::new());
                    let results = runner.run_indices(&indices, Some(collector.clone()))?;
                    *current_lease.lock().unwrap() = None;
                    stats.batches += 1;
                    stats.runs += results.len() as u64;
                    send(
                        &mut *writer.lock().unwrap(),
                        &Msg::BatchDone {
                            lease,
                            results,
                            telemetry: collector.snapshot(),
                        },
                    )?;
                }
                Ok(Msg::Drain) => std::thread::sleep(Duration::from_millis(50)),
                Ok(Msg::Done) => return Ok(()),
                Ok(Msg::Reject { reason }) => return Err(GridError::Protocol(reason)),
                Ok(other) => {
                    return Err(GridError::Protocol(format!("unexpected message {other:?}")))
                }
                Err(FrameError::Closed) => {
                    return Err(GridError::Protocol(
                        "coordinator closed the connection".into(),
                    ))
                }
                Err(e) => return Err(e.into()),
            }
        }
    })();
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome.map(|()| stats)
}
