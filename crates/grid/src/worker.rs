//! The campaign worker: rebuilds campaigns locally from their specs, then
//! executes leases until the coordinator says there is nothing left.
//!
//! A worker carries no campaign state of its own. For every campaign it
//! serves it rebuilds everything — workload, microarchitecture
//! configuration, golden run, fault list, checkpoints — deterministically
//! from a compact [`CampaignSpec`], validates the rebuild against the
//! spec's `golden_cycles` and `config_hash` cross-checks, and then loops:
//! request a lease, run the leased indices through the shared
//! [`ShardRunner`] hot path, report the results plus a fresh per-batch
//! telemetry delta. A heartbeat thread keeps the active lease alive while
//! long batches execute, so slow workers are distinguished from dead ones.
//!
//! ## One worker, many campaigns
//!
//! Against the classic single-campaign [`Coordinator`](crate::Coordinator)
//! the welcome frame pins the spec and every lease implicitly belongs to
//! it. Against the multi-campaign [`Service`](crate::service::Service) a
//! v3 worker is *unpinned*: leases name their campaign, and the first
//! lease for an unseen campaign triggers a [`Msg::SpecRequest`] /
//! [`Msg::Spec`] exchange. Rebuilt runtimes (golden run included — the
//! expensive part) are cached per campaign for the life of the worker, so
//! interleaved leases from different tenants pay the rebuild once each.
//! A v2 peer never sees any of this: it is pinned to one campaign at
//! hello, exactly like the classic coordinator, and its frames stay
//! byte-identical to the v2 wire.
//!
//! ## Surviving the link
//!
//! The welcome carries a session token, and when a connection dies
//! mid-campaign (I/O error, corrupt frame, mid-session rejection) the
//! worker reconnects with exponential backoff plus deterministic jitter,
//! re-presents the token, verifies any re-pinned spec is unchanged, and
//! retransmits its last unacknowledged batch report. The coordinator's
//! first-responder-wins dedup makes the retransmission idempotent: if the
//! lease survived the outage the report is accepted once, and if it
//! expired the report is silently discarded and the indices re-execute
//! deterministically elsewhere — either way nothing is double-counted.

use crate::chaos::ChaosInterposer;
use crate::coord::GridError;
use crate::proto::{
    recv, send, FrameError, Msg, MsgKind, WireStats, MIN_PROTO_VERSION, PROTO_VERSION,
};
use crate::spec::CampaignSpec;
use crate::transport::{TcpTransport, Transport};
use avgi_faultsim::campaign::golden_for;
use avgi_faultsim::journal::config_hash;
use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::ShardRunner;
use avgi_rng::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::coord::lock_clean;

/// Worker-side configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Threads for batch execution (`0` = all available cores).
    pub threads: usize,
    /// How long to keep retrying each (re)connection attempt's TCP dial
    /// (covers the worker starting before the coordinator, and the
    /// coordinator restarting mid-campaign).
    pub connect_timeout: Duration,
    /// How long a read may sit silent before the coordinator is presumed
    /// gone and the session is retried. The coordinator answers every
    /// request promptly, so this is a liveness bound, not pacing; it also
    /// caps the heartbeat interval (a beat is always sent well inside one
    /// timeout window).
    pub read_timeout: Duration,
    /// Session-loss budget: how many *consecutive* failed handshake
    /// attempts the worker tolerates before giving up and reporting the
    /// underlying error. A successful (re-)attach resets the count — a
    /// worker that keeps getting real work keeps retrying.
    pub reconnect_attempts: u32,
    /// First reconnect backoff delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter (mixed with the attempt
    /// number; give concurrent workers different seeds to de-thunder them).
    pub jitter_seed: u64,
    /// Highest protocol version to advertise in the hello
    /// (default [`PROTO_VERSION`]). Pin to `2` to force the JSON dialect —
    /// the cross-version tests and CI smoke use this to prove a v2 fleet
    /// still interoperates with a v3 control plane.
    pub proto: u64,
    /// Test hook: after completing this many batches, drop the connection
    /// abruptly on the next lease instead of executing it — simulating a
    /// worker dying mid-campaign (`None` = run to completion).
    pub max_batches: Option<usize>,
    /// Fault injection on this worker's outbound frames (`None` = plain
    /// TCP). Test/soak instrumentation; see [`crate::chaos`].
    pub chaos: Option<Arc<ChaosInterposer>>,
    /// Per-kind tallies of this worker's *outbound* frames (`None` = no
    /// accounting). The bins use this to report how many bytes the binary
    /// dialect saves on `batch_done` versus JSON.
    pub wire: Option<Arc<WireStats>>,
}

impl WorkerConfig {
    /// A worker for `addr` with default tuning.
    pub fn new(addr: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            threads: 0,
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(60),
            reconnect_attempts: 8,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5EED,
            proto: PROTO_VERSION,
            max_batches: None,
            chaos: None,
            wire: None,
        }
    }

    fn tally(&self, kind: MsgKind, payload_len: usize) {
        if let Some(w) = &self.wire {
            w.record(kind, payload_len);
        }
    }
}

/// What one worker contributed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Batches executed and reported.
    pub batches: u64,
    /// Individual injections executed.
    pub runs: u64,
    /// Sessions lost and re-established mid-campaign.
    pub reconnects: u64,
    /// Distinct campaigns this worker built runtimes for.
    pub campaigns: u64,
}

/// Heartbeat pacing for a lease: a third of the lease deadline, further
/// tightened to half the read timeout so a beat always lands well inside
/// one read-timeout window.
///
/// The anti-spin floor (10ms) never loosens the lease bound: for very
/// short leases the floor collapses to `lease/3`. (It used to be applied
/// *last*, so a short lease under a long read timeout paced beats slower
/// than the lease itself — heartbeats landed after expiry and live
/// workers were spuriously requeued.)
pub fn heartbeat_interval(lease_timeout: Duration, read_timeout: Duration) -> Duration {
    let third = lease_timeout / 3;
    let floor = Duration::from_millis(10)
        .min(third)
        .max(Duration::from_millis(1));
    third.min(read_timeout / 2).max(floor)
}

/// Exponential backoff with deterministic jitter: attempt `n` sleeps a
/// uniform draw from `[cap_n / 2, cap_n]` where `cap_n = base * 2^n`,
/// clamped to the ceiling. The draw comes from a seeded [`Rng`], so a
/// worker's retry schedule is a pure function of (seed, attempt) — chaos
/// tests replay byte-identically — while distinct seeds still de-thunder a
/// fleet hitting a restarting coordinator.
#[derive(Debug)]
pub struct Backoff {
    rng: Rng,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule (next delay is the base-scale one).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            rng: Rng::seed_from_u64(seed),
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempt: 0,
        }
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over (the rng stream continues — a reset replays
    /// the delay *scale*, not the exact delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay in the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let scale = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let hi = scale.as_nanos().min(u128::from(u64::MAX)) as u64;
        let lo = hi / 2;
        Duration::from_nanos(lo + self.rng.gen_range_u64(hi - lo + 1))
    }
}

/// Dials the coordinator, retrying until `connect_timeout`, with the same
/// jittered exponential backoff the session loop uses (the coordinator may
/// be restarting). Logs attempt counts so a stuck worker is diagnosable.
fn connect_with_retry(wcfg: &WorkerConfig) -> Result<Box<dyn Transport>, GridError> {
    let deadline = Instant::now() + wcfg.connect_timeout;
    let mut backoff = Backoff::new(
        wcfg.backoff_base,
        wcfg.backoff_cap,
        wcfg.jitter_seed ^ 0xD1A1, // distinct stream from session-loss backoff
    );
    loop {
        match TcpTransport::connect(&wcfg.addr) {
            Ok(t) => {
                let t: Box<dyn Transport> = Box::new(t);
                return Ok(match &wcfg.chaos {
                    Some(chaos) => chaos.wrap(t),
                    None => t,
                });
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!(
                        "avgi-grid worker: giving up on {} after {} attempts: {e}",
                        wcfg.addr,
                        backoff.attempts() + 1
                    );
                    return Err(GridError::Io(e));
                }
                let delay = backoff.next_delay();
                eprintln!(
                    "avgi-grid worker: connect attempt {} to {} failed ({e}); retrying in {delay:?}",
                    backoff.attempts(),
                    wcfg.addr
                );
                std::thread::sleep(delay);
            }
        }
    }
}

/// Rebuilds the campaign the spec describes and cross-checks it.
fn rebuild(
    spec: &CampaignSpec,
) -> Result<
    (
        avgi_workloads::Workload,
        avgi_muarch::config::MuarchConfig,
        std::sync::Arc<avgi_muarch::trace::GoldenRun>,
    ),
    GridError,
> {
    let workload = avgi_workloads::by_index(spec.workload_id)
        .ok_or_else(|| GridError::Spec(format!("unknown workload id {}", spec.workload_id)))?;
    if workload.name != spec.workload {
        return Err(GridError::Spec(format!(
            "workload id {} is {:?} here, coordinator calls it {:?} — registry skew",
            spec.workload_id, workload.name, spec.workload
        )));
    }
    let cfg = spec.muarch_config();
    let local_hash = config_hash(&cfg);
    if local_hash != spec.config_hash {
        return Err(GridError::Spec(format!(
            "config hash mismatch for preset {:?}: local {local_hash}, coordinator {}",
            spec.preset, spec.config_hash
        )));
    }
    let golden = golden_for(&workload, &cfg);
    if golden.cycles != spec.golden_cycles {
        return Err(GridError::Spec(format!(
            "golden run mismatch: local {} cycles, coordinator {}",
            golden.cycles, spec.golden_cycles
        )));
    }
    Ok((workload, cfg, golden))
}

/// One campaign's locally rebuilt execution state, cached per campaign id
/// so interleaved leases from different tenants pay the rebuild (golden
/// run included) exactly once.
struct Runtime {
    spec: CampaignSpec,
    runner: ShardRunner,
    /// Heartbeat pacing for this campaign's leases.
    beat: Duration,
}

impl Runtime {
    fn build(spec: CampaignSpec, wcfg: &WorkerConfig) -> Result<Runtime, GridError> {
        let (workload, cfg, golden) = rebuild(&spec)?;
        let mut ccfg = spec.campaign_config();
        ccfg.threads = wcfg.threads;
        let runner = ShardRunner::new(&workload, &cfg, &golden, &ccfg);
        let beat = heartbeat_interval(
            Duration::from_millis(spec.lease_timeout_ms),
            wcfg.read_timeout,
        );
        Ok(Runtime { spec, runner, beat })
    }
}

/// A completed handshake.
struct Attach {
    stream: Box<dyn Transport>,
    /// The version both ends agreed to speak.
    proto: u64,
    session: u64,
    /// The campaign `spec` is pinned to (0 when unpinned).
    campaign: u64,
    /// `Some` when this link pins one campaign (classic coordinator, or a
    /// v2 link to the service); `None` on an unpinned v3 service link.
    spec: Option<CampaignSpec>,
}

/// What a handshake attempt produced.
enum Handshake {
    /// Welcomed in (possibly re-attached).
    Attached(Attach),
    /// Every campaign finished while we were away; nothing left to do.
    Finished,
}

/// Connects and handshakes, presenting `session` when re-attaching.
/// Duplicate frames from a chaotic link are tolerated: any number of
/// welcomes may arrive and the first one wins.
fn establish(wcfg: &WorkerConfig, session: Option<u64>) -> Result<Handshake, GridError> {
    let mut stream = connect_with_retry(wcfg)?;
    stream.set_read_timeout(Some(wcfg.read_timeout))?;
    let hello = Msg::Hello {
        proto: wcfg.proto,
        session,
    };
    // The hello itself is always JSON — the dialect is negotiated BY it.
    let n = send(&mut *stream, &hello, MIN_PROTO_VERSION)?;
    wcfg.tally(MsgKind::Hello, n);
    match recv(&mut *stream)? {
        Msg::Welcome {
            proto,
            session,
            campaign,
            spec,
        } => {
            if proto < MIN_PROTO_VERSION || proto > wcfg.proto {
                return Err(GridError::Protocol(format!(
                    "coordinator negotiated unusable protocol version {proto} (we offered {})",
                    wcfg.proto
                )));
            }
            Ok(Handshake::Attached(Attach {
                stream,
                proto,
                session,
                campaign,
                spec,
            }))
        }
        Msg::Done => Ok(Handshake::Finished),
        Msg::Reject { reason } => Err(GridError::Protocol(reason)),
        other => Err(GridError::Protocol(format!(
            "expected welcome, got {other:?}"
        ))),
    }
}

/// Why one session ended.
enum SessionEnd {
    /// The coordinator said the campaign is complete (or the death-test
    /// hook fired): the worker is done for good.
    Finished,
    /// The link failed; the session may be worth re-attaching.
    Lost(GridError),
}

/// Session-loss errors worth a reconnect. `Spec` and `Campaign` failures
/// are environmental (wrong binary, wrong registry) and never heal by
/// retrying; everything link-shaped — including a handshake rejection,
/// which under chaos is usually a corrupted hello — is retryable within
/// the attempt budget.
fn retryable(e: &GridError) -> bool {
    matches!(
        e,
        GridError::Io(_) | GridError::Frame(_) | GridError::Protocol(_)
    )
}

/// Absorbs a freshly pinned spec into the runtime cache, erroring if it
/// contradicts what we already built for that campaign (a coordinator
/// must never mutate a campaign mid-flight).
fn absorb_pinned(
    runtimes: &mut HashMap<u64, Runtime>,
    campaign: u64,
    spec: Option<CampaignSpec>,
    wcfg: &WorkerConfig,
    stats: &mut WorkerStats,
) -> Result<(), GridError> {
    let Some(spec) = spec else { return Ok(()) };
    match runtimes.get(&campaign) {
        Some(rt) if rt.spec != spec => Err(GridError::Spec(
            "campaign spec changed across reconnect".into(),
        )),
        Some(_) => Ok(()),
        None => {
            runtimes.insert(campaign, Runtime::build(spec, wcfg)?);
            stats.campaigns += 1;
            Ok(())
        }
    }
}

/// Connects to a coordinator and works until the campaign (or, against a
/// service, the whole submission stream) completes, reconnecting through
/// link failures.
///
/// Returns the worker's own contribution statistics; the authoritative
/// merged campaigns live on the coordinator.
pub fn run_worker(wcfg: &WorkerConfig) -> Result<WorkerStats, GridError> {
    let mut backoff = Backoff::new(wcfg.backoff_base, wcfg.backoff_cap, wcfg.jitter_seed);
    // Even the first handshake retries within the budget: on a chaotic link
    // the very first welcome can be a casualty.
    let mut attach = loop {
        match establish(wcfg, None) {
            Ok(Handshake::Attached(attach)) => break attach,
            Ok(Handshake::Finished) => return Ok(WorkerStats::default()),
            Err(e) if retryable(&e) && backoff.attempts() < wcfg.reconnect_attempts => {
                let delay = backoff.next_delay();
                eprintln!(
                    "avgi-grid worker: handshake attempt {} failed ({e}); retrying in {delay:?}",
                    backoff.attempts()
                );
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    };
    backoff.reset();
    let mut stats = WorkerStats::default();
    let mut runtimes: HashMap<u64, Runtime> = HashMap::new();
    absorb_pinned(
        &mut runtimes,
        attach.campaign,
        attach.spec.take(),
        wcfg,
        &mut stats,
    )?;
    let mut session = attach.session;
    let mut proto = attach.proto;
    let mut stream = attach.stream;

    // The last batch report whose delivery is unconfirmed; retransmitted on
    // re-attach (idempotent — see the module docs).
    let mut pending: Option<Msg> = None;
    loop {
        let end = drive_session(wcfg, proto, stream, &mut runtimes, &mut stats, &mut pending);
        let lost = match end {
            Ok(SessionEnd::Finished) => return Ok(stats),
            Ok(SessionEnd::Lost(e)) => e,
            Err(e) => return Err(e),
        };
        // Re-attach loop: each failed attempt burns budget and backs off.
        stream = loop {
            if backoff.attempts() >= wcfg.reconnect_attempts {
                eprintln!(
                    "avgi-grid worker: session {session} unrecoverable after {} attempts: {lost}",
                    backoff.attempts()
                );
                return Err(lost);
            }
            let delay = backoff.next_delay();
            eprintln!(
                "avgi-grid worker: session {session} lost ({lost}); re-attach attempt {} in {delay:?}",
                backoff.attempts()
            );
            std::thread::sleep(delay);
            match establish(wcfg, Some(session)) {
                Ok(Handshake::Attached(mut attach)) => {
                    absorb_pinned(
                        &mut runtimes,
                        attach.campaign,
                        attach.spec.take(),
                        wcfg,
                        &mut stats,
                    )?;
                    session = attach.session;
                    proto = attach.proto;
                    stats.reconnects += 1;
                    backoff.reset();
                    break attach.stream;
                }
                // Everything finished during the outage: our pending report
                // is moot (its indices completed — via us or a
                // reassignment), so this is success.
                Ok(Handshake::Finished) => return Ok(stats),
                Err(e) if retryable(&e) => {
                    eprintln!("avgi-grid worker: re-attach failed: {e}");
                }
                Err(e) => return Err(e),
            }
        };
    }
}

/// The heartbeat thread's view of the lease currently executing.
#[derive(Debug, Clone, Copy)]
struct ActiveLease {
    lease: u64,
    campaign: u64,
    beat: Duration,
}

/// Runs one connected session to its end. `Err` is fatal (no reconnect).
fn drive_session(
    wcfg: &WorkerConfig,
    proto: u64,
    stream: Box<dyn Transport>,
    runtimes: &mut HashMap<u64, Runtime>,
    stats: &mut WorkerStats,
    pending: &mut Option<Msg>,
) -> Result<SessionEnd, GridError> {
    let mut stream = stream;
    // The heartbeat thread shares the write half of the connection and the
    // identity of the lease currently executing; the pacing is clamped per
    // campaign (see [`heartbeat_interval`]) so several missed beats are
    // needed before the coordinator declares us dead.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let current_lease: Arc<Mutex<Option<ActiveLease>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = writer.clone();
        let current_lease = current_lease.clone();
        let stop = stop.clone();
        let wire = wcfg.wire.clone();
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                // Sleep in short steps so shutdown never waits a full beat.
                std::thread::sleep(Duration::from_millis(10));
                let Some(active) = *lock_clean(&current_lease) else {
                    continue;
                };
                if last.elapsed() < active.beat {
                    continue;
                }
                last = Instant::now();
                let beat = Msg::Heartbeat {
                    lease: active.lease,
                    campaign: active.campaign,
                };
                match send(&mut **lock_clean(&writer), &beat, proto) {
                    Ok(n) => {
                        if let Some(w) = &wire {
                            w.record(MsgKind::Heartbeat, n);
                        }
                    }
                    Err(_) => return, // coordinator gone; main thread will notice
                }
            }
        })
    };

    let outcome = (|| -> Result<SessionEnd, GridError> {
        let lost = |e: GridError| Ok(SessionEnd::Lost(e));
        // Retransmit the batch whose delivery the last session never
        // confirmed.
        if let Some(msg) = pending.as_ref() {
            match send(&mut **lock_clean(&writer), msg, proto) {
                Ok(n) => wcfg.tally(msg.kind(), n),
                Err(e) => return lost(e.into()),
            }
        }
        loop {
            match send(&mut **lock_clean(&writer), &Msg::LeaseRequest, proto) {
                Ok(n) => wcfg.tally(MsgKind::LeaseRequest, n),
                Err(e) => return lost(e.into()),
            }
            // Read until a usable reply: a chaotic link may replay stale
            // welcomes, which the handshake already consumed once.
            let reply = loop {
                match recv(&mut *stream) {
                    Ok(Msg::Welcome { .. }) => continue,
                    Ok(msg) => break msg,
                    Err(FrameError::Closed) => {
                        return lost(GridError::Protocol(
                            "coordinator closed the connection".into(),
                        ))
                    }
                    Err(e) => return lost(e.into()),
                }
            };
            // An in-order reply proves every earlier frame we sent — the
            // retransmission included — was consumed.
            *pending = None;
            match reply {
                Msg::Lease {
                    lease,
                    campaign,
                    indices,
                } => {
                    if wcfg
                        .max_batches
                        .is_some_and(|max| stats.batches as usize >= max)
                    {
                        // Test hook: die abruptly with a lease in hand. The
                        // shutdown closes the connection even though the
                        // heartbeat thread still holds a cloned handle.
                        let _ = stream.shutdown();
                        return Ok(SessionEnd::Finished);
                    }
                    // First lease from an unseen campaign: fetch its spec
                    // and build (and cache) the runtime before executing.
                    while !runtimes.contains_key(&campaign) {
                        match send(
                            &mut **lock_clean(&writer),
                            &Msg::SpecRequest { campaign },
                            proto,
                        ) {
                            Ok(n) => wcfg.tally(MsgKind::SpecRequest, n),
                            Err(e) => return lost(e.into()),
                        }
                        match recv(&mut *stream) {
                            Ok(Msg::Spec { campaign: c, spec }) => {
                                runtimes.insert(c, Runtime::build(spec, wcfg)?);
                                stats.campaigns += 1;
                            }
                            Ok(Msg::Welcome { .. }) => continue,
                            Ok(Msg::Done) => return Ok(SessionEnd::Finished),
                            Ok(Msg::Reject { reason }) => return lost(GridError::Protocol(reason)),
                            Ok(other) => {
                                return lost(GridError::Protocol(format!(
                                    "expected spec for campaign {campaign}, got {other:?}"
                                )))
                            }
                            Err(FrameError::Closed) => {
                                return lost(GridError::Protocol(
                                    "coordinator closed the connection".into(),
                                ))
                            }
                            Err(e) => return lost(e.into()),
                        }
                    }
                    let rt = &runtimes[&campaign];
                    *lock_clean(&current_lease) = Some(ActiveLease {
                        lease,
                        campaign,
                        beat: rt.beat,
                    });
                    let collector = Arc::new(MetricsCollector::new());
                    let results = rt.runner.run_indices(&indices, Some(collector.clone()))?;
                    *lock_clean(&current_lease) = None;
                    stats.batches += 1;
                    stats.runs += results.len() as u64;
                    let report = Msg::BatchDone {
                        lease,
                        campaign,
                        results,
                        telemetry: collector.snapshot(),
                    };
                    let sent = send(&mut **lock_clean(&writer), &report, proto);
                    // Hold the report for retransmission until the next
                    // in-order reply confirms it arrived.
                    *pending = Some(report);
                    match sent {
                        Ok(n) => wcfg.tally(MsgKind::BatchDone, n),
                        Err(e) => return lost(e.into()),
                    }
                }
                Msg::Drain => std::thread::sleep(Duration::from_millis(50)),
                Msg::Done => return Ok(SessionEnd::Finished),
                Msg::Reject { reason } => return lost(GridError::Protocol(reason)),
                other => return lost(GridError::Protocol(format!("unexpected message {other:?}"))),
            }
        }
    })();
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_pacing_never_exceeds_a_third_of_the_lease() {
        // The regression: the 10ms anti-spin floor used to be applied last,
        // so a short lease under a long read timeout paced beats slower
        // than lease/3 — they could land after the lease expired.
        let lease = Duration::from_millis(24);
        let beat = heartbeat_interval(lease, Duration::from_secs(60));
        assert!(
            beat <= lease / 3,
            "beat {beat:?} exceeds a third of the {lease:?} lease"
        );
        // Normal operating point: lease/3 wins, comfortably under rt/2.
        assert_eq!(
            heartbeat_interval(Duration::from_secs(30), Duration::from_secs(60)),
            Duration::from_secs(10)
        );
        // A short read timeout tightens pacing further below lease/3.
        assert_eq!(
            heartbeat_interval(Duration::from_secs(30), Duration::from_secs(4)),
            Duration::from_secs(2)
        );
        // Degenerate inputs still pace (no zero-interval spin loop).
        assert!(heartbeat_interval(Duration::ZERO, Duration::from_secs(60)) > Duration::ZERO);
    }
}
