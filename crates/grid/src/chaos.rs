//! Deterministic fault injection for the fabric itself.
//!
//! AVGI's premise is that you learn what a system tolerates by injecting
//! faults and observing outcomes; this module turns that method on the
//! campaign fabric. A [`ChaosTransport`] wraps any [`Transport`] and
//! perturbs the *outgoing* frame stream per a seeded [`ChaosPolicy`]:
//! frames can be dropped, bit-corrupted, duplicated, delayed, or the
//! connection severed mid-frame. Because every decision comes from an
//! [`avgi_rng::Rng`] seeded from `(policy seed, stream id)`, a chaos run is
//! reproducible — the same seed replays the same misfortune.
//!
//! Chaos rides the write path only: wrapping one side's transport perturbs
//! that side's outbound frames, so wrapping both peers covers both
//! directions. The fabric's correctness contract is that *none of this
//! changes the merged campaign*: frame CRCs turn corruption into detected
//! connection drops, session-token reconnect turns drops into retries, and
//! first-responder-wins lease accounting makes every retransmission
//! idempotent. `grid/tests/chaos.rs` and the `grid_chaos` bin hold the
//! fabric to that contract bit-for-bit.

use crate::transport::Transport;
use avgi_rng::Rng;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What fraction of frames suffer each fate (independent cumulative draws;
/// the probabilities should sum to well under 1.0 so most frames survive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// P(frame silently dropped).
    pub drop: f64,
    /// P(one bit of the frame body flipped — always CRC-detectable).
    pub corrupt: f64,
    /// P(frame delivered twice).
    pub duplicate: f64,
    /// P(connection severed mid-frame: a truncated frame reaches the peer,
    /// then the socket is shut down).
    pub sever: f64,
    /// P(frame delayed by up to [`max_delay`](Self::max_delay)).
    pub delay: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
}

impl ChaosPolicy {
    /// A policy that injects nothing (useful as a base for struct update).
    pub fn calm(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            sever: 0.0,
            delay: 0.0,
            max_delay: Duration::from_millis(5),
        }
    }

    /// The default test mix: every fault class enabled at rates a short
    /// campaign survives while still exercising each recovery path.
    pub fn stormy(seed: u64) -> Self {
        ChaosPolicy {
            drop: 0.06,
            corrupt: 0.06,
            duplicate: 0.04,
            sever: 0.02,
            delay: 0.08,
            ..ChaosPolicy::calm(seed)
        }
    }
}

/// Tally of injected faults, shared by every stream an interposer wrapped.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Frames passed through unharmed.
    pub delivered: AtomicU64,
    /// Frames silently dropped.
    pub dropped: AtomicU64,
    /// Frames with one bit flipped.
    pub corrupted: AtomicU64,
    /// Frames delivered twice.
    pub duplicated: AtomicU64,
    /// Connections severed mid-frame.
    pub severed: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected (everything except clean deliveries).
    pub fn injected(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.corrupted.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
            + self.severed.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
    }

    /// One summary line for logs.
    pub fn summary(&self) -> String {
        format!(
            "delivered {} | dropped {} | corrupted {} | duplicated {} | severed {} | delayed {}",
            self.delivered.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.corrupted.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.severed.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }
}

/// Wraps transports in [`ChaosTransport`]s, giving each wrapped stream its
/// own decision stream derived from `(policy seed, stream counter)` so a
/// reconnecting peer does not replay the exact misfortune that killed it.
#[derive(Debug)]
pub struct ChaosInterposer {
    policy: ChaosPolicy,
    streams: AtomicU64,
    stats: Arc<ChaosStats>,
}

impl ChaosInterposer {
    /// An interposer for `policy`.
    pub fn new(policy: ChaosPolicy) -> Self {
        ChaosInterposer {
            policy,
            streams: AtomicU64::new(0),
            stats: Arc::new(ChaosStats::default()),
        }
    }

    /// The policy this interposer applies.
    pub fn policy(&self) -> &ChaosPolicy {
        &self.policy
    }

    /// The shared fault tally across every wrapped stream.
    pub fn stats(&self) -> &Arc<ChaosStats> {
        &self.stats
    }

    /// Wraps one connection's transport.
    pub fn wrap(&self, inner: Box<dyn Transport>) -> Box<dyn Transport> {
        let stream_id = self.streams.fetch_add(1, Ordering::Relaxed);
        Box::new(ChaosTransport::new(
            inner,
            self.policy,
            stream_id,
            self.stats.clone(),
        ))
    }
}

/// Per-frame fates, in the order the cumulative roll checks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Sever,
    Drop,
    Corrupt,
    Duplicate,
    Delay,
    Deliver,
}

struct Decider {
    policy: ChaosPolicy,
    rng: Rng,
}

impl Decider {
    fn fate(&mut self) -> Fate {
        let roll = self.rng.gen_f64();
        let p = &self.policy;
        let mut acc = p.sever;
        if roll < acc {
            return Fate::Sever;
        }
        acc += p.drop;
        if roll < acc {
            return Fate::Drop;
        }
        acc += p.corrupt;
        if roll < acc {
            return Fate::Corrupt;
        }
        acc += p.duplicate;
        if roll < acc {
            return Fate::Duplicate;
        }
        acc += p.delay;
        if roll < acc {
            return Fate::Delay;
        }
        Fate::Deliver
    }
}

/// A [`Transport`] that injects seeded faults into its outgoing frames.
///
/// Reads pass through untouched; writes are reassembled into whole frames
/// (the wrapper understands the `length + payload + crc` layout from
/// [`crate::proto`]) and each completed frame draws its fate from the
/// decision stream. A severed connection poisons every clone of the
/// transport, mimicking a socket teardown.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    decider: Arc<Mutex<Decider>>,
    dead: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    wbuf: Vec<u8>,
}

impl ChaosTransport {
    /// Wraps `inner`; `stream_id` separates this stream's decision stream
    /// from its siblings under the same policy seed.
    pub fn new(
        inner: Box<dyn Transport>,
        policy: ChaosPolicy,
        stream_id: u64,
        stats: Arc<ChaosStats>,
    ) -> Self {
        // Mix the stream id into the seed SplitMix-style so consecutive ids
        // yield uncorrelated streams.
        let seed = policy
            .seed
            .wrapping_add(stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ChaosTransport {
            inner,
            decider: Arc::new(Mutex::new(Decider {
                policy,
                rng: Rng::seed_from_u64(seed),
            })),
            dead: Arc::new(AtomicBool::new(false)),
            stats,
            wbuf: Vec::new(),
        }
    }

    fn broken() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "connection severed by chaos",
        )
    }

    /// `write_all` that rides out `WouldBlock`/`Interrupted`: chaos decides
    /// fates per whole frame, so once a frame is fated to be delivered it
    /// must reach the inner transport in full even when that transport is a
    /// nonblocking service-side socket with a momentarily full send buffer.
    fn write_full(inner: &mut dyn Transport, bytes: &[u8]) -> std::io::Result<()> {
        let mut off = 0;
        while off < bytes.len() {
            match inner.write(&bytes[off..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "inner transport accepted no bytes",
                    ))
                }
                Ok(n) => off += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Applies fates to every complete frame buffered so far.
    fn drain_frames(&mut self) -> std::io::Result<()> {
        loop {
            if self.wbuf.len() < 4 {
                return Ok(());
            }
            let len = u32::from_be_bytes([self.wbuf[0], self.wbuf[1], self.wbuf[2], self.wbuf[3]])
                as usize;
            let total = 4 + len + crate::proto::FRAME_CRC_BYTES;
            if self.wbuf.len() < total {
                return Ok(());
            }
            let mut frame: Vec<u8> = self.wbuf.drain(..total).collect();
            let (fate, corrupt_bit, cut, delay) = {
                let mut d = self
                    .decider
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let fate = d.fate();
                // Draw the auxiliary values unconditionally so the decision
                // stream advances identically whatever the fate.
                let bit = d.rng.gen_range_usize((total - 4) * 8);
                let cut = 1 + d.rng.gen_range_usize(total - 1);
                let max_delay = d.policy.max_delay.as_millis().max(1) as u64;
                let delay = d.rng.gen_range_u64(max_delay);
                (fate, bit, cut, delay)
            };
            match fate {
                Fate::Drop => {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
                Fate::Corrupt => {
                    // Flip a bit past the length prefix (payload or CRC):
                    // framing stays intact, the CRC check must catch it.
                    frame[4 + corrupt_bit / 8] ^= 1 << (corrupt_bit % 8);
                    self.stats.corrupted.fetch_add(1, Ordering::Relaxed);
                    Self::write_full(&mut *self.inner, &frame)?;
                }
                Fate::Duplicate => {
                    self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    Self::write_full(&mut *self.inner, &frame)?;
                    Self::write_full(&mut *self.inner, &frame)?;
                }
                Fate::Delay => {
                    self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(delay));
                    Self::write_full(&mut *self.inner, &frame)?;
                }
                Fate::Sever => {
                    self.stats.severed.fetch_add(1, Ordering::Relaxed);
                    let _ = Self::write_full(&mut *self.inner, &frame[..cut]);
                    let _ = self.inner.flush();
                    self.dead.store(true, Ordering::SeqCst);
                    let _ = self.inner.shutdown();
                    return Err(Self::broken());
                }
                Fate::Deliver => {
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    Self::write_full(&mut *self.inner, &frame)?;
                }
            }
        }
    }
}

impl Read for ChaosTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::broken());
        }
        self.inner.read(buf)
    }
}

impl Write for ChaosTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::broken());
        }
        self.wbuf.extend_from_slice(buf);
        self.drain_frames()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::broken());
        }
        self.inner.flush()
    }
}

impl Transport for ChaosTransport {
    fn try_clone(&self) -> std::io::Result<Box<dyn Transport>> {
        Ok(Box::new(ChaosTransport {
            inner: self.inner.try_clone()?,
            decider: self.decider.clone(),
            dead: self.dead.clone(),
            stats: self.stats.clone(),
            wbuf: Vec::new(),
        }))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }

    fn shutdown(&self) -> std::io::Result<()> {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{write_frame, FrameBuffer, FrameError};

    /// A loopback transport: writes land in a shared buffer the test reads.
    #[derive(Default)]
    struct Loopback {
        out: Arc<Mutex<Vec<u8>>>,
        down: Arc<AtomicBool>,
    }

    impl Read for Loopback {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Ok(0)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.out.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Transport for Loopback {
        fn try_clone(&self) -> std::io::Result<Box<dyn Transport>> {
            Ok(Box::new(Loopback {
                out: self.out.clone(),
                down: self.down.clone(),
            }))
        }

        fn set_read_timeout(&self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn set_nonblocking(&self, _nb: bool) -> std::io::Result<()> {
            Ok(())
        }

        fn shutdown(&self) -> std::io::Result<()> {
            self.down.store(true, Ordering::SeqCst);
            Ok(())
        }
    }

    fn run_frames(policy: ChaosPolicy, frames: usize) -> (Vec<u8>, Arc<ChaosStats>, bool) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let mut t = ChaosTransport::new(
            Box::new(Loopback {
                out: out.clone(),
                down: down.clone(),
            }),
            policy,
            0,
            stats.clone(),
        );
        for i in 0..frames {
            if write_frame(&mut t, format!("frame-{i}").as_bytes()).is_err() {
                break;
            }
        }
        let bytes = out.lock().unwrap().clone();
        (bytes, stats, down.load(Ordering::SeqCst))
    }

    #[test]
    fn calm_policy_is_transparent() {
        let (bytes, stats, down) = run_frames(ChaosPolicy::calm(1), 10);
        assert!(!down);
        assert_eq!(stats.delivered.load(Ordering::Relaxed), 10);
        assert_eq!(stats.injected(), 0);
        let mut fb = FrameBuffer::new();
        let mut got = 0;
        let mut cursor = &bytes[..];
        while let Ok(Some(_)) = fb.poll(&mut cursor) {
            got += 1;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn same_seed_same_misfortune() {
        let policy = ChaosPolicy::stormy(0xC0FFEE);
        let (a, sa, _) = run_frames(policy, 200);
        let (b, sb, _) = run_frames(policy, 200);
        assert_eq!(a, b, "chaos must be deterministic in the seed");
        assert_eq!(sa.summary(), sb.summary());
        assert!(sa.injected() > 0, "stormy policy must actually inject");
        let (c, _, _) = run_frames(ChaosPolicy::stormy(0xDECAF), 200);
        assert_ne!(a, c, "different seeds, different misfortune");
    }

    #[test]
    fn corrupted_frames_fail_the_crc_check() {
        let policy = ChaosPolicy {
            corrupt: 1.0,
            ..ChaosPolicy::calm(7)
        };
        let (bytes, stats, _) = run_frames(policy, 1);
        assert_eq!(stats.corrupted.load(Ordering::Relaxed), 1);
        let mut fb = FrameBuffer::new();
        match fb.poll(&mut &bytes[..]) {
            Err(FrameError::Crc { .. }) => {}
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn sever_truncates_and_poisons_every_handle() {
        let policy = ChaosPolicy {
            sever: 1.0,
            ..ChaosPolicy::calm(3)
        };
        let out = Arc::new(Mutex::new(Vec::new()));
        let down = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let mut t = ChaosTransport::new(
            Box::new(Loopback {
                out: out.clone(),
                down: down.clone(),
            }),
            policy,
            0,
            stats.clone(),
        );
        let mut clone = Transport::try_clone(&t).unwrap();
        assert!(write_frame(&mut t, b"doomed").is_err());
        assert!(down.load(Ordering::SeqCst), "socket must be shut down");
        // The peer got a strict prefix of the frame: a torn frame.
        let full = {
            let mut w = Vec::new();
            write_frame(&mut w, b"doomed").unwrap();
            w
        };
        let sent = out.lock().unwrap().clone();
        assert!(!sent.is_empty() && sent.len() < full.len());
        assert_eq!(sent[..], full[..sent.len()]);
        // Every clone is poisoned.
        assert!(write_frame(&mut clone, b"after").is_err());
        let mut buf = [0u8; 1];
        assert!(clone.read(&mut buf).is_err());
    }

    #[test]
    fn duplicated_frames_arrive_twice_intact() {
        let policy = ChaosPolicy {
            duplicate: 1.0,
            ..ChaosPolicy::calm(9)
        };
        let (bytes, stats, _) = run_frames(policy, 1);
        assert_eq!(stats.duplicated.load(Ordering::Relaxed), 1);
        let mut fb = FrameBuffer::new();
        let mut cursor = &bytes[..];
        let mut got = Vec::new();
        while let Ok(Some(f)) = fb.poll(&mut cursor) {
            got.push(f);
        }
        assert_eq!(got, vec![b"frame-0".to_vec(), b"frame-0".to_vec()]);
    }
}
