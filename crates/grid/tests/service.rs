//! The control plane end-to-end: many tenants, one fleet, no shared bits.
//!
//! Every test runs a real [`Service`] event loop on localhost — HTTP
//! submissions, durable queue, fair-share leases — with real workers, and
//! holds the fabric's acceptance bar *per tenant*: each campaign's final
//! report (results in index order plus merged telemetry deterministic
//! counters) must be byte-identical to a single-process run of the same
//! submission, no matter how the campaigns interleave on the shared
//! workers, which wire dialect each worker speaks, or how much chaos one
//! tenant's links absorb.

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig, DurabilityPolicy, RunMode};
use avgi_grid::service::reference_report;
use avgi_grid::{
    ChaosInterposer, ChaosPolicy, Service, ServiceConfig, ServiceStats, SubmissionQueue,
    SubmitSpec, WorkerConfig,
};
use avgi_muarch::Structure;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scratch directory unique to one test (queue + journals live here).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avgi-grid-service-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One blocking HTTP exchange against the service's one-shot surface.
fn http(addr: SocketAddr, request: String) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_nodelay(true).ok()?;
    s.write_all(request.as_bytes()).ok()?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok()?;
    let status = raw.split(' ').nth(1)?.parse().ok()?;
    Some((status, raw.split_once("\r\n\r\n")?.1.to_string()))
}

fn http_get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    http(addr, format!("GET {path} HTTP/1.1\r\nHost: svc\r\n\r\n"))
}

/// Submits a campaign over HTTP; returns its id.
fn submit(addr: SocketAddr, spec: &SubmitSpec) -> u64 {
    let body = spec.to_json();
    let (status, resp) = http(
        addr,
        format!(
            "POST /campaigns HTTP/1.1\r\nHost: svc\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
    .expect("service reachable");
    assert_eq!(status, 201, "submission refused: {resp}");
    let at = resp.find("\"id\":").expect("response carries id") + 5;
    resp[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Polls a campaign's status until it reports done; returns the final body.
fn wait_done(addr: SocketAddr, id: u64, timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        if let Some((200, body)) = http_get(addr, &format!("/campaigns/{id}")) {
            if body.contains("\"done\":true") {
                return body;
            }
        }
        assert!(
            start.elapsed() < timeout,
            "campaign {id} did not finish within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The `"report":{...}` object out of a finished campaign's status body.
fn report_of(body: &str) -> &str {
    let at = body
        .find("\"report\":")
        .expect("finished body carries a report");
    &body[at + "\"report\":".len()..body.len() - 1]
}

/// Builds the identical report from a single-process run of `spec` — the
/// per-tenant bit-identity reference.
fn reference_for(spec: &SubmitSpec) -> String {
    let w = avgi_workloads::by_name(&spec.workload).unwrap();
    let cfg = spec.preset.config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let mut ccfg = CampaignConfig::new(spec.structure, spec.faults, spec.mode)
        .with_seed(spec.seed)
        .with_burst(spec.burst_width);
    ccfg.checkpoints = spec.checkpoints;
    let collector = Arc::new(MetricsCollector::new());
    let result = run_campaign(&w, &cfg, &golden, &ccfg.with_observer(collector.clone()));
    reference_report(
        &spec.workload,
        spec.structure,
        golden.cycles,
        &result.results,
        &collector.snapshot(),
    )
}

/// Short-fuse worker tuning (mirrors the chaos tests).
fn worker_config(addr: &str, jitter_seed: u64) -> WorkerConfig {
    let mut w = WorkerConfig::new(addr.to_string());
    w.threads = 2;
    w.connect_timeout = Duration::from_secs(2);
    w.read_timeout = Duration::from_secs(2);
    w.reconnect_attempts = 8;
    w.backoff_base = Duration::from_millis(20);
    w.backoff_cap = Duration::from_millis(250);
    w.jitter_seed = jitter_seed;
    w
}

/// A running service plus the handles a test needs to talk to and stop it.
struct Harness {
    fabric: String,
    http: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<Result<ServiceStats, avgi_grid::GridError>>,
}

impl Harness {
    fn start(dir: &std::path::Path, batch: usize) -> Harness {
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ServiceConfig {
            bind: "127.0.0.1:0".into(),
            http_bind: Some("127.0.0.1:0".into()),
            queue: dir.join("queue.jsonl"),
            journal_dir: Some(dir.join("journals")),
            batch,
            lease_timeout: Duration::from_secs(2),
            durability: DurabilityPolicy::Flush,
            deadline: Some(Duration::from_secs(180)),
            stop: Some(stop.clone()),
            ..ServiceConfig::default()
        };
        let service = Service::bind(cfg).unwrap();
        let fabric = service.local_addr().unwrap().to_string();
        let http = service.http_addr().unwrap();
        let thread = std::thread::spawn(move || service.run());
        Harness {
            fabric,
            http,
            stop,
            thread,
        }
    }

    /// Signals shutdown and returns the service's final statistics.
    fn finish(self) -> ServiceStats {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().unwrap().unwrap()
    }
}

#[test]
fn interleaved_campaigns_on_a_shared_fleet_are_bit_identical_per_tenant() {
    let dir = scratch("interleaved");
    let svc = Harness::start(&dir, 4);

    // Two tenants with nothing in common: different structures, seeds,
    // modes, and sizes, interleaved over the same three v3 workers.
    let spec_a = {
        let mut s = SubmitSpec::new("bitcount", Structure::RegFile, 36, 0xA11CE);
        s.mode = RunMode::Instrumented;
        s
    };
    let spec_b = {
        let mut s = SubmitSpec::new("bitcount", Structure::Rob, 28, 0xB0B);
        s.mode = RunMode::EndToEnd;
        s.weight = 3;
        s
    };
    let id_a = submit(svc.http, &spec_a);
    let id_b = submit(svc.http, &spec_b);
    assert_ne!(id_a, id_b);

    let workers: Vec<_> = (0..3)
        .map(|i| {
            let wcfg = worker_config(&svc.fabric, 0x5EED_0100 + i);
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();

    let body_a = wait_done(svc.http, id_a, Duration::from_secs(120));
    let body_b = wait_done(svc.http, id_b, Duration::from_secs(120));
    let stats = svc.finish();
    for t in workers {
        let _ = t.join().unwrap();
    }

    assert_eq!(report_of(&body_a), reference_for(&spec_a));
    assert_eq!(report_of(&body_b), reference_for(&spec_b));
    assert_eq!(stats.campaigns_completed, 2);
    assert_eq!(stats.campaigns_submitted, 2);
    assert!(stats.workers_seen >= 3, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_storm_on_one_tenant_leaves_every_tenant_bit_identical() {
    let dir = scratch("chaos");
    let svc = Harness::start(&dir, 4);

    // Tenant A outranks tenant B, so the v2 worker — whose link takes the
    // whole storm — pins to A at hello. B's frames only ever ride the
    // clean v3 links: the storm is tenant-scoped by construction, and both
    // merges must still come out exact.
    let spec_a = {
        let mut s = SubmitSpec::new("bitcount", Structure::RegFile, 40, 0xC11A05);
        s.priority = 5;
        s
    };
    let spec_b = SubmitSpec::new("bitcount", Structure::Rob, 30, 0x5AFE);
    let id_a = submit(svc.http, &spec_a);
    let id_b = submit(svc.http, &spec_b);

    let chaos = Arc::new(ChaosInterposer::new(ChaosPolicy::stormy(0xC4A0_5E1F)));
    let v2 = {
        let mut w = worker_config(&svc.fabric, 0xD1CE);
        w.proto = 2;
        w.chaos = Some(chaos.clone());
        std::thread::spawn(move || avgi_grid::run_worker(&w))
    };
    // Let the v2 worker land at least one accepted batch on A before the
    // v3 fleet joins, so both wire dialects measurably carry batch_done
    // traffic.
    let start = Instant::now();
    loop {
        if let Some((200, body)) = http_get(svc.http, &format!("/campaigns/{id_a}")) {
            let done = body.contains("\"done\":true");
            let progressed = !body.contains("\"completed\":0");
            if done || progressed {
                break;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(90),
            "v2 worker never landed a batch through the storm"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let v3s: Vec<_> = (0..2)
        .map(|i| {
            let wcfg = worker_config(&svc.fabric, 0x5EED_0200 + i);
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();

    let body_a = wait_done(svc.http, id_a, Duration::from_secs(150));
    let body_b = wait_done(svc.http, id_b, Duration::from_secs(150));

    // The fleet view carries per-dialect wire tallies; grab them before
    // shutdown. Both dialects must have carried batch reports, and the
    // binary encoding must be measurably smaller per frame than JSON.
    let (_, fleet) = http_get(svc.http, "/fleet").expect("fleet endpoint up");
    let stats = svc.finish();
    let _ = v2.join().unwrap();
    for t in v3s {
        let _ = t.join().unwrap();
    }

    assert_eq!(report_of(&body_a), reference_for(&spec_a));
    assert_eq!(report_of(&body_b), reference_for(&spec_b));
    assert!(
        chaos.stats().injected() > 0,
        "storm policy must actually injure the link"
    );

    let batch_done = |dialect: &str| -> (u64, u64) {
        let at = fleet.find(&format!("\"{dialect}\":")).unwrap();
        let tail = &fleet[at..];
        let at = tail.find("\"batch_done\":").unwrap();
        let obj = &tail[at..];
        let frames_at = obj.find("\"frames\":").unwrap() + 9;
        let frames: u64 = obj[frames_at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap();
        let bytes_at = obj.find("\"bytes\":").unwrap() + 8;
        let bytes: u64 = obj[bytes_at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap();
        (frames, bytes)
    };
    let (v2_frames, v2_bytes) = batch_done("v2");
    let (v3_frames, v3_bytes) = batch_done("v3");
    assert!(
        v2_frames > 0,
        "v2 dialect carried no batch reports: {fleet}"
    );
    assert!(
        v3_frames > 0,
        "v3 dialect carried no batch reports: {fleet}"
    );
    assert!(
        v3_bytes * v2_frames < v2_bytes * v3_frames,
        "binary batch_done must be smaller per frame: v2 {v2_bytes}B/{v2_frames}f vs v3 {v3_bytes}B/{v3_frames}f"
    );
    eprintln!(
        "[wire] batch_done v2 {:.0} B/frame vs v3 {:.0} B/frame | service stats: {stats:?}",
        v2_bytes as f64 / v2_frames as f64,
        v3_bytes as f64 / v3_frames as f64,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn service_restart_resumes_queued_campaigns_bit_identically() {
    let dir = scratch("resume");
    let queue_path = dir.join("queue.jsonl");
    let journal_dir = dir.join("journals");
    std::fs::create_dir_all(&journal_dir).unwrap();

    // A submission journaled by a "previous incarnation" of the service,
    // with the first K results already sealed in its campaign journal —
    // exactly the disk state a crash mid-campaign leaves behind.
    let spec = {
        let mut s = SubmitSpec::new("bitcount", Structure::RegFile, 30, 0x7E5C0E);
        s.mode = RunMode::Instrumented;
        s
    };
    let id = {
        let mut queue = SubmissionQueue::open(&queue_path).unwrap();
        queue.submit(spec.clone()).unwrap()
    };
    const RESUMED: usize = 10;
    {
        use avgi_faultsim::journal::{CampaignKey, Journal};
        let w = avgi_workloads::by_name(&spec.workload).unwrap();
        let cfg = spec.preset.config();
        let golden = avgi_faultsim::golden_for(&w, &cfg);
        let mut ccfg = CampaignConfig::new(spec.structure, spec.faults, spec.mode)
            .with_seed(spec.seed)
            .with_burst(spec.burst_width);
        ccfg.checkpoints = spec.checkpoints;
        let reference = run_campaign(&w, &cfg, &golden, &ccfg);
        let key = CampaignKey::new(w.name, &cfg, golden.cycles, &ccfg);
        let (mut journal, done) = Journal::open_with(
            &journal_dir.join(format!("campaign-{id}.jsonl")),
            &key,
            DurabilityPolicy::Flush,
        )
        .unwrap();
        assert!(done.is_empty());
        for (i, r) in reference.results.iter().take(RESUMED).enumerate() {
            journal.append(i, r).unwrap();
        }
        journal.sync().unwrap();
    }

    // The "restarted" service must pick the campaign up from the queue,
    // restore the journaled prefix without re-executing it, and finish the
    // rest into a byte-identical report.
    let svc = Harness::start(&dir, 4);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let wcfg = worker_config(&svc.fabric, 0x5EED_0300 + i);
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();
    let body = wait_done(svc.http, id, Duration::from_secs(120));
    let stats = svc.finish();
    for t in workers {
        let _ = t.join().unwrap();
    }

    assert_eq!(report_of(&body), reference_for(&spec));
    assert_eq!(stats.campaigns_resumed, 1, "{stats:?}");
    assert_eq!(stats.results_resumed, RESUMED as u64, "{stats:?}");
    assert_eq!(stats.campaigns_completed, 1, "{stats:?}");

    // After completion the queue must be drained: a second restart has
    // nothing to resume.
    let queue = SubmissionQueue::open(&queue_path).unwrap();
    assert!(queue.pending().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_worker_cross_version_handshake_completes_a_campaign() {
    let dir = scratch("crossver");
    let svc = Harness::start(&dir, 4);
    let spec = SubmitSpec::new("bitcount", Structure::RegFile, 24, 0x0DDF00D);
    let id = submit(svc.http, &spec);

    // A lone last-release worker: hellos at proto 2, negotiates the JSON
    // dialect, gets pinned to the only campaign, and carries it end to end.
    let worker = {
        let mut w = worker_config(&svc.fabric, 0xF00D);
        w.proto = 2;
        std::thread::spawn(move || avgi_grid::run_worker(&w))
    };
    let body = wait_done(svc.http, id, Duration::from_secs(120));
    let stats = svc.finish();
    let wstats = worker.join().unwrap().unwrap();

    assert_eq!(report_of(&body), reference_for(&spec));
    assert_eq!(stats.campaigns_completed, 1);
    assert_eq!(wstats.campaigns, 1);
    assert!(wstats.runs >= 24, "{wstats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
