//! End-to-end grid campaigns over real localhost TCP sockets.
//!
//! The acceptance bar for the fabric: a coordinator plus several workers
//! must produce a merged [`CampaignResult`] *and* merged telemetry
//! deterministic counters bit-identical to a single-process
//! [`run_campaign`] of the same configuration — including when a worker
//! dies mid-campaign and when the coordinator restarts from its journal.

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig, CampaignResult, MetricsSnapshot, RunMode};
use avgi_grid::{ConfigPreset, Coordinator, GridConfig, GridOutcome, WorkerConfig};
use avgi_muarch::Structure;
use std::sync::Arc;
use std::time::Duration;

const FAULTS: usize = 48;

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::Instrumented).with_seed(0xE2E)
}

/// The single-process reference: results plus observed telemetry.
fn reference() -> (CampaignResult, MetricsSnapshot) {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = ConfigPreset::Big.config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let collector = Arc::new(MetricsCollector::new());
    let ccfg = campaign_config().with_observer(collector.clone());
    let result = run_campaign(&w, &cfg, &golden, &ccfg);
    (result, collector.snapshot())
}

/// Runs a distributed campaign with the given worker configurations.
fn run_grid(grid: GridConfig, workers: Vec<WorkerConfig>) -> GridOutcome {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let coord = Coordinator::bind(&w, ConfigPreset::Big, &campaign_config(), &grid).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let coord_thread = std::thread::spawn(move || coord.run());
    let worker_threads: Vec<_> = workers
        .into_iter()
        .map(|mut wcfg| {
            wcfg.addr = addr.clone();
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();
    let outcome = coord_thread.join().unwrap().unwrap();
    for t in worker_threads {
        // Healthy workers must exit cleanly; the death-hook worker returns
        // Ok with its partial stats.
        t.join().unwrap().unwrap();
    }
    outcome
}

fn assert_matches_reference(outcome: &GridOutcome) {
    let (reference, telemetry) = reference();
    assert_eq!(outcome.result.results, reference.results);
    assert_eq!(outcome.result.workload, reference.workload);
    assert_eq!(outcome.result.golden_cycles, reference.golden_cycles);
    assert_eq!(
        outcome.telemetry.deterministic_counters_json(),
        telemetry.deterministic_counters_json(),
        "merged telemetry must be bit-identical to single-process"
    );
}

#[test]
fn three_workers_match_single_process_bit_for_bit() {
    let grid = GridConfig {
        batch: 7, // deliberately not a divisor of the fault count
        lease_timeout: Duration::from_secs(20),
        deadline: Some(Duration::from_secs(300)),
        ..GridConfig::default()
    };
    let workers = (0..3)
        .map(|_| {
            let mut w = WorkerConfig::new(String::new());
            w.threads = 2;
            w
        })
        .collect();
    let outcome = run_grid(grid, workers);
    assert_matches_reference(&outcome);
    assert_eq!(outcome.stats.workers_seen, 3);
    assert!(outcome.stats.leases_granted >= (FAULTS / 7) as u64);
    assert_eq!(outcome.stats.batches_rejected, 0);
}

#[test]
fn worker_death_mid_campaign_converges_via_lease_reassignment() {
    let grid = GridConfig {
        // Small batches: plenty of leases remain when the dying worker asks
        // for its fatal second one, so the death always happens mid-campaign.
        batch: 4,
        lease_timeout: Duration::from_secs(20),
        deadline: Some(Duration::from_secs(300)),
        ..GridConfig::default()
    };
    // One worker dies holding a lease after its first completed batch; the
    // healthy worker must pick up the abandoned indices.
    let mut dying = WorkerConfig::new(String::new());
    dying.threads = 2;
    dying.max_batches = Some(1);
    let mut healthy = WorkerConfig::new(String::new());
    healthy.threads = 2;
    let outcome = run_grid(grid, vec![dying, healthy]);
    assert_matches_reference(&outcome);
    assert!(
        outcome.stats.leases_reassigned >= 1,
        "the dead worker's lease must be reassigned, stats: {:?}",
        outcome.stats
    );
}

#[test]
fn coordinator_restart_resumes_from_journal() {
    let journal =
        std::env::temp_dir().join(format!("avgi-grid-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let grid = GridConfig {
        batch: 8,
        lease_timeout: Duration::from_secs(20),
        journal: Some(journal.clone()),
        deadline: Some(Duration::from_secs(300)),
        ..GridConfig::default()
    };
    let mut w1 = WorkerConfig::new(String::new());
    w1.threads = 2;
    let outcome = run_grid(grid.clone(), vec![w1.clone()]);
    assert_matches_reference(&outcome);

    // Simulate a coordinator crash partway through: keep the journal header
    // plus half the records, then restart. The resumed coordinator must
    // re-lease only the missing half and still match the reference exactly.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 1 + FAULTS);
    std::fs::write(&journal, lines[..1 + FAULTS / 2].concat()).unwrap();

    let outcome = run_grid(grid, vec![w1]);
    assert_matches_reference(&outcome);
    assert_eq!(outcome.stats.resumed, (FAULTS / 2) as u64);
    let _ = std::fs::remove_file(&journal);
}
