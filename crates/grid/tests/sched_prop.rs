//! Property tests for [`avgi_grid::sched::FairScheduler`].
//!
//! The unit tests in `sched.rs` pin exact pick sequences for hand-built
//! scenarios; this suite drives the scheduler with *randomized* (but
//! seeded and reproducible) submit/lease/complete/requeue traffic and
//! checks the properties that must survive any interleaving:
//!
//! * a lease is never granted to a campaign with an empty queue, at or
//!   over its quota, or below the highest eligible priority tier;
//! * the model state the caller reports (queued/outstanding) is mirrored
//!   exactly, so quotas bound in-flight work at every step;
//! * among same-priority campaigns with backlog, smooth WRR converges to
//!   the configured weight ratios — including when the backlog arrives in
//!   adaptive-campaign-style batch bursts rather than all up front;
//! * the whole walk is a pure function of the op sequence (replaying the
//!   same seed reproduces the same picks).

use avgi_grid::sched::{FairScheduler, ShareConfig};
use avgi_rng::Rng;
use std::collections::BTreeMap;

/// The caller-side mirror of what the scheduler has been told.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ModelEntry {
    share: ShareConfig,
    queued: usize,
    outstanding: usize,
}

/// One randomized scheduler walk; returns the pick trace for the
/// determinism assertion.
fn random_walk(seed: u64, steps: usize) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut sched = FairScheduler::new();
    let mut model: BTreeMap<u64, ModelEntry> = BTreeMap::new();
    let mut picks = Vec::new();

    // A small stable of campaigns with diverse shares.
    for id in 0..5u64 {
        let share = ShareConfig {
            priority: (rng.gen_range_u64(2)) as u32,
            weight: (1 + rng.gen_range_u64(8)) as u32,
            quota: rng.gen_range_u64(5) as usize, // 0 = unlimited
        };
        let queued = rng.gen_range_u64(30) as usize;
        sched.register(id, share, queued);
        model.insert(
            id,
            ModelEntry {
                share,
                queued,
                outstanding: 0,
            },
        );
    }

    for _ in 0..steps {
        match rng.gen_range_u64(10) {
            // Fresh submission growth (adaptive campaigns enqueue batch by
            // batch, so growth in mid-flight bursts is the common case).
            0..=2 => {
                let id = rng.gen_range_u64(5);
                let n = 1 + rng.gen_range_u64(40) as usize;
                sched.enqueued(id, n);
                model.get_mut(&id).unwrap().queued += n;
            }
            // A worker finished part of a lease.
            3 | 4 => {
                let id = rng.gen_range_u64(5);
                let e = model.get_mut(&id).unwrap();
                let n = rng.gen_range_u64(3) as usize;
                sched.completed(id, n);
                e.outstanding = e.outstanding.saturating_sub(n);
            }
            // A lease expired and its runs went back to their own queue.
            5 => {
                let id = rng.gen_range_u64(5);
                let e = model.get_mut(&id).unwrap();
                let n = rng.gen_range_u64(3) as usize;
                sched.requeued(id, n);
                let back = e.outstanding.min(n);
                let clawed = n - back; // saturating part adds to queue too
                e.outstanding -= back;
                e.queued += back + clawed;
            }
            // A worker asks for work.
            _ => {
                if let Some(id) = sched.pick(None) {
                    let e = &model[&id];
                    assert!(e.queued > 0, "picked campaign {id} with empty queue");
                    assert!(
                        e.share.quota == 0 || e.outstanding < e.share.quota,
                        "picked campaign {id} at quota ({} outstanding of {})",
                        e.outstanding,
                        e.share.quota
                    );
                    // Priority: no eligible campaign sits in a higher tier.
                    let top = model
                        .values()
                        .filter(|m| {
                            m.queued > 0 && (m.share.quota == 0 || m.outstanding < m.share.quota)
                        })
                        .map(|m| m.share.priority)
                        .max()
                        .unwrap();
                    assert_eq!(
                        e.share.priority, top,
                        "picked campaign {id} below the top eligible tier"
                    );
                    sched.leased(id, 1);
                    let e = model.get_mut(&id).unwrap();
                    e.queued -= 1;
                    e.outstanding += 1;
                    picks.push(id);
                }
            }
        }
        // The scheduler's queue view must mirror the model exactly.
        for (&id, e) in &model {
            assert_eq!(sched.queued(id), e.queued, "queue drift for {id}");
        }
        // Quotas bound in-flight work at every step, not just at pick time.
        for (&id, e) in &model {
            if e.share.quota > 0 {
                assert!(
                    e.outstanding <= e.share.quota,
                    "campaign {id} exceeded its quota"
                );
            }
        }
    }
    picks
}

#[test]
fn random_traffic_never_violates_quota_or_priority() {
    for seed in 0..20u64 {
        let picks = random_walk(seed, 600);
        assert!(!picks.is_empty(), "seed {seed}: walk granted no leases");
    }
}

#[test]
fn the_walk_is_deterministic() {
    for seed in [3u64, 17, 255] {
        assert_eq!(random_walk(seed, 400), random_walk(seed, 400));
    }
}

/// Helper: lease-and-complete `rounds` picks, tallying per-campaign counts.
fn tally(sched: &mut FairScheduler, rounds: usize) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for _ in 0..rounds {
        if let Some(id) = sched.pick(None) {
            sched.leased(id, 1);
            sched.completed(id, 1);
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn wrr_converges_to_weight_ratios_with_full_queues() {
    let weights = [1u32, 2, 5];
    let mut sched = FairScheduler::new();
    for (id, &w) in weights.iter().enumerate() {
        sched.register(
            id as u64,
            ShareConfig {
                weight: w,
                ..ShareConfig::default()
            },
            10_000,
        );
    }
    let rounds = 4000usize;
    let counts = tally(&mut sched, rounds);
    let total_w: u32 = weights.iter().sum();
    for (id, &w) in weights.iter().enumerate() {
        let expect = rounds * w as usize / total_w as usize;
        let got = counts[&(id as u64)];
        // Smooth WRR is exact up to one cycle of rounding; give it ±1 %.
        assert!(
            got.abs_diff(expect) <= rounds / 100,
            "campaign {id} (weight {w}): {got} leases, expected ~{expect}"
        );
    }
}

#[test]
fn wrr_converges_under_bursty_adaptive_enqueues() {
    // Adaptive campaigns do not queue their whole budget up front: each
    // batch is enqueued when the previous one finishes. Feed three
    // campaigns in interleaved 40-run bursts and check the ratios still
    // come out — fairness must not depend on backlog arriving at once.
    let weights = [1u32, 3, 4];
    let mut rng = Rng::seed_from_u64(77);
    let mut sched = FairScheduler::new();
    for (id, &w) in weights.iter().enumerate() {
        sched.register(
            id as u64,
            ShareConfig {
                weight: w,
                ..ShareConfig::default()
            },
            0,
        );
    }
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    let mut granted = 0usize;
    let rounds = 3000usize;
    while granted < rounds {
        // Keep every campaign supplied, in randomly interleaved batches,
        // so eligibility never gates the weight walk for long.
        for id in 0..weights.len() as u64 {
            if sched.queued(id) < 40 {
                let burst = 40 + rng.gen_range_u64(20) as usize;
                sched.enqueued(id, burst);
            }
        }
        if let Some(id) = sched.pick(None) {
            sched.leased(id, 1);
            sched.completed(id, 1);
            *counts.entry(id).or_insert(0) += 1;
            granted += 1;
        }
    }
    let total_w: u32 = weights.iter().sum();
    for (id, &w) in weights.iter().enumerate() {
        let expect = rounds * w as usize / total_w as usize;
        let got = counts[&(id as u64)];
        assert!(
            got.abs_diff(expect) <= rounds * 2 / 100,
            "campaign {id} (weight {w}): {got} leases, expected ~{expect}"
        );
    }
}
