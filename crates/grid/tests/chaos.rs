//! Seeded chaos end-to-end: the fabric under deliberate fire.
//!
//! Every test here runs a real coordinator and real workers over localhost
//! TCP with a [`ChaosTransport`](avgi_grid::ChaosTransport) interposed on
//! one or both sides, so frames get dropped, bit-flipped, duplicated,
//! delayed, and connections severed mid-frame — deterministically, from a
//! seeded policy. The acceptance bar does not move: the merged results and
//! telemetry deterministic counters must be bit-identical to a clean
//! single-process campaign. Recovery may cost wall-clock; it must never
//! cost a bit.
//!
//! Worker *processes* are allowed to end with an error here: a worker whose
//! last `Done` was eaten by chaos dies retrying against an exited
//! coordinator, and that is fine — the coordinator's merged outcome is the
//! authoritative artifact under test.

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign, CampaignConfig, CampaignResult, MetricsSnapshot, RunMode};
use avgi_grid::{
    ChaosInterposer, ChaosPolicy, ConfigPreset, Coordinator, GridConfig, GridOutcome, WorkerConfig,
};
use avgi_muarch::Structure;
use std::sync::Arc;
use std::time::Duration;

const FAULTS: usize = 48;

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::Instrumented).with_seed(0xC405)
}

/// The single-process reference: results plus observed telemetry.
fn reference() -> (CampaignResult, MetricsSnapshot) {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = ConfigPreset::Big.config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let collector = Arc::new(MetricsCollector::new());
    let ccfg = campaign_config().with_observer(collector.clone());
    let result = run_campaign(&w, &cfg, &golden, &ccfg);
    (result, collector.snapshot())
}

/// Short-fuse tuning so chaos recovery paths (lease expiry, read timeout,
/// reconnect) play out in test time rather than production time.
fn grid_config() -> GridConfig {
    GridConfig {
        batch: 5,
        lease_timeout: Duration::from_secs(2),
        deadline: Some(Duration::from_secs(180)),
        ..GridConfig::default()
    }
}

fn worker_config(jitter_seed: u64) -> WorkerConfig {
    let mut w = WorkerConfig::new(String::new());
    w.threads = 2;
    w.connect_timeout = Duration::from_secs(2);
    w.read_timeout = Duration::from_secs(2);
    w.reconnect_attempts = 6;
    w.backoff_base = Duration::from_millis(20);
    w.backoff_cap = Duration::from_millis(250);
    w.jitter_seed = jitter_seed;
    w
}

/// Runs a distributed campaign, tolerating worker-side errors (see the
/// module docs); the coordinator must succeed.
fn run_chaos_grid(grid: GridConfig, workers: Vec<WorkerConfig>) -> GridOutcome {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let coord = Coordinator::bind(&w, ConfigPreset::Big, &campaign_config(), &grid).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    let coord_thread = std::thread::spawn(move || coord.run());
    let worker_threads: Vec<_> = workers
        .into_iter()
        .map(|mut wcfg| {
            wcfg.addr = addr.clone();
            std::thread::spawn(move || avgi_grid::run_worker(&wcfg))
        })
        .collect();
    let outcome = coord_thread.join().unwrap().unwrap();
    for t in worker_threads {
        let _ = t.join().unwrap();
    }
    outcome
}

fn assert_matches_reference(outcome: &GridOutcome) {
    let (reference, telemetry) = reference();
    assert_eq!(outcome.result.results, reference.results);
    assert_eq!(
        outcome.telemetry.deterministic_counters_json(),
        telemetry.deterministic_counters_json(),
        "merged telemetry must be bit-identical to single-process"
    );
}

#[test]
fn chaotic_links_both_ways_stay_bit_identical_across_seeds() {
    // Two chaos seeds, as the acceptance criteria demand: same storm
    // profile, different misfortune.
    for chaos_seed in [0xC4A0_0001_u64, 0xC4A0_0002] {
        let coord_chaos = Arc::new(ChaosInterposer::new(ChaosPolicy::stormy(chaos_seed)));
        let worker_chaos = Arc::new(ChaosInterposer::new(ChaosPolicy::stormy(chaos_seed ^ 0xFF)));
        let grid = GridConfig {
            chaos: Some(coord_chaos.clone()),
            ..grid_config()
        };
        let workers = (0..2)
            .map(|i| {
                let mut w = worker_config(0x5EED_0000 + i);
                w.chaos = Some(worker_chaos.clone());
                w
            })
            .collect();
        let outcome = run_chaos_grid(grid, workers);
        assert_matches_reference(&outcome);
        let injected = coord_chaos.stats().injected() + worker_chaos.stats().injected();
        assert!(
            injected > 0,
            "storm policy must actually injure the link (seed {chaos_seed:#x})"
        );
        eprintln!(
            "[chaos seed {chaos_seed:#x}] coordinator side: {} | worker side: {} | stats: {:?}",
            coord_chaos.stats().summary(),
            worker_chaos.stats().summary(),
            outcome.stats,
        );
    }
}

#[test]
fn worker_death_under_chaos_still_converges_bit_identically() {
    let coord_chaos = Arc::new(ChaosInterposer::new(ChaosPolicy::stormy(0xDEAD_C4A0)));
    let grid = GridConfig {
        chaos: Some(coord_chaos.clone()),
        ..grid_config()
    };
    // One worker dies abruptly holding a lease; the healthy one inherits
    // the abandoned indices — all through a lossy coordinator link.
    let mut dying = worker_config(0xD1E);
    dying.max_batches = Some(1);
    let healthy = worker_config(0x11EA_17B1);
    let outcome = run_chaos_grid(grid, vec![dying, healthy]);
    assert_matches_reference(&outcome);
    assert!(
        outcome.stats.leases_reassigned >= 1,
        "the dead worker's lease must be reassigned, stats: {:?}",
        outcome.stats
    );
}

#[test]
fn coordinator_restart_with_midfile_journal_corruption_resumes_bit_identically() {
    let journal = std::env::temp_dir().join(format!(
        "avgi-grid-chaos-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let grid = GridConfig {
        journal: Some(journal.clone()),
        ..grid_config()
    };
    let outcome = run_chaos_grid(grid.clone(), vec![worker_config(0x1)]);
    assert_matches_reference(&outcome);

    // A crash plus disk corruption: tear the tail *and* flip one bit in a
    // record in the middle of what survives. The CRC suffix must catch the
    // flip, the loader must keep everything before it, and the resumed
    // campaign must re-execute the rest into a bit-identical merge.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 1 + FAULTS);
    let keep = 1 + (2 * FAULTS / 3);
    let mut surviving = lines[..keep].concat().into_bytes();
    let corrupt_at: usize = lines[..keep / 2].iter().map(|l| l.len()).sum::<usize>() + 10;
    surviving[corrupt_at] ^= 0x04;
    std::fs::write(&journal, &surviving).unwrap();

    let outcome = run_chaos_grid(grid, vec![worker_config(0x2)]);
    assert_matches_reference(&outcome);
    // Everything before the flipped record resumes; the flipped record and
    // all records after it re-execute.
    assert_eq!(outcome.stats.resumed, (keep / 2 - 1) as u64);
    let _ = std::fs::remove_file(&journal);
}
