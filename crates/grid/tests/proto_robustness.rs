//! Adversarial peers against a live coordinator.
//!
//! Each scenario pairs one misbehaving raw socket with one healthy worker:
//! the coordinator must survive the misbehaviour (no hang, no crash),
//! reassign any lease the bad peer held, and still deliver a campaign
//! bit-identical to the single-process reference — proving nothing the bad
//! peer did was double-counted or lost.

use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_grid::proto::{read_frame, send, write_frame, Msg, MIN_PROTO_VERSION};
use avgi_grid::{ConfigPreset, Coordinator, GridConfig, GridOutcome, WorkerConfig};
use avgi_muarch::Structure;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const FAULTS: usize = 24;

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::EndToEnd).with_seed(0xBAD)
}

/// Runs a grid campaign: one healthy worker plus an adversary driven by
/// `misbehave` against a raw socket connected to the coordinator.
fn run_with_adversary(
    lease_timeout: Duration,
    misbehave: impl FnOnce(TcpStream) + Send + 'static,
) -> GridOutcome {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let grid = GridConfig {
        batch: 4,
        lease_timeout,
        deadline: Some(Duration::from_secs(300)),
        ..GridConfig::default()
    };
    let coord = Coordinator::bind(&w, ConfigPreset::Big, &campaign_config(), &grid).unwrap();
    let addr = coord.local_addr().unwrap();
    let coord_thread = std::thread::spawn(move || coord.run());
    // Let the adversary strike first so it actually grabs work before the
    // healthy worker drains the queue.
    let adversary = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        misbehave(stream);
    });
    adversary.join().unwrap();
    let mut wcfg = WorkerConfig::new(addr.to_string());
    wcfg.threads = 2;
    let worker = std::thread::spawn(move || avgi_grid::run_worker(&wcfg));
    let outcome = coord_thread.join().unwrap().unwrap();
    worker.join().unwrap().unwrap();
    outcome
}

fn assert_matches_reference(outcome: &GridOutcome) {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = ConfigPreset::Big.config();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    let reference = run_campaign(&w, &cfg, &golden, &campaign_config());
    assert_eq!(outcome.result.results, reference.results);
    // Telemetry totals account for every fault exactly once.
    assert_eq!(outcome.telemetry.planned, FAULTS as u64);
    assert_eq!(outcome.telemetry.completed, FAULTS as u64);
}

/// Performs the hello/welcome handshake on a raw socket. The adversary
/// speaks proto v2 so every frame on its link stays JSON.
fn handshake(stream: &mut TcpStream) {
    send(
        stream,
        &Msg::Hello {
            proto: MIN_PROTO_VERSION,
            session: None,
        },
        MIN_PROTO_VERSION,
    )
    .unwrap();
    match Msg::decode(&read_frame(stream).unwrap()).unwrap() {
        Msg::Welcome { .. } => {}
        other => panic!("expected welcome, got {other:?}"),
    }
}

#[test]
fn truncated_frame_drops_the_peer_not_the_campaign() {
    let outcome = run_with_adversary(Duration::from_secs(20), |mut stream| {
        handshake(&mut stream);
        // A frame that promises 100 bytes and delivers 4, then vanishes.
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"oops").unwrap();
        drop(stream);
    });
    assert_matches_reference(&outcome);
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let outcome = run_with_adversary(Duration::from_secs(20), |mut stream| {
        handshake(&mut stream);
        // Claim a 4 GiB frame; the coordinator must refuse the prefix
        // rather than trusting it, and drop the connection.
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream
            .write_all(b"garbage that never amounts to a frame")
            .unwrap();
        // Keep the socket open: the refusal must come from the prefix
        // check, not from our disconnect.
        std::thread::sleep(Duration::from_millis(300));
        drop(stream);
    });
    assert_matches_reference(&outcome);
    assert!(outcome.stats.protocol_errors >= 1);
}

#[test]
fn silent_leaseholder_expires_and_work_is_reassigned_once() {
    // The adversary takes a lease and then neither heartbeats nor reports:
    // the death mode lease timeouts exist for. The timeout is short so the
    // sweep fires quickly; the healthy worker then redoes the indices and
    // the totals must show no double count.
    let outcome = run_with_adversary(Duration::from_millis(500), |mut stream| {
        handshake(&mut stream);
        send(&mut stream, &Msg::LeaseRequest, MIN_PROTO_VERSION).unwrap();
        match Msg::decode(&read_frame(&mut stream).unwrap()).unwrap() {
            Msg::Lease { indices, .. } => assert!(!indices.is_empty()),
            other => panic!("expected a lease, got {other:?}"),
        }
        // Hold the socket open silently past the lease deadline.
        std::thread::sleep(Duration::from_millis(1_200));
        drop(stream);
    });
    assert_matches_reference(&outcome);
    assert!(
        outcome.stats.leases_reassigned >= 1,
        "silent lease must expire: {:?}",
        outcome.stats
    );
}

#[test]
fn late_report_after_reassignment_is_discarded_wholly() {
    // The adversary takes a lease, goes silent past the deadline, and THEN
    // reports a (fabricated) batch for the now-reassigned lease. The
    // coordinator must reject the whole report — results and telemetry —
    // or the campaign would double-count.
    let outcome = run_with_adversary(Duration::from_millis(400), |mut stream| {
        handshake(&mut stream);
        send(&mut stream, &Msg::LeaseRequest, MIN_PROTO_VERSION).unwrap();
        let (lease, indices) = match Msg::decode(&read_frame(&mut stream).unwrap()).unwrap() {
            Msg::Lease { lease, indices, .. } => (lease, indices),
            other => panic!("expected a lease, got {other:?}"),
        };
        std::thread::sleep(Duration::from_millis(1_000));
        // Report garbage results under the expired lease: a malformed
        // batch_done body exercises the rejection path. Easiest well-formed
        // frame: an empty results list (wrong length for the lease).
        let payload = format!(
            "{{\"t\":\"batch_done\",\"lease\":{lease},\"results\":[],\"telemetry\":{{\"planned\":{n},\"completed\":{n},\"retries\":0,\"aborted\":0,\"outcomes\":{{}},\"classes\":{{}},\"structures\":{{}},\"post_inject_cycles_hist\":[]}}}}",
            n = indices.len()
        );
        let _ = write_frame(&mut stream, payload.as_bytes());
        std::thread::sleep(Duration::from_millis(200));
        drop(stream);
    });
    assert_matches_reference(&outcome);
    assert!(outcome.stats.batches_rejected >= 1, "{:?}", outcome.stats);
    assert!(outcome.stats.leases_reassigned >= 1, "{:?}", outcome.stats);
}
