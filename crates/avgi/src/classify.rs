//! The IMM classification diagram (Fig. 2 of the paper).
//!
//! Two entry points:
//!
//! * [`classify_conditions`] — the literal decision diagram over the eight
//!   binary conditions. Its 2⁸ = 256 input combinations map onto exactly
//!   one class each, with the don't-care counts the paper prints on the
//!   diagram nodes (128 IFC, 64 IRP, 32 UNO, 16 OFS, 8 DCR, 4 ETE, 2 PRE,
//!   1 ESC, 1 Benign). A property test pins this down.
//! * [`classify_injection`] — the practical classifier: derives the
//!   conditions from an [`InjectionResult`] (first commit-trace deviation +
//!   run outcome + output comparison) and applies the diagram.

use crate::imm::{Imm, ImmClass};
use avgi_faultsim::InjectionResult;
use avgi_isa::encoding::{opcode_bits, OPCODE_SHIFT};
use avgi_isa::instr::decode;
use avgi_muarch::run::RunOutcome;
use avgi_muarch::trace::Deviation;

/// The eight binary conditions of the Fig. 2 diagram, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conditions {
    /// Committed PC matches the fault-free trace.
    pub pc_correct: bool,
    /// Opcode field matches.
    pub opcode_correct: bool,
    /// All operand fields are encodings the ISA defines.
    pub operands_known: bool,
    /// Operand fields match the fault-free instruction.
    pub operands_correct: bool,
    /// Produced data (register writeback / effective address / store data)
    /// matches.
    pub data_correct: bool,
    /// Commit cycle matches.
    pub cycle_correct: bool,
    /// An output file was produced (the run completed).
    pub output_produced: bool,
    /// The output file matches the fault-free output.
    pub output_correct: bool,
}

impl Conditions {
    /// Builds the condition vector from a bit pattern (bit 0 =
    /// `pc_correct` … bit 7 = `output_correct`); used by the completeness
    /// property test.
    pub fn from_bits(bits: u8) -> Self {
        Conditions {
            pc_correct: bits & 1 != 0,
            opcode_correct: bits & 2 != 0,
            operands_known: bits & 4 != 0,
            operands_correct: bits & 8 != 0,
            data_correct: bits & 16 != 0,
            cycle_correct: bits & 32 != 0,
            output_produced: bits & 64 != 0,
            output_correct: bits & 128 != 0,
        }
    }

    /// Whether the commit trace deviated at all (the diagram's top fork).
    pub fn commit_trace_correct(&self) -> bool {
        self.pc_correct
            && self.opcode_correct
            && self.operands_known
            && self.operands_correct
            && self.data_correct
            && self.cycle_correct
    }
}

/// Applies the Fig. 2 decision diagram. Total: every condition vector maps
/// to exactly one class.
pub fn classify_conditions(c: Conditions) -> ImmClass {
    if !c.pc_correct {
        return ImmClass::Manifested(Imm::Ifc);
    }
    if !c.opcode_correct {
        return ImmClass::Manifested(Imm::Irp);
    }
    if !c.operands_known {
        return ImmClass::Manifested(Imm::Uno);
    }
    if !c.operands_correct {
        return ImmClass::Manifested(Imm::Ofs);
    }
    if !c.data_correct {
        return ImmClass::Manifested(Imm::Dcr);
    }
    if !c.cycle_correct {
        return ImmClass::Manifested(Imm::Ete);
    }
    // Commit trace correct: the right branch of the diagram.
    if !c.output_produced {
        return ImmClass::Manifested(Imm::Pre);
    }
    if !c.output_correct {
        return ImmClass::Manifested(Imm::Esc);
    }
    ImmClass::Benign
}

/// Derives the trace-side conditions from the first deviation.
fn deviation_conditions(d: &Deviation) -> Conditions {
    let g = d.golden;
    let f = d.faulty;
    let pc_correct = g.pc == f.pc;
    let opcode_correct = opcode_bits(g.raw) == opcode_bits(f.raw);
    // Operand fields are everything below the opcode byte — an opcode-only
    // corruption must not also read as an operand mismatch (`Conditions` is
    // public; the diagram's evaluation order would mask the error, a
    // direct consumer of the struct would not).
    let operand_fields_match = (g.raw ^ f.raw) & ((1 << OPCODE_SHIFT) - 1) == 0;
    // "Known to the ISA": the faulty word decodes, or fails only on its
    // opcode (operand errors are what UNO captures).
    let operands_known = match decode(f.raw) {
        Ok(_) => true,
        Err(e) => !e.is_operand_error(),
    };
    Conditions {
        pc_correct,
        opcode_correct,
        operands_known,
        operands_correct: operand_fields_match,
        data_correct: g.ea == f.ea && g.val == f.val,
        cycle_correct: g.cycle == f.cycle,
        output_produced: true, // don't-care on the left branch
        output_correct: true,  // don't-care on the left branch
    }
}

/// Classifies one injection into Benign or an IMM (phase 3 of the
/// methodology).
///
/// * a commit-trace deviation is classified by the diagram's left branch;
/// * a crash with no prior deviation is `PRE` — this includes the
///   fault-tolerance outcomes (`WallClockExpired` hangs and `SimAbort`
///   simulator panics), which reach the software as a crash before any
///   architecturally attributable effect;
/// * a completed run with no deviation is `ESC` if the output differs,
///   otherwise Benign;
/// * an early-stopped run with no deviation (`ErtExpired`) is Benign —
///   phase 4's ESC estimation accounts for the escapes this can hide.
pub fn classify_injection(r: &InjectionResult) -> ImmClass {
    if let Some(d) = &r.deviation {
        return classify_conditions(deviation_conditions(d));
    }
    match r.outcome {
        RunOutcome::Completed => match r.output_matches {
            Some(true) => ImmClass::Benign,
            Some(false) => ImmClass::Manifested(Imm::Esc),
            None => ImmClass::Benign,
        },
        RunOutcome::Trap(_)
        | RunOutcome::IntegrityViolation(_)
        | RunOutcome::Watchdog
        | RunOutcome::WallClockExpired
        | RunOutcome::SimAbort => ImmClass::Manifested(Imm::Pre),
        RunOutcome::ErtExpired | RunOutcome::StoppedAtDeviation => ImmClass::Benign,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_muarch::trace::CommitRecord;

    fn rec(cycle: u64, pc: u32, raw: u32, ea: u32, val: u32) -> CommitRecord {
        CommitRecord {
            cycle,
            pc,
            raw,
            ea,
            val,
        }
    }

    fn dev(golden: CommitRecord, faulty: CommitRecord) -> Deviation {
        Deviation {
            index: 0,
            golden,
            faulty,
        }
    }

    // A valid instruction word: add r1, r2, r5.
    fn valid_word() -> u32 {
        use avgi_isa::instr::Instr;
        use avgi_isa::opcode::Opcode;
        use avgi_isa::reg::{A0, A1, T0};
        Instr::new(Opcode::Add, A0, A1, T0, 0).encode()
    }

    #[test]
    fn diagram_is_complete_and_mutually_exclusive() {
        // All 256 combinations, count per class — must match the paper's
        // don't-care labels.
        let mut counts = std::collections::BTreeMap::new();
        for bits in 0..=255u8 {
            let class = classify_conditions(Conditions::from_bits(bits));
            *counts.entry(format!("{class}")).or_insert(0u32) += 1;
        }
        assert_eq!(counts["IFC"], 128);
        assert_eq!(counts["IRP"], 64);
        assert_eq!(counts["UNO"], 32);
        assert_eq!(counts["OFS"], 16);
        assert_eq!(counts["DCR"], 8);
        assert_eq!(counts["ETE"], 4);
        assert_eq!(counts["PRE"], 2);
        assert_eq!(counts["ESC"], 1);
        assert_eq!(counts["Benign"], 1);
        assert_eq!(counts.values().sum::<u32>(), 256);
    }

    #[test]
    fn wrong_pc_is_ifc_regardless_of_the_rest() {
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let f = rec(11, 0x44, 0xFFFF_FFFF, 9, 9);
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Ifc));
    }

    #[test]
    fn corrupted_opcode_is_irp() {
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let f = rec(10, 0x40, valid_word() ^ (1 << 30), 0, 1); // flip an opcode bit
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Irp));
    }

    #[test]
    fn opcode_only_corruption_leaves_operands_correct() {
        // `operands_correct` covers only the sub-opcode field bits, as the
        // `Conditions` doc states. Pre-fix it was derived from the full
        // word, so an opcode-only flip falsely read as an operand mismatch
        // too (masked by the diagram's evaluation order, but wrong for any
        // direct consumer of the public struct).
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let f = rec(10, 0x40, valid_word() ^ (1 << 30), 0, 1);
        let c = deviation_conditions(&dev(g, f));
        assert!(!c.opcode_correct);
        assert!(c.operands_correct, "operand fields are untouched");
        // And the converse: an operand-only flip leaves the opcode intact.
        let f = rec(10, 0x40, valid_word() ^ (1 << (OPCODE_SHIFT - 1)), 0, 1);
        let c = deviation_conditions(&dev(g, f));
        assert!(c.opcode_correct);
        assert!(!c.operands_correct);
    }

    #[test]
    fn invalid_register_field_is_uno() {
        // Flip rd's top bit: r1 (00001) -> r17? For add r1: rd bits at
        // [23:19] = 00001; setting bit 23 makes rd = 0b10001 = 17 (valid).
        // Instead set bits to make rd = 25 (invalid): 0b11001.
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let corrupt = (valid_word() & !(0x1F << 19)) | (25 << 19);
        let f = rec(10, 0x40, corrupt, 0, 1);
        let c = deviation_conditions(&dev(g, f));
        assert!(!c.operands_known);
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Uno));
    }

    #[test]
    fn different_valid_register_is_ofs() {
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let corrupt = (valid_word() & !(0x1F << 19)) | (3 << 19); // rd = r3
        let f = rec(10, 0x40, corrupt, 0, 7);
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Ofs));
    }

    #[test]
    fn same_instruction_wrong_value_is_dcr() {
        let g = rec(10, 0x40, valid_word(), 0x40000, 1);
        let f = rec(10, 0x40, valid_word(), 0x40000, 2);
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Dcr));
        // Wrong effective address is DCR too (corrupted address register).
        let f = rec(10, 0x40, valid_word(), 0x40004, 1);
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Dcr));
    }

    #[test]
    fn timing_only_difference_is_ete() {
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let f = rec(12, 0x40, valid_word(), 0, 1);
        let c = deviation_conditions(&dev(g, f));
        assert_eq!(classify_conditions(c), ImmClass::Manifested(Imm::Ete));
    }

    #[test]
    fn injection_without_deviation_classifies_by_outcome() {
        use avgi_muarch::fault::{Fault, FaultSite, Structure};
        let fault = Fault {
            site: FaultSite {
                structure: Structure::Rob,
                bit: 0,
            },
            cycle: 5,
        };
        let base = InjectionResult {
            fault,
            outcome: RunOutcome::Completed,
            deviation: None,
            output_matches: Some(true),
            cycles: 100,
            post_inject_cycles: 95,
            abort_message: None,
        };
        assert_eq!(classify_injection(&base), ImmClass::Benign);
        // Fault-tolerance outcomes land in the crash/PRE family.
        let abort = InjectionResult {
            outcome: RunOutcome::SimAbort,
            output_matches: None,
            abort_message: Some("worker panicked".into()),
            ..base.clone()
        };
        assert_eq!(classify_injection(&abort), ImmClass::Manifested(Imm::Pre));
        let wall = InjectionResult {
            outcome: RunOutcome::WallClockExpired,
            output_matches: None,
            ..base.clone()
        };
        assert_eq!(classify_injection(&wall), ImmClass::Manifested(Imm::Pre));
        let esc = InjectionResult {
            output_matches: Some(false),
            ..base.clone()
        };
        assert_eq!(classify_injection(&esc), ImmClass::Manifested(Imm::Esc));
        let pre = InjectionResult {
            outcome: RunOutcome::IntegrityViolation(Structure::Rob),
            output_matches: None,
            ..base.clone()
        };
        assert_eq!(classify_injection(&pre), ImmClass::Manifested(Imm::Pre));
        let hang = InjectionResult {
            outcome: RunOutcome::Watchdog,
            output_matches: None,
            ..base.clone()
        };
        assert_eq!(classify_injection(&hang), ImmClass::Manifested(Imm::Pre));
        let ert = InjectionResult {
            outcome: RunOutcome::ErtExpired,
            output_matches: None,
            ..base
        };
        assert_eq!(classify_injection(&ert), ImmClass::Benign);
    }

    #[test]
    fn crash_after_deviation_classifies_by_the_deviation() {
        use avgi_muarch::fault::{Fault, FaultSite, Structure};
        use avgi_muarch::run::TrapKind;
        let fault = Fault {
            site: FaultSite {
                structure: Structure::L1IData,
                bit: 0,
            },
            cycle: 5,
        };
        let g = rec(10, 0x40, valid_word(), 0, 1);
        let f = rec(10, 0x40, valid_word() ^ (1 << 30), 0, 1);
        let r = InjectionResult {
            fault,
            outcome: RunOutcome::Trap(TrapKind::UndefinedInstruction),
            deviation: Some(dev(g, f)),
            output_matches: None,
            cycles: 100,
            post_inject_cycles: 95,
            abort_message: None,
        };
        assert_eq!(classify_injection(&r), ImmClass::Manifested(Imm::Irp));
    }
}
