//! Effective residency time (ERT) windows — insight 3 (§V.A).
//!
//! Nearly every fault that will ever manifest does so within a short,
//! structure-dependent window after injection: registers and queue entries
//! live a handful of cycles, cache lines tens of thousands. Stopping a
//! simulation `window` cycles after injection therefore loses (almost) no
//! manifestations while skipping the long benign tail.
//!
//! The windows below are *pessimistic* defaults measured on this
//! simulator's workloads (the analogue of the paper's Table II "Maximum
//! Sim Cycles" column, scaled with the ~1000× shorter executions); the
//! `fig08`/`table2` experiments re-derive them with
//! [`measure_ert_window`].

use crate::analysis::JointAnalysis;
use avgi_muarch::fault::Structure;

/// The ERT stop window, in cycles, for a structure under a run of
/// `golden_cycles` total cycles.
///
/// ROB/LQ/SQ windows are a fraction of the execution (the paper's "3 %"),
/// all others are absolute cycle counts.
pub fn default_ert_window(structure: Structure, golden_cycles: u64) -> u64 {
    match structure {
        Structure::RegFile => 1_200,
        Structure::Itlb => 600,
        Structure::Dtlb => 1_500,
        Structure::L1ITag => 5_000,
        Structure::L1IData => 7_000,
        Structure::L1DTag => 3_000,
        Structure::Rob | Structure::Lq | Structure::Sq => (golden_cycles * 3 / 100).max(200),
        Structure::L2Tag => 9_000,
        Structure::L1DData => 12_000,
        Structure::L2Data => 16_000,
    }
}

/// A pooled manifestation-latency quantile across analyses: the window
/// covering `coverage` (0..=1) of observed manifestations, padded by
/// `margin_percent`. `None` when no manifestation was observed.
pub fn ert_window_for_coverage(
    analyses: &[JointAnalysis],
    coverage: f64,
    margin_percent: u64,
) -> Option<u64> {
    let mut lats: Vec<u64> = analyses
        .iter()
        .flat_map(|a| a.manifestation_latencies.iter().copied())
        .collect();
    if lats.is_empty() {
        return None;
    }
    lats.sort_unstable();
    // The window is pessimistic: take the smallest latency whose rank
    // covers at least `coverage` of the pool — a ceiling, not a floor (a
    // floored index under-covers, e.g. rank 48 of 50 for coverage 0.99).
    let rank = (lats.len() as f64 * coverage.clamp(0.0, 1.0)).ceil() as usize;
    let idx = rank.max(1).min(lats.len()) - 1;
    let w = lats[idx];
    Some(w + w * margin_percent / 100)
}

/// Derives a pessimistic ERT window from instrumented campaigns: the
/// maximum observed manifestation latency across analyses, padded by
/// `margin_percent`.
///
/// Returns `None` when no manifestation was ever observed (the structure
/// never produced a deviation — e.g. ROB/LQ/SQ, whose `PRE` crashes carry
/// no deviation record; their residency is bounded by occupancy instead).
pub fn measure_ert_window(analyses: &[JointAnalysis], margin_percent: u64) -> Option<u64> {
    let max = analyses.iter().map(|a| a.max_manifestation_latency).max()?;
    if max == 0 {
        return None;
    }
    Some(max + max * margin_percent / 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_structure_depth() {
        // Deep-pipeline structures have far shorter windows than the lower
        // cache levels — the ordering behind Table II's speedup column.
        let g = 50_000;
        let rf = default_ert_window(Structure::RegFile, g);
        let l1d = default_ert_window(Structure::L1DData, g);
        let l2 = default_ert_window(Structure::L2Data, g);
        assert!(rf < default_ert_window(Structure::Dtlb, g));
        assert!(default_ert_window(Structure::L1IData, g) < l1d);
        assert!(l1d < l2);
    }

    #[test]
    fn queue_windows_scale_with_execution_length() {
        assert_eq!(default_ert_window(Structure::Rob, 100_000), 3_000);
        assert_eq!(
            default_ert_window(Structure::Rob, 1_000),
            200,
            "floor applies"
        );
    }

    fn mk(lat: u64) -> JointAnalysis {
        use crate::imm::{NUM_EFFECTS, NUM_IMMS};
        JointAnalysis {
            workload: "w".into(),
            structure: Structure::RegFile,
            counts: [[0; NUM_EFFECTS]; NUM_IMMS + 1],
            max_manifestation_latency: lat,
            manifestation_latencies: if lat > 0 { vec![lat] } else { Vec::new() },
            total: 0,
        }
    }

    #[test]
    fn measured_window_adds_margin() {
        assert_eq!(measure_ert_window(&[mk(100), mk(250)], 20), Some(300));
        assert_eq!(measure_ert_window(&[mk(0)], 20), None);
        assert_eq!(measure_ert_window(&[], 20), None);
    }

    #[test]
    fn coverage_quantile_rounds_up() {
        // Latencies 1..=50: coverage 0.99 needs ceil(0.99 * 50) = 50 ranks,
        // i.e. the maximum latency 50. Pre-fix, the floored index picked
        // rank 49 (latency 49) and silently under-covered.
        let analyses: Vec<JointAnalysis> = (1..=50).map(mk).collect();
        assert_eq!(ert_window_for_coverage(&analyses, 0.99, 0), Some(50));
        // Exact-rank coverages are unchanged by the ceiling.
        assert_eq!(ert_window_for_coverage(&analyses, 0.5, 0), Some(25));
        assert_eq!(ert_window_for_coverage(&analyses, 1.0, 0), Some(50));
        // Degenerate coverages stay in range instead of panicking.
        assert_eq!(ert_window_for_coverage(&analyses, 0.0, 0), Some(1));
        assert_eq!(ert_window_for_coverage(&analyses, -3.0, 0), Some(1));
        assert_eq!(ert_window_for_coverage(&analyses, 7.0, 10), Some(55));
        assert_eq!(ert_window_for_coverage(&[], 0.99, 0), None);
    }
}
