//! ACE (Architecturally Correct Execution) analysis for the register file —
//! the analytical baseline of the paper's Fig. 1.
//!
//! ACE analysis needs no fault injection: one instrumented fault-free run
//! measures, per physical register, the interval from each value's
//! writeback to its last read, and counts **every bit** of that interval as
//! vulnerable. That blanket assumption is ACE's pessimism — it cannot see
//! the logical masking SFI observes (sub-word uses, compares that do not
//! flip a branch, values whose corruption never reaches the output) — and
//! is why the paper's Fig. 1 shows ACE AVFs 1.2–3× above SFI ground truth.
//!
//! Two estimators are provided:
//!
//! * [`ace_regfile`] — the microarchitectural estimator, using the
//!   simulator's per-physical-register ACE instrumentation
//!   ([`avgi_muarch::run::ExecStats::rf_ace_cycles`]). This is the Fig. 1
//!   baseline.
//! * [`ace_regfile_architectural`] — an architecture-level approximation
//!   that only sees the commit trace. Because in-order commit compresses
//!   the out-of-order timeline (producer and consumer often commit in the
//!   same burst regardless of how long the value sat in the issue window),
//!   it *underestimates* physical-register exposure — an instructive
//!   ablation on why microarchitecture-blind analyses mislead (§VIII).

use avgi_isa::instr::decode;
use avgi_isa::opcode::{Format, Opcode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::trace::GoldenRun;

/// ACE-cycle accounting for one golden run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AceResult {
    /// Total register ACE cycles (writeback → last read, summed over
    /// values).
    pub ace_cycles: u64,
    /// Execution length in cycles.
    pub total_cycles: u64,
    /// Physical register count used for normalization.
    pub phys_regs: u32,
}

impl AceResult {
    /// The ACE-analysis AVF of the physical register file: vulnerable
    /// bit-cycles over total bit-cycles. (Bit width cancels.)
    pub fn avf(&self) -> f64 {
        if self.total_cycles == 0 || self.phys_regs == 0 {
            return 0.0;
        }
        self.ace_cycles as f64 / (self.total_cycles as f64 * f64::from(self.phys_regs))
    }
}

/// Microarchitectural ACE analysis of the physical register file, from the
/// golden run's instrumentation (the Fig. 1 baseline).
pub fn ace_regfile(golden: &GoldenRun, cfg: &MuarchConfig) -> AceResult {
    AceResult {
        ace_cycles: golden.stats.rf_ace_cycles,
        total_cycles: golden.cycles,
        phys_regs: cfg.phys_regs,
    }
}

fn reads_of(op: Opcode) -> (bool, bool) {
    let uses_rs1 = matches!(op.format(), Format::R | Format::I | Format::S) && op != Opcode::Lui;
    let uses_rs2 = matches!(op.format(), Format::R | Format::S);
    (uses_rs1, uses_rs2)
}

/// Architecture-level ACE approximation from the commit trace alone:
/// per architectural register, the interval from a value's producing commit
/// to its last consuming commit.
///
/// Systematically *below* [`ace_regfile`] on out-of-order cores — see the
/// module docs.
pub fn ace_regfile_architectural(golden: &GoldenRun, cfg: &MuarchConfig) -> AceResult {
    const NREG: usize = avgi_isa::NUM_ARCH_REGS as usize;
    let mut last_write = [0u64; NREG];
    let mut last_read: [Option<u64>; NREG] = [None; NREG];
    let mut ace_cycles = 0u64;

    for rec in &golden.trace {
        let Ok(instr) = decode(rec.raw) else { continue };
        let (r1, r2) = reads_of(instr.op);
        if r1 && !instr.rs1.is_zero() {
            last_read[instr.rs1.index() as usize] = Some(rec.cycle);
        }
        if r2 && !instr.rs2.is_zero() {
            last_read[instr.rs2.index() as usize] = Some(rec.cycle);
        }
        if instr.op.writes_rd() && !instr.rd.is_zero() {
            let rd = instr.rd.index() as usize;
            if let Some(lr) = last_read[rd] {
                ace_cycles += lr.saturating_sub(last_write[rd]);
            }
            last_write[rd] = rec.cycle;
            last_read[rd] = None;
        }
    }
    for r in 0..NREG {
        if let Some(lr) = last_read[r] {
            ace_cycles += lr.saturating_sub(last_write[r]);
        }
    }
    AceResult {
        ace_cycles,
        total_cycles: golden.cycles,
        phys_regs: cfg.phys_regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_faultsim::golden_for;

    #[test]
    fn ace_avf_is_positive_and_bounded() {
        let cfg = MuarchConfig::big();
        for w in avgi_workloads::all().iter().take(3) {
            let golden = golden_for(w, &cfg);
            let r = ace_regfile(&golden, &cfg);
            let avf = r.avf();
            assert!(avf > 0.0, "{}: zero ACE AVF", w.name);
            assert!(avf < 1.0, "{}: AVF {avf} out of range", w.name);
        }
    }

    #[test]
    fn microarchitectural_ace_exceeds_architectural_approximation() {
        // Commit-time compression hides issue-window exposure: the
        // trace-only estimate must not exceed the instrumented one.
        let cfg = MuarchConfig::big();
        for name in ["sha", "dijkstra", "blowfish"] {
            let w = avgi_workloads::by_name(name).unwrap();
            let golden = golden_for(&w, &cfg);
            let micro = ace_regfile(&golden, &cfg).avf();
            let arch = ace_regfile_architectural(&golden, &cfg).avf();
            assert!(
                micro >= arch,
                "{name}: microarchitectural {micro} < architectural {arch}"
            );
        }
    }

    #[test]
    fn long_lived_values_dominate_ace() {
        let cfg = MuarchConfig::big();
        let w = avgi_workloads::by_name("dijkstra").unwrap();
        let golden = golden_for(&w, &cfg);
        let r = ace_regfile(&golden, &cfg);
        // dijkstra keeps base pointers live across long scans: expect more
        // than one register-lifetime's worth of ACE cycles.
        assert!(
            r.ace_cycles > golden.cycles,
            "base registers live across the run"
        );
    }
}
