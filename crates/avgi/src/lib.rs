//! # avgi-core — the AVGI methodology
//!
//! Reproduction of *AVGI: Microarchitecture-Driven, Fast and Accurate
//! Vulnerability Assessment* (Papadimitriou & Gizopoulos, HPCA 2023): a
//! statistical-fault-injection flow that delivers per-structure AVF
//! (Masked/SDC/Crash probabilities) orders of magnitude faster than
//! exhaustive SFI, by
//!
//! 1. stopping each injected simulation at the *first* commit-trace
//!    corruption and classifying it into one of eight [ISA Manifestation
//!    Models](imm::Imm) ([`classify`], Fig. 2),
//! 2. converting the IMM histogram to final effects with per-structure,
//!    workload-invariant [weights] (Fig. 5) plus the
//!    [ESC](esc) output-escape estimate (§IV.D), and
//! 3. bounding every run by the per-structure [effective residency
//!    time](ert) window (§V.A),
//!
//! with the [exhaustive SFI baseline](pipeline::exhaustive) and an
//! [ACE-analysis baseline](ace) for comparison, and [FIT](fit) reporting.
//!
//! ```no_run
//! use avgi_core::pipeline::{assess, exhaustive, AvgiOptions};
//! use avgi_core::weights::learn_weights;
//! use avgi_faultsim::golden_for;
//! use avgi_muarch::{MuarchConfig, Structure};
//!
//! let cfg = MuarchConfig::big();
//! let workloads = avgi_workloads::all();
//! // Learn weights from exhaustive campaigns on all-but-one workload...
//! let analyses: Vec<_> = workloads[1..]
//!     .iter()
//!     .map(|w| {
//!         let golden = golden_for(w, &cfg);
//!         exhaustive(w, &cfg, &golden, Structure::RegFile, 500, 1).analysis
//!     })
//!     .collect();
//! let weights = learn_weights(&analyses, None);
//! // ...then assess the held-out workload with AVGI.
//! let target = &workloads[0];
//! let golden = golden_for(target, &cfg);
//! let report = assess(target, &cfg, &golden, &weights, &AvgiOptions::default());
//! println!("{}: {}", target.name, report.predicted);
//! ```

pub mod ace;
pub mod analysis;
pub mod classify;
pub mod ert;
pub mod esc;
pub mod fit;
pub mod imm;
pub mod pipeline;
pub mod report;
pub mod study;
pub mod weights;

pub use analysis::{final_effect, try_final_effect, EffectError, JointAnalysis};
pub use classify::{classify_conditions, classify_injection, Conditions};
pub use ert::{default_ert_window, ert_window_for_coverage, measure_ert_window};
pub use esc::EscModel;
pub use fit::{chip_fit, structure_fit, RAW_FIT_PER_BIT};
pub use imm::{FaultEffect, Imm, ImmClass, NUM_EFFECTS, NUM_IMMS};
pub use pipeline::{
    assess, exhaustive, exhaustive_observed, AvgiAssessment, AvgiOptions, ExhaustiveAssessment,
};
pub use report::{grid_report, imm_collector, imm_labels, EffectDistribution, TelemetrySummary};
pub use study::{leave_one_out, Study, StudyRow};
pub use weights::{learn_weights, WeightTable};
