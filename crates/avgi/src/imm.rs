//! The eight ISA Manifestation Models (Table I of the paper) and the final
//! fault-effect classes.

use core::fmt;

/// The eight complete and mutually exclusive ISA Manifestation Models —
/// how a hardware fault first "touches" the software layer (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Imm {
    /// Instruction Flow Change: a different instruction executes because
    /// fetching went to the wrong place (wrong PC in the commit trace).
    Ifc,
    /// Instruction Replacement: correct PC, corrupted opcode — a different
    /// operation executes.
    Irp,
    /// Unknown Operand: one or more operand fields corrupted into encodings
    /// the ISA does not define.
    Uno,
    /// Operand Forced Switch: register operand(s) and/or immediate field(s)
    /// corrupted into *valid but different* encodings.
    Ofs,
    /// Data Corruption: the correct resource is used but its content
    /// (register or memory word) is corrupted.
    Dcr,
    /// Execution Time Error: architecturally identical instruction committed
    /// in the wrong clock cycle.
    Ete,
    /// Pre-Software Crash: execution crashes before the fault reaches the
    /// ISA (an ISA-undefined high-level condition — simulator integrity
    /// checks, hangs, pre-deviation traps).
    Pre,
    /// Escaped: the output is corrupted without the fault ever passing
    /// through the program trace (dirty output data in a cache, §IV.D).
    Esc,
}

impl Imm {
    /// All eight IMMs in Table I order.
    pub fn all() -> &'static [Imm] {
        &[
            Imm::Ifc,
            Imm::Irp,
            Imm::Uno,
            Imm::Ofs,
            Imm::Dcr,
            Imm::Ete,
            Imm::Pre,
            Imm::Esc,
        ]
    }

    /// Short label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Imm::Ifc => "IFC",
            Imm::Irp => "IRP",
            Imm::Uno => "UNO",
            Imm::Ofs => "OFS",
            Imm::Dcr => "DCR",
            Imm::Ete => "ETE",
            Imm::Pre => "PRE",
            Imm::Esc => "ESC",
        }
    }

    /// Dense index (0..8), stable across releases.
    pub fn index(self) -> usize {
        match self {
            Imm::Ifc => 0,
            Imm::Irp => 1,
            Imm::Uno => 2,
            Imm::Ofs => 3,
            Imm::Dcr => 4,
            Imm::Ete => 5,
            Imm::Pre => 6,
            Imm::Esc => 7,
        }
    }
}

/// Number of IMM classes.
pub const NUM_IMMS: usize = 8;

impl fmt::Display for Imm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a fault landed on the hardware/software interface: either it never
/// became architecturally visible (Benign) or it manifested as one of the
/// eight IMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmClass {
    /// Masked by the hardware: never architecturally visible.
    Benign,
    /// Manifested to the software as the given IMM.
    Manifested(Imm),
}

impl fmt::Display for ImmClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImmClass::Benign => f.write_str("Benign"),
            ImmClass::Manifested(i) => i.fmt(f),
        }
    }
}

/// Final effect of a fault on the program (§II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultEffect {
    /// No observable difference from the fault-free run.
    Masked,
    /// Program finished but produced different output, with no indication.
    Sdc,
    /// Program crashed or hung; no output produced.
    Crash,
}

impl FaultEffect {
    /// All three effects.
    pub fn all() -> &'static [FaultEffect] {
        &[FaultEffect::Masked, FaultEffect::Sdc, FaultEffect::Crash]
    }

    /// Dense index (0..3).
    pub fn index(self) -> usize {
        match self {
            FaultEffect::Masked => 0,
            FaultEffect::Sdc => 1,
            FaultEffect::Crash => 2,
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            FaultEffect::Masked => "Masked",
            FaultEffect::Sdc => "SDC",
            FaultEffect::Crash => "Crash",
        }
    }
}

/// Number of final-effect classes.
pub const NUM_EFFECTS: usize = 3;

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_imms_with_unique_indices() {
        let all = Imm::all();
        assert_eq!(all.len(), NUM_IMMS);
        let mut idx: Vec<usize> = all.iter().map(|i| i.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..NUM_IMMS).collect::<Vec<_>>());
    }

    #[test]
    fn three_effects_with_unique_indices() {
        let mut idx: Vec<usize> = FaultEffect::all().iter().map(|e| e.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Imm::Ifc.to_string(), "IFC");
        assert_eq!(Imm::Esc.to_string(), "ESC");
        assert_eq!(ImmClass::Benign.to_string(), "Benign");
        assert_eq!(FaultEffect::Sdc.to_string(), "SDC");
    }
}
