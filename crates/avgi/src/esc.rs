//! The empirical ESC estimation of §IV.D.
//!
//! ESC faults (dirty output data corrupted in a cache after its last read)
//! are invisible to the first-deviation analysis: they look Benign until
//! the output is produced. Rather than simulating every Benign fault to
//! completion, the paper estimates the fraction of Benign faults that
//! escape from the program's output size and the Benign count:
//!
//! ```text
//! ESC[%] = Output_KB × (F_total − F_benign) / (F_total + F_benign)²
//! ```
//!
//! The estimated ESC faults are reclassified Benign → SDC in phase 4.
//! Because our whole system is scaled down ~1000× from the paper's
//! (kilobyte outputs and kilobyte caches instead of megabytes), the
//! equation carries an explicit calibration scale; [`EscModel::default`]
//! holds the value calibrated once against instrumented campaigns on this
//! simulator (see the `fig07_esc_prediction` experiment).

/// The ESC estimation model (the paper's equation plus a scale constant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscModel {
    /// Multiplicative calibration applied to the paper's equation.
    pub scale: f64,
}

impl Default for EscModel {
    fn default() -> Self {
        // Calibrated on instrumented L1D/L2 tag+data campaigns of this
        // simulator (kilobyte-scale outputs), minimizing the error on the
        // large-output cipher workloads that dominate the escape counts;
        // see EXPERIMENTS.md (Fig. 7).
        EscModel { scale: 100.0 }
    }
}

impl EscModel {
    /// Fraction of Benign faults expected to be escapes, clamped to [0, 1].
    ///
    /// `output_bytes` is the program's output size; `total` and `benign`
    /// are the campaign's fault counts.
    pub fn esc_fraction(&self, output_bytes: u32, total: u64, benign: u64) -> f64 {
        if total == 0 || benign == 0 {
            return 0.0;
        }
        let out_kb = f64::from(output_bytes) / 1024.0;
        let t = total as f64;
        let b = benign as f64;
        let raw = out_kb * (t - b) / ((t + b) * (t + b));
        (self.scale * raw).clamp(0.0, 1.0)
    }

    /// Expected number of Benign faults that are actually escapes (SDC).
    pub fn esc_count(&self, output_bytes: u32, total: u64, benign: u64) -> f64 {
        self.esc_fraction(output_bytes, total, benign) * benign as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_output_means_no_escapes() {
        let m = EscModel::default();
        assert_eq!(m.esc_fraction(0, 2_000, 1_000), 0.0);
        assert_eq!(m.esc_count(0, 2_000, 1_000), 0.0);
    }

    #[test]
    fn tiny_outputs_yield_negligible_escapes() {
        // sha/bitcount-style 4-byte outputs: effectively zero probability,
        // matching the paper's observation for sha and bitcount.
        let m = EscModel::default();
        let f = m.esc_fraction(4, 2_000, 1_000);
        assert!(f < 1e-4, "got {f}");
    }

    #[test]
    fn escapes_grow_with_output_size() {
        let m = EscModel::default();
        let small = m.esc_count(1_024, 2_000, 1_000);
        let large = m.esc_count(12 * 1_024, 2_000, 1_000);
        assert!(large > small);
        assert!(
            (large / small - 12.0).abs() < 1e-9,
            "proportional to output size"
        );
    }

    #[test]
    fn more_benign_faults_more_escapes_at_same_fraction_shape() {
        // The paper's blowfish-vs-rijndael observation: with equal output
        // sizes, the workload with more Benign faults yields more ESC
        // faults (count), even though the per-fault fraction is lower.
        let m = EscModel::default();
        let blowfish = m.esc_count(12 * 1024, 2_000, 1_500);
        let rijndael = m.esc_count(12 * 1024, 2_000, 1_000);
        assert!(blowfish > 0.0 && rijndael > 0.0);
        assert!(
            m.esc_fraction(12 * 1024, 2_000, 1_500) < m.esc_fraction(12 * 1024, 2_000, 1_000),
            "fraction falls with benign share"
        );
    }

    #[test]
    fn fraction_is_clamped() {
        let m = EscModel { scale: 1e9 };
        assert_eq!(m.esc_fraction(1 << 20, 2_000, 1_000), 1.0);
    }

    #[test]
    fn no_corruptions_no_escapes() {
        // F_total == F_benign: nothing ever touched the trace, the numerator
        // vanishes.
        let m = EscModel::default();
        assert_eq!(m.esc_fraction(8_192, 1_000, 1_000), 0.0);
    }
}
