//! Effect distributions and report helpers.

use crate::imm::NUM_EFFECTS;

/// A Masked/SDC/Crash probability split (one AVF report row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectDistribution {
    /// Fraction of faults with no observable effect.
    pub masked: f64,
    /// Fraction causing silent data corruption.
    pub sdc: f64,
    /// Fraction causing a crash or hang.
    pub crash: f64,
}

impl EffectDistribution {
    /// Builds from an `[masked, sdc, crash]` array.
    pub fn from_array(a: [f64; NUM_EFFECTS]) -> Self {
        EffectDistribution {
            masked: a[0],
            sdc: a[1],
            crash: a[2],
        }
    }

    /// As an `[masked, sdc, crash]` array.
    pub fn to_array(self) -> [f64; NUM_EFFECTS] {
        [self.masked, self.sdc, self.crash]
    }

    /// The Architectural Vulnerability Factor: the probability a fault
    /// affects the program (SDC + Crash).
    pub fn avf(self) -> f64 {
        self.sdc + self.crash
    }

    /// Largest absolute per-class difference to another distribution — the
    /// accuracy metric of Figs. 10 and 12.
    pub fn max_abs_diff(self, other: EffectDistribution) -> f64 {
        self.to_array()
            .iter()
            .zip(other.to_array())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the three fractions form a probability distribution.
    pub fn is_normalized(self) -> bool {
        let s = self.masked + self.sdc + self.crash;
        (s - 1.0).abs() < 1e-6
            && self.masked >= -1e-12
            && self.sdc >= -1e-12
            && self.crash >= -1e-12
    }
}

impl core::fmt::Display for EffectDistribution {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Masked {:5.1}% | SDC {:5.1}% | Crash {:5.1}%",
            self.masked * 100.0,
            self.sdc * 100.0,
            self.crash * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avf_is_complement_of_masked_when_normalized() {
        let d = EffectDistribution {
            masked: 0.7,
            sdc: 0.1,
            crash: 0.2,
        };
        assert!(d.is_normalized());
        assert!((d.avf() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_picks_worst_class() {
        let a = EffectDistribution {
            masked: 0.7,
            sdc: 0.1,
            crash: 0.2,
        };
        let b = EffectDistribution {
            masked: 0.6,
            sdc: 0.25,
            crash: 0.15,
        };
        assert!((a.max_abs_diff(b) - 0.15).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(a), 0.0);
    }

    #[test]
    fn array_roundtrip_and_display() {
        let d = EffectDistribution::from_array([0.5, 0.25, 0.25]);
        assert_eq!(d.to_array(), [0.5, 0.25, 0.25]);
        let s = d.to_string();
        assert!(s.contains("Masked") && s.contains("SDC") && s.contains("Crash"));
    }

    #[test]
    fn unnormalized_detected() {
        assert!(!EffectDistribution {
            masked: 0.5,
            sdc: 0.1,
            crash: 0.1
        }
        .is_normalized());
    }
}
