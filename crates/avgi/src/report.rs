//! Effect distributions and report helpers.

use crate::analysis::try_final_effect;
use crate::classify::classify_injection;
use crate::imm::{FaultEffect, Imm, ImmClass, NUM_EFFECTS};
use avgi_faultsim::telemetry::{HistogramSnapshot, MetricsCollector, MetricsSnapshot};
use avgi_faultsim::CampaignResult;

/// A Masked/SDC/Crash probability split (one AVF report row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectDistribution {
    /// Fraction of faults with no observable effect.
    pub masked: f64,
    /// Fraction causing silent data corruption.
    pub sdc: f64,
    /// Fraction causing a crash or hang.
    pub crash: f64,
}

impl EffectDistribution {
    /// Builds from an `[masked, sdc, crash]` array.
    pub fn from_array(a: [f64; NUM_EFFECTS]) -> Self {
        EffectDistribution {
            masked: a[0],
            sdc: a[1],
            crash: a[2],
        }
    }

    /// As an `[masked, sdc, crash]` array.
    pub fn to_array(self) -> [f64; NUM_EFFECTS] {
        [self.masked, self.sdc, self.crash]
    }

    /// The Architectural Vulnerability Factor: the probability a fault
    /// affects the program (SDC + Crash).
    pub fn avf(self) -> f64 {
        self.sdc + self.crash
    }

    /// Largest absolute per-class difference to another distribution — the
    /// accuracy metric of Figs. 10 and 12.
    pub fn max_abs_diff(self, other: EffectDistribution) -> f64 {
        self.to_array()
            .iter()
            .zip(other.to_array())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the three fractions form a probability distribution.
    pub fn is_normalized(self) -> bool {
        let s = self.masked + self.sdc + self.crash;
        (s - 1.0).abs() < 1e-6
            && self.masked >= -1e-12
            && self.sdc >= -1e-12
            && self.crash >= -1e-12
    }
}

impl core::fmt::Display for EffectDistribution {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Masked {:5.1}% | SDC {:5.1}% | Crash {:5.1}%",
            self.masked * 100.0,
            self.sdc * 100.0,
            self.crash * 100.0
        )
    }
}

/// Labels for [`imm_collector`]'s class tallies: the eight IMMs in Table I
/// order, then `Benign`.
pub fn imm_labels() -> Vec<&'static str> {
    let mut labels: Vec<&'static str> = Imm::all().iter().map(|i| i.label()).collect();
    labels.push("Benign");
    labels
}

/// A [`MetricsCollector`] that tallies every observed run by its IMM class
/// (plus `Benign`), closing the faultsim↔classifier layering gap: faultsim
/// cannot see the classifier, so the collector takes it as a plug-in.
pub fn imm_collector() -> MetricsCollector {
    MetricsCollector::with_classes(imm_labels(), |r| match classify_injection(r) {
        ImmClass::Manifested(imm) => imm.index(),
        ImmClass::Benign => imm_labels().len() - 1,
    })
}

/// Folds a telemetry snapshot into report text: run totals, throughput,
/// outcome and IMM tables, and both run-latency histograms.
pub struct TelemetrySummary<'a>(pub &'a MetricsSnapshot);

fn fmt_histogram(
    f: &mut core::fmt::Formatter<'_>,
    title: &str,
    unit: &str,
    h: &HistogramSnapshot,
) -> core::fmt::Result {
    writeln!(f, "  {title}")?;
    if h.is_empty() {
        return writeln!(f, "    (no samples)");
    }
    let max = h.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &n) in h.counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let (lo, hi) = avgi_faultsim::telemetry::bucket_bounds(i);
        let bar = "#".repeat(((n * 40).div_ceil(max)) as usize);
        writeln!(f, "    [{lo:>9}, {hi:>9}) {unit} {n:>8} {bar}")?;
    }
    Ok(())
}

impl core::fmt::Display for TelemetrySummary<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.0;
        writeln!(
            f,
            "telemetry: {}/{} runs ({} resumed, {} retries, {} aborts) in {:.1}s — {:.1} runs/s",
            s.completed,
            s.planned,
            s.resumed,
            s.retries,
            s.aborted(),
            s.elapsed.as_secs_f64(),
            s.runs_per_sec(),
        )?;
        writeln!(f, "  outcomes:")?;
        for (label, n) in &s.outcomes {
            if *n > 0 {
                writeln!(f, "    {label:<20} {n:>8}")?;
            }
        }
        if s.classes.iter().any(|(_, n)| *n > 0) {
            writeln!(f, "  IMM classes:")?;
            for (label, n) in &s.classes {
                if *n > 0 {
                    writeln!(f, "    {label:<20} {n:>8}")?;
                }
            }
        }
        fmt_histogram(
            f,
            "post-injection cycles per run:",
            "cyc",
            &s.post_inject_cycles,
        )?;
        fmt_histogram(f, "wall-clock per run:", "us ", &s.wall_latency_us)
    }
}

/// Renders a merged campaign — e.g. the outcome of a distributed `avgi-grid`
/// run, where results and telemetry arrive separately — as one report:
/// campaign header, the Masked/SDC/Crash split over every run with a final
/// effect, and the folded [`TelemetrySummary`].
///
/// Works for any run mode: early-stopped runs (which have no final effect)
/// are tallied and reported rather than crashing the report.
pub fn grid_report(result: &CampaignResult, telemetry: &MetricsSnapshot) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: {} / {} ({:?}, {} faults, golden {} cycles)",
        result.structure,
        result.workload,
        result.mode,
        result.len(),
        result.golden_cycles
    );
    let mut counts = [0u64; NUM_EFFECTS];
    let mut early = 0u64;
    for r in &result.results {
        match try_final_effect(r) {
            Ok(FaultEffect::Masked) => counts[0] += 1,
            Ok(FaultEffect::Sdc) => counts[1] += 1,
            Ok(FaultEffect::Crash) => counts[2] += 1,
            Err(_) => early += 1,
        }
    }
    let decided: u64 = counts.iter().sum();
    if decided > 0 {
        let d = EffectDistribution::from_array(counts.map(|n| n as f64 / decided as f64));
        let _ = writeln!(out, "effects:  {d} (AVF {:.1}%)", d.avf() * 100.0);
    }
    if early > 0 {
        let _ = writeln!(
            out,
            "          {early} runs stopped early (no final effect)"
        );
    }
    let _ = write!(out, "{}", TelemetrySummary(telemetry));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avf_is_complement_of_masked_when_normalized() {
        let d = EffectDistribution {
            masked: 0.7,
            sdc: 0.1,
            crash: 0.2,
        };
        assert!(d.is_normalized());
        assert!((d.avf() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_picks_worst_class() {
        let a = EffectDistribution {
            masked: 0.7,
            sdc: 0.1,
            crash: 0.2,
        };
        let b = EffectDistribution {
            masked: 0.6,
            sdc: 0.25,
            crash: 0.15,
        };
        assert!((a.max_abs_diff(b) - 0.15).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(a), 0.0);
    }

    #[test]
    fn array_roundtrip_and_display() {
        let d = EffectDistribution::from_array([0.5, 0.25, 0.25]);
        assert_eq!(d.to_array(), [0.5, 0.25, 0.25]);
        let s = d.to_string();
        assert!(s.contains("Masked") && s.contains("SDC") && s.contains("Crash"));
    }

    #[test]
    fn unnormalized_detected() {
        assert!(!EffectDistribution {
            masked: 0.5,
            sdc: 0.1,
            crash: 0.1
        }
        .is_normalized());
    }

    #[test]
    fn imm_collector_tallies_by_class() {
        use avgi_faultsim::telemetry::CampaignObserver;
        use avgi_faultsim::InjectionResult;
        use avgi_muarch::fault::{Fault, FaultSite, Structure};
        use avgi_muarch::run::RunOutcome;
        use std::time::Duration;

        let base = InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::RegFile,
                    bit: 0,
                },
                cycle: 5,
            },
            outcome: RunOutcome::Completed,
            deviation: None,
            output_matches: Some(true),
            cycles: 100,
            post_inject_cycles: 95,
            abort_message: None,
        };
        let sdc = InjectionResult {
            output_matches: Some(false),
            ..base.clone()
        };
        let crash = InjectionResult {
            outcome: RunOutcome::Watchdog,
            output_matches: None,
            ..base.clone()
        };
        let c = imm_collector();
        c.on_campaign_start(Structure::RegFile, 4);
        for r in [&base, &base, &sdc, &crash] {
            c.on_run(Structure::RegFile, r, Duration::from_micros(10));
        }
        let s = c.snapshot();
        let count = |label: &str| {
            s.classes
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, n)| *n)
                .unwrap()
        };
        assert_eq!(s.classes.len(), imm_labels().len());
        assert_eq!(count("Benign"), 2);
        assert_eq!(count("ESC"), 1, "silent corruption classifies as ESC");
        assert_eq!(count("PRE"), 1, "hang classifies as PRE");
        let text = TelemetrySummary(&s).to_string();
        assert!(text.contains("4/4 runs"));
        assert!(text.contains("IMM classes:"));
        assert!(text.contains("ESC"));
        assert!(text.contains("post-injection cycles per run:"));
    }

    #[test]
    fn grid_report_folds_results_and_telemetry() {
        use avgi_faultsim::telemetry::CampaignObserver;
        use avgi_faultsim::{InjectionResult, RunMode};
        use avgi_muarch::fault::{Fault, FaultSite, Structure};
        use avgi_muarch::run::RunOutcome;
        use std::time::Duration;

        let base = InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::RegFile,
                    bit: 0,
                },
                cycle: 5,
            },
            outcome: RunOutcome::Completed,
            deviation: None,
            output_matches: Some(true),
            cycles: 100,
            post_inject_cycles: 95,
            abort_message: None,
        };
        let sdc = InjectionResult {
            output_matches: Some(false),
            ..base.clone()
        };
        let early = InjectionResult {
            outcome: RunOutcome::StoppedAtDeviation,
            output_matches: None,
            ..base.clone()
        };
        let results = vec![base.clone(), base.clone(), sdc, early];
        let c = MetricsCollector::new();
        c.on_campaign_start(Structure::RegFile, results.len());
        for r in &results {
            c.on_run(Structure::RegFile, r, Duration::from_micros(10));
        }
        let result = CampaignResult {
            workload: "bitcount".into(),
            structure: Structure::RegFile,
            mode: RunMode::Instrumented,
            golden_cycles: 100,
            results,
            warnings: Vec::new(),
        };
        let text = grid_report(&result, &c.snapshot());
        assert!(text.contains(&format!("{} / bitcount", Structure::RegFile)));
        assert!(text.contains("4 faults"));
        // 3 decided runs: 2 masked, 1 SDC -> AVF 33.3%.
        assert!(text.contains("AVF 33.3%"), "{text}");
        assert!(text.contains("1 runs stopped early"));
        assert!(text.contains("4/4 runs"));
    }
}
