//! Leave-one-out accuracy studies: the evaluation protocol behind the
//! paper's Figs. 10–12.
//!
//! For one structure, run the exhaustive instrumented baseline on every
//! workload; then, for each workload, learn IMM weights from the *other*
//! workloads and produce an AVGI assessment of the held-out one. Each
//! [`StudyRow`] pairs ground truth with prediction and carries both
//! campaigns' simulation costs.

use crate::pipeline::{assess, exhaustive, AvgiOptions, ExhaustiveAssessment};
use crate::report::EffectDistribution;
use crate::weights::learn_weights;
use avgi_faultsim::golden_for;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_workloads::Workload;

/// One held-out workload's ground truth vs. AVGI prediction.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Held-out workload name.
    pub workload: String,
    /// Ground-truth Masked/SDC/Crash from exhaustive SFI.
    pub real: EffectDistribution,
    /// AVGI prediction with weights learned on the other workloads.
    pub predicted: EffectDistribution,
    /// Post-injection cycles of the exhaustive campaign.
    pub real_cost: u64,
    /// Post-injection cycles of the AVGI campaign.
    pub avgi_cost: u64,
}

impl StudyRow {
    /// Worst per-class absolute difference (the Fig. 10 accuracy metric).
    pub fn max_abs_diff(&self) -> f64 {
        self.real.max_abs_diff(self.predicted)
    }
}

/// A finished leave-one-out study for one structure.
#[derive(Debug, Clone)]
pub struct Study {
    /// Target structure.
    pub structure: Structure,
    /// One row per workload, in input order.
    pub rows: Vec<StudyRow>,
}

impl Study {
    /// Mean ground-truth AVF across workloads.
    pub fn mean_real_avf(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.real.avf()))
    }

    /// Mean predicted AVF across workloads.
    pub fn mean_predicted_avf(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.predicted.avf()))
    }

    /// Worst per-class difference over all rows.
    pub fn worst_diff(&self) -> f64 {
        self.rows
            .iter()
            .map(StudyRow::max_abs_diff)
            .fold(0.0, f64::max)
    }

    /// Total exhaustive cost over AVGI cost: the study's speedup.
    pub fn speedup(&self) -> f64 {
        let real: u64 = self.rows.iter().map(|r| r.real_cost).sum();
        let avgi: u64 = self.rows.iter().map(|r| r.avgi_cost).sum();
        real as f64 / avgi.max(1) as f64
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Runs the full leave-one-out evaluation for one structure.
///
/// `opts.seed`/`opts.faults` apply to both the training campaigns and the
/// assessments.
pub fn leave_one_out(
    structure: Structure,
    workloads: &[Workload],
    cfg: &MuarchConfig,
    opts: &AvgiOptions,
) -> Study {
    let exhaustives: Vec<(ExhaustiveAssessment, std::sync::Arc<avgi_muarch::GoldenRun>)> =
        workloads
            .iter()
            .map(|w| {
                let golden = golden_for(w, cfg);
                (
                    exhaustive(w, cfg, &golden, structure, opts.faults, opts.seed),
                    golden,
                )
            })
            .collect();
    let analyses: Vec<_> = exhaustives
        .iter()
        .map(|(e, _)| e.analysis.clone())
        .collect();
    let rows = workloads
        .iter()
        .zip(&exhaustives)
        .map(|(w, (ex, golden))| {
            let weights = learn_weights(&analyses, Some(w.name));
            let a = assess(w, cfg, golden, &weights, opts);
            StudyRow {
                workload: w.name.to_string(),
                real: ex.effect,
                predicted: a.predicted,
                real_cost: ex.cost_cycles,
                avgi_cost: a.cost_cycles,
            }
        })
        .collect();
    Study { structure, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_on_three_workloads_is_complete_and_normalized() {
        let cfg = MuarchConfig::big();
        let workloads: Vec<Workload> = avgi_workloads::all().into_iter().take(3).collect();
        let opts = AvgiOptions {
            faults: 50,
            seed: 5,
            ..Default::default()
        };
        let s = leave_one_out(Structure::Dtlb, &workloads, &cfg, &opts);
        assert_eq!(s.rows.len(), 3);
        for r in &s.rows {
            assert!(r.real.is_normalized());
            assert!(r.predicted.is_normalized());
            assert!(r.avgi_cost <= r.real_cost, "{}", r.workload);
        }
        assert!(s.speedup() >= 1.0);
        assert!(s.worst_diff() <= 1.0);
    }
}
