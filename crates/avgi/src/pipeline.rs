//! The five-phase AVGI methodology (§IV) and the exhaustive-SFI baseline.
//!
//! | phase | what happens | where |
//! |-------|--------------|-------|
//! | 1 Configuration | program, fault list, target structure | [`AvgiOptions`] |
//! | 2 Microarchitecture-detailed simulation | run until the fault reaches commit, bounded by the ERT window | `RunMode::FirstDeviation` |
//! | 3 IMM classification | first deviation → one of the eight IMMs | [`crate::classify`] |
//! | 4 Effects classification | per-structure IMM weights + ESC estimation | [`crate::weights`], [`crate::esc`] |
//! | 5 Final cross-layer AVF | assemble the Masked/SDC/Crash report | [`AvgiAssessment`] |

use crate::analysis::JointAnalysis;
use crate::classify::classify_injection;
use crate::ert::default_ert_window;
use crate::esc::EscModel;
use crate::imm::{FaultEffect, Imm, ImmClass, NUM_IMMS};
use crate::report::EffectDistribution;
use crate::weights::WeightTable;
use avgi_faultsim::telemetry::CampaignObserver;
use avgi_faultsim::{run_campaign, CampaignConfig, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::trace::GoldenRun;
use avgi_workloads::Workload;
use std::sync::Arc;

/// Phase-1 configuration of an AVGI assessment.
#[derive(Debug, Clone)]
pub struct AvgiOptions {
    /// Number of injected faults (statistical sample size).
    pub faults: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Apply the effective-residency-time stop (insight 3). Disable to
    /// measure the contribution of insights 1–2 alone, as Table II does.
    pub use_ert: bool,
    /// Override the ERT window (cycles); `None` uses
    /// [`default_ert_window`].
    pub ert_window: Option<u64>,
    /// ESC estimation model.
    pub esc: EscModel,
}

impl Default for AvgiOptions {
    fn default() -> Self {
        AvgiOptions {
            faults: 2_000,
            seed: 0xA461_0001,
            use_ert: true,
            ert_window: None,
            esc: EscModel::default(),
        }
    }
}

/// The phase-5 output: a predicted AVF report plus everything needed to
/// audit it.
#[derive(Debug, Clone)]
pub struct AvgiAssessment {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// Predicted Masked/SDC/Crash distribution.
    pub predicted: EffectDistribution,
    /// Observed IMM counts (phase 3).
    pub imm_counts: [u64; NUM_IMMS],
    /// Observed Benign count.
    pub benign: u64,
    /// Estimated escape count folded into SDC (phase 4).
    pub esc_estimate: f64,
    /// Total injections.
    pub total: u64,
    /// Post-injection simulated cycles spent — the cost metric compared in
    /// Table II.
    pub cost_cycles: u64,
}

/// Runs the full AVGI methodology for one (workload, structure) pair.
///
/// `weights` must have been learned on *other* workloads (leave-one-out)
/// for an honest accuracy evaluation.
///
/// # Panics
///
/// Panics if `weights.structure` differs from the requested structure
/// implied by the weight table.
pub fn assess(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    weights: &WeightTable,
    opts: &AvgiOptions,
) -> AvgiAssessment {
    let structure = weights.structure;
    // Phases 2-3: first-deviation campaign with the ERT stop.
    let ert = if opts.use_ert {
        Some(
            opts.ert_window
                .unwrap_or_else(|| default_ert_window(structure, golden.cycles)),
        )
    } else {
        None
    };
    let mode = RunMode::FirstDeviation { ert_window: ert };
    let campaign = run_campaign(
        workload,
        cfg,
        golden,
        &CampaignConfig::new(structure, opts.faults, mode).with_seed(opts.seed),
    );
    let mut imm_counts = [0u64; NUM_IMMS];
    let mut benign = 0u64;
    for r in &campaign.results {
        match classify_injection(r) {
            ImmClass::Benign => benign += 1,
            ImmClass::Manifested(i) => imm_counts[i.index()] += 1,
        }
    }
    let total = campaign.len() as u64;

    // Phase 4: weights + ESC estimation.
    let esc_estimate = if structure.is_esc_eligible() {
        opts.esc.esc_count(workload.output_bytes(), total, benign)
    } else {
        0.0
    };
    let mut masked = benign as f64 - esc_estimate;
    let mut sdc = esc_estimate;
    let mut crash = 0.0;
    for imm in Imm::all() {
        let n = imm_counts[imm.index()] as f64;
        masked += n * weights.weight(*imm, FaultEffect::Masked);
        sdc += n * weights.weight(*imm, FaultEffect::Sdc);
        crash += n * weights.weight(*imm, FaultEffect::Crash);
    }
    // IMMs with no training support contribute nothing above; renormalize
    // over what was distributed so the report stays a distribution.
    let distributed = masked + sdc + crash;
    let predicted = if distributed > 0.0 {
        EffectDistribution {
            masked: masked / distributed,
            sdc: sdc / distributed,
            crash: crash / distributed,
        }
    } else {
        EffectDistribution {
            masked: 1.0,
            sdc: 0.0,
            crash: 0.0,
        }
    };

    // Phase 5: assemble.
    AvgiAssessment {
        workload: workload.name.to_string(),
        structure,
        predicted,
        imm_counts,
        benign,
        esc_estimate,
        total,
        cost_cycles: campaign.total_post_inject_cycles(),
    }
}

/// The exhaustive (traditional, accelerated) SFI baseline: end-to-end runs
/// with instrumentation, producing ground-truth AVF and the joint analysis
/// used for weight learning.
#[derive(Debug, Clone)]
pub struct ExhaustiveAssessment {
    /// Ground-truth Masked/SDC/Crash distribution.
    pub effect: EffectDistribution,
    /// The full joint (IMM × effect) analysis.
    pub analysis: JointAnalysis,
    /// Post-injection simulated cycles spent.
    pub cost_cycles: u64,
}

/// Runs the exhaustive baseline for one (workload, structure) pair.
pub fn exhaustive(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    structure: Structure,
    faults: usize,
    seed: u64,
) -> ExhaustiveAssessment {
    exhaustive_observed(workload, cfg, golden, structure, faults, seed, None)
}

/// Like [`exhaustive`], but attaching a telemetry observer to the campaign
/// (e.g. [`crate::report::imm_collector`] behind a
/// [`avgi_faultsim::telemetry::ProgressObserver`]). Observation never
/// changes the assessment.
pub fn exhaustive_observed(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    structure: Structure,
    faults: usize,
    seed: u64,
    observer: Option<Arc<dyn CampaignObserver>>,
) -> ExhaustiveAssessment {
    let mut ccfg = CampaignConfig::new(structure, faults, RunMode::Instrumented).with_seed(seed);
    ccfg.observer = observer;
    let campaign = run_campaign(workload, cfg, golden, &ccfg);
    let analysis = JointAnalysis::from_campaign(&campaign);
    ExhaustiveAssessment {
        effect: EffectDistribution::from_array(analysis.effect_distribution()),
        cost_cycles: campaign.total_post_inject_cycles(),
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::learn_weights;
    use avgi_faultsim::golden_for;

    #[test]
    fn avgi_assessment_is_normalized_and_cheaper() {
        let ws = avgi_workloads::all();
        let cfg = MuarchConfig::big();
        let structure = Structure::RegFile;
        // Train on two workloads, assess a third.
        let train: Vec<JointAnalysis> = ws[..2]
            .iter()
            .map(|w| {
                let golden = golden_for(w, &cfg);
                exhaustive(w, &cfg, &golden, structure, 60, 1).analysis
            })
            .collect();
        let weights = learn_weights(&train, None);
        let target = &ws[2];
        let golden = golden_for(target, &cfg);
        let opts = AvgiOptions {
            faults: 60,
            seed: 2,
            ..Default::default()
        };
        let a = assess(target, &cfg, &golden, &weights, &opts);
        assert!(a.predicted.is_normalized(), "{:?}", a.predicted);
        assert_eq!(a.total, 60);
        assert_eq!(a.benign + a.imm_counts.iter().sum::<u64>(), 60);

        let e = exhaustive(target, &cfg, &golden, structure, 60, 2);
        assert!(
            a.cost_cycles <= e.cost_cycles,
            "AVGI ({}) must not cost more than exhaustive ({})",
            a.cost_cycles,
            e.cost_cycles
        );
    }

    #[test]
    fn esc_only_applied_to_cache_data_arrays() {
        let ws = avgi_workloads::by_name("blowfish").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&ws, &cfg);
        let train = exhaustive(&ws, &cfg, &golden, Structure::RegFile, 40, 3).analysis;
        let weights = learn_weights(&[train], None);
        let opts = AvgiOptions {
            faults: 40,
            seed: 4,
            ..Default::default()
        };
        let a = assess(&ws, &cfg, &golden, &weights, &opts);
        assert_eq!(a.esc_estimate, 0.0, "RF is not a cache data array");
    }
}
