//! Joint HVF/AVF analysis of instrumented campaigns (§III of the paper):
//! per-(structure, workload) counts of (IMM class × final fault effect).

use crate::classify::classify_injection;
use crate::imm::{FaultEffect, Imm, ImmClass, NUM_EFFECTS, NUM_IMMS};
use avgi_faultsim::{CampaignResult, InjectionResult};
use avgi_muarch::fault::Structure;
use avgi_muarch::run::RunOutcome;

/// Why an injection has no final fault effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectError {
    /// The run completed but carries no output comparison — the campaign
    /// layer failed to record one (a bookkeeping bug, not a fault effect).
    MissingOutputComparison,
    /// The run was stopped early (first-deviation / ERT modes); early stops
    /// have no final effect — that is the whole point of the methodology.
    EarlyStopped,
}

impl core::fmt::Display for EffectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EffectError::MissingOutputComparison => {
                f.write_str("completed run without output comparison")
            }
            EffectError::EarlyStopped => f.write_str("early-stopped run has no final effect"),
        }
    }
}

impl std::error::Error for EffectError {}

/// Final fault effect of one *end-to-end* injection (§II.B), or a typed
/// error when the run has none (early-stopped runs, malformed records).
///
/// Crash-family outcomes include the fault-tolerance outcomes: a run ended
/// by the wall-clock watchdog is a hang, and a run whose simulation
/// panicked (`SimAbort`) is counted as a crash — the simulated machine
/// reached a state the hardware model treats as fatal.
pub fn try_final_effect(r: &InjectionResult) -> Result<FaultEffect, EffectError> {
    match r.outcome {
        RunOutcome::Completed => match r.output_matches {
            Some(true) => Ok(FaultEffect::Masked),
            Some(false) => Ok(FaultEffect::Sdc),
            None => Err(EffectError::MissingOutputComparison),
        },
        RunOutcome::Trap(_)
        | RunOutcome::IntegrityViolation(_)
        | RunOutcome::Watchdog
        | RunOutcome::WallClockExpired
        | RunOutcome::SimAbort => Ok(FaultEffect::Crash),
        RunOutcome::StoppedAtDeviation | RunOutcome::ErtExpired => Err(EffectError::EarlyStopped),
    }
}

/// Panicking wrapper over [`try_final_effect`], kept for callers that have
/// already established the campaign ran end-to-end.
///
/// # Panics
///
/// Panics if the run has no final effect (see [`EffectError`]).
pub fn final_effect(r: &InjectionResult) -> FaultEffect {
    match try_final_effect(r) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Joint (IMM class × final effect) counts for one instrumented campaign.
///
/// Row `NUM_IMMS` holds the Benign class (hardware-masked faults, which
/// are always `Masked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointAnalysis {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// `counts[imm_or_benign][effect]`.
    pub counts: [[u64; NUM_EFFECTS]; NUM_IMMS + 1],
    /// Maximum observed manifestation latency (first-deviation cycle minus
    /// injection cycle) — the raw material of the effective-residency-time
    /// analysis (§V.A).
    pub max_manifestation_latency: u64,
    /// All observed manifestation latencies, sorted ascending (for
    /// quantile-based ERT window derivation).
    pub manifestation_latencies: Vec<u64>,
    /// Total injections.
    pub total: u64,
}

impl JointAnalysis {
    /// Builds the analysis from an instrumented (end-to-end + deviation
    /// capture) campaign.
    pub fn from_campaign(c: &CampaignResult) -> Self {
        let mut counts = [[0u64; NUM_EFFECTS]; NUM_IMMS + 1];
        let mut lats = Vec::new();
        for r in &c.results {
            let class = classify_injection(r);
            let effect = try_final_effect(r)
                .expect("joint analysis requires an end-to-end (Instrumented) campaign");
            let row = match class {
                ImmClass::Benign => NUM_IMMS,
                ImmClass::Manifested(i) => i.index(),
            };
            counts[row][effect.index()] += 1;
            if let Some(d) = &r.deviation {
                lats.push(d.faulty.cycle.saturating_sub(r.fault.cycle));
            }
        }
        lats.sort_unstable();
        JointAnalysis {
            workload: c.workload.clone(),
            structure: c.structure,
            counts,
            max_manifestation_latency: lats.last().copied().unwrap_or(0),
            manifestation_latencies: lats,
            total: c.results.len() as u64,
        }
    }

    /// Count of faults in one IMM class (any effect).
    pub fn imm_count(&self, imm: Imm) -> u64 {
        self.counts[imm.index()].iter().sum()
    }

    /// Count of Benign (hardware-masked) faults.
    pub fn benign_count(&self) -> u64 {
        self.counts[NUM_IMMS].iter().sum()
    }

    /// Count of corruptions (faults that reached the software): total minus
    /// Benign.
    pub fn corruption_count(&self) -> u64 {
        self.total - self.benign_count()
    }

    /// The IMM distribution over corruptions (Fig. 3): fractions summing to
    /// 1 when any corruption exists, all-zero otherwise.
    pub fn imm_distribution(&self) -> [f64; NUM_IMMS] {
        let total = self.corruption_count();
        let mut d = [0.0; NUM_IMMS];
        if total == 0 {
            return d;
        }
        for imm in Imm::all() {
            d[imm.index()] = self.imm_count(*imm) as f64 / total as f64;
        }
        d
    }

    /// The IMM distribution over *trace-visible* corruptions — ESC excluded
    /// — which is what the paper's Figs. 3 and 8 plot (escapes cannot be
    /// identified by commit-trace analysis; they are estimated separately
    /// in phase 4).
    pub fn visible_imm_distribution(&self) -> [f64; NUM_IMMS] {
        let esc = self.imm_count(Imm::Esc);
        let total = self.corruption_count().saturating_sub(esc);
        let mut d = [0.0; NUM_IMMS];
        if total == 0 {
            return d;
        }
        for imm in Imm::all() {
            if *imm != Imm::Esc {
                d[imm.index()] = self.imm_count(*imm) as f64 / total as f64;
            }
        }
        d
    }

    /// Ground-truth final-effect distribution over *all* faults (the AVF
    /// report of the exhaustive analysis: fractions of Masked/SDC/Crash).
    pub fn effect_distribution(&self) -> [f64; NUM_EFFECTS] {
        let mut d = [0.0; NUM_EFFECTS];
        if self.total == 0 {
            return d;
        }
        for row in &self.counts {
            for (e, &n) in row.iter().enumerate() {
                d[e] += n as f64;
            }
        }
        for v in &mut d {
            *v /= self.total as f64;
        }
        d
    }

    /// P(effect | imm) for one IMM (rows of Fig. 4), or `None` when the IMM
    /// was never observed.
    pub fn effect_given_imm(&self, imm: Imm) -> Option<[f64; NUM_EFFECTS]> {
        let n = self.imm_count(imm);
        if n == 0 {
            return None;
        }
        let mut d = [0.0; NUM_EFFECTS];
        for (e, &c) in self.counts[imm.index()].iter().enumerate() {
            d[e] = c as f64 / n as f64;
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
    use avgi_muarch::MuarchConfig;

    #[test]
    fn joint_analysis_accounts_for_every_fault() {
        let w = avgi_workloads::by_name("sha").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let c = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::RegFile, 50, RunMode::Instrumented),
        );
        let a = JointAnalysis::from_campaign(&c);
        assert_eq!(a.total, 50);
        let sum: u64 = a.counts.iter().flatten().sum();
        assert_eq!(sum, 50, "every fault in exactly one cell");
        assert_eq!(a.benign_count() + a.corruption_count(), 50);
        let dist = a.effect_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn visible_distribution_excludes_escapes() {
        let mut counts = [[0u64; NUM_EFFECTS]; NUM_IMMS + 1];
        counts[Imm::Dcr.index()][FaultEffect::Sdc.index()] = 3;
        counts[Imm::Esc.index()][FaultEffect::Sdc.index()] = 3;
        counts[NUM_IMMS][FaultEffect::Masked.index()] = 4;
        let a = JointAnalysis {
            workload: "w".into(),
            structure: Structure::L1DData,
            counts,
            max_manifestation_latency: 0,
            manifestation_latencies: Vec::new(),
            total: 10,
        };
        let all = a.imm_distribution();
        assert!((all[Imm::Dcr.index()] - 0.5).abs() < 1e-12);
        assert!((all[Imm::Esc.index()] - 0.5).abs() < 1e-12);
        let vis = a.visible_imm_distribution();
        assert!((vis[Imm::Dcr.index()] - 1.0).abs() < 1e-12);
        assert_eq!(vis[Imm::Esc.index()], 0.0);
    }

    #[test]
    fn benign_faults_are_always_masked() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let c = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::RegFile, 60, RunMode::Instrumented),
        );
        let a = JointAnalysis::from_campaign(&c);
        // Benign = no deviation + completed + matching output = Masked:
        // SDC/Crash cells of the Benign row must be empty.
        assert_eq!(a.counts[NUM_IMMS][FaultEffect::Sdc.index()], 0);
        assert_eq!(a.counts[NUM_IMMS][FaultEffect::Crash.index()], 0);
    }
}
