//! IMM weighting factors (§III.D, Fig. 5): per-structure, per-IMM final
//! fault-effect probabilities, averaged across workloads.
//!
//! The paper's central insight 2 is that these probabilities are a
//! property of the *hardware structure*, approximately invariant across
//! workloads — so weights learned on a training set transfer to unseen
//! programs. [`learn_weights`] supports leave-one-out exclusion so the
//! accuracy experiments (Figs. 10–12) are honest out-of-sample tests.

use crate::analysis::JointAnalysis;
use crate::imm::{FaultEffect, Imm, NUM_EFFECTS, NUM_IMMS};
use avgi_muarch::fault::Structure;

/// Per-IMM final-effect weights for one hardware structure.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTable {
    /// The structure the weights were learned for.
    pub structure: Structure,
    /// `w[imm][effect]` = mean over training workloads of P(effect | imm);
    /// rows of never-observed IMMs are all-zero.
    pub w: [[f64; NUM_EFFECTS]; NUM_IMMS],
    /// Number of training workloads contributing to each IMM row.
    pub support: [u32; NUM_IMMS],
}

impl WeightTable {
    /// P(effect | imm) under this table.
    pub fn weight(&self, imm: Imm, effect: FaultEffect) -> f64 {
        self.w[imm.index()][effect.index()]
    }

    /// Whether an IMM was ever observed in training.
    pub fn observed(&self, imm: Imm) -> bool {
        self.support[imm.index()] > 0
    }
}

/// Learns a weight table as the arithmetic mean of per-workload
/// P(effect | imm), as the paper prescribes (§III.D). Workloads where an
/// IMM never occurred do not contribute to that IMM's row. `exclude` makes
/// the evaluation leave-one-out.
///
/// # Panics
///
/// Panics if `analyses` is empty or mixes structures.
pub fn learn_weights(analyses: &[JointAnalysis], exclude: Option<&str>) -> WeightTable {
    assert!(!analyses.is_empty(), "no training analyses");
    let structure = analyses[0].structure;
    assert!(
        analyses.iter().all(|a| a.structure == structure),
        "weight learning must not mix structures"
    );
    let mut sums = [[0.0; NUM_EFFECTS]; NUM_IMMS];
    let mut support = [0u32; NUM_IMMS];
    for a in analyses {
        if Some(a.workload.as_str()) == exclude {
            continue;
        }
        for imm in Imm::all() {
            if let Some(dist) = a.effect_given_imm(*imm) {
                for e in 0..NUM_EFFECTS {
                    sums[imm.index()][e] += dist[e];
                }
                support[imm.index()] += 1;
            }
        }
    }
    let mut w = [[0.0; NUM_EFFECTS]; NUM_IMMS];
    for i in 0..NUM_IMMS {
        if support[i] > 0 {
            for e in 0..NUM_EFFECTS {
                w[i][e] = sums[i][e] / f64::from(support[i]);
            }
        }
    }
    WeightTable {
        structure,
        w,
        support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imm::NUM_IMMS as NI;

    fn synthetic(workload: &str, ifc_masked: u64, ifc_crash: u64) -> JointAnalysis {
        let mut counts = [[0u64; NUM_EFFECTS]; NI + 1];
        counts[Imm::Ifc.index()][FaultEffect::Masked.index()] = ifc_masked;
        counts[Imm::Ifc.index()][FaultEffect::Crash.index()] = ifc_crash;
        counts[NI][FaultEffect::Masked.index()] = 10;
        JointAnalysis {
            workload: workload.to_string(),
            structure: Structure::RegFile,
            counts,
            max_manifestation_latency: 0,
            manifestation_latencies: Vec::new(),
            total: ifc_masked + ifc_crash + 10,
        }
    }

    #[test]
    fn weights_are_mean_of_per_workload_probabilities() {
        // Workload a: P(crash|IFC) = 1.0; workload b: P(crash|IFC) = 0.5.
        let analyses = vec![synthetic("a", 0, 8), synthetic("b", 4, 4)];
        let t = learn_weights(&analyses, None);
        assert!((t.weight(Imm::Ifc, FaultEffect::Crash) - 0.75).abs() < 1e-12);
        assert!((t.weight(Imm::Ifc, FaultEffect::Masked) - 0.25).abs() < 1e-12);
        assert_eq!(t.support[Imm::Ifc.index()], 2);
        assert!(!t.observed(Imm::Dcr));
        assert_eq!(t.weight(Imm::Dcr, FaultEffect::Sdc), 0.0);
    }

    #[test]
    fn exclude_removes_a_workload() {
        let analyses = vec![synthetic("a", 0, 8), synthetic("b", 4, 4)];
        let t = learn_weights(&analyses, Some("a"));
        assert!((t.weight(Imm::Ifc, FaultEffect::Crash) - 0.5).abs() < 1e-12);
        assert_eq!(t.support[Imm::Ifc.index()], 1);
    }

    #[test]
    #[should_panic(expected = "must not mix structures")]
    fn mixing_structures_panics() {
        let mut b = synthetic("b", 1, 1);
        b.structure = Structure::Rob;
        let _ = learn_weights(&[synthetic("a", 1, 1), b], None);
    }

    #[test]
    fn weight_rows_are_probability_distributions() {
        let analyses = vec![synthetic("a", 3, 5), synthetic("b", 2, 2)];
        let t = learn_weights(&analyses, None);
        let row: f64 = (0..NUM_EFFECTS).map(|e| t.w[Imm::Ifc.index()][e]).sum();
        assert!((row - 1.0).abs() < 1e-12);
    }
}
