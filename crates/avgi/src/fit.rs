//! Failures-in-Time computation (Fig. 11).
//!
//! `FIT = raw FIT/bit × bits × AVF`; the chip FIT is the sum over
//! structures. The raw rate is the paper's 9.39×10⁻⁶ FIT/bit (from its
//! reference \[38\]).

use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;

/// Raw transient-fault rate per storage bit, in FIT (failures per 10⁹
/// device-hours), as used by the paper for the Cortex-A72-like CPU.
pub const RAW_FIT_PER_BIT: f64 = 9.39e-6;

/// FIT rate of one structure given its measured AVF.
pub fn structure_fit(structure: Structure, cfg: &MuarchConfig, avf: f64) -> f64 {
    RAW_FIT_PER_BIT * structure.bit_count(cfg) as f64 * avf
}

/// Whole-chip FIT: sum of per-structure FITs.
pub fn chip_fit<I: IntoIterator<Item = (Structure, f64)>>(cfg: &MuarchConfig, avfs: I) -> f64 {
    avfs.into_iter()
        .map(|(s, avf)| structure_fit(s, cfg, avf))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_scales_with_bits_and_avf() {
        let cfg = MuarchConfig::big();
        let f1 = structure_fit(Structure::RegFile, &cfg, 0.1);
        let f2 = structure_fit(Structure::RegFile, &cfg, 0.2);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
        // L2 data has ~170x the bits of the register file.
        let l2 = structure_fit(Structure::L2Data, &cfg, 0.1);
        assert!(l2 > 100.0 * f1);
    }

    #[test]
    fn regfile_fit_exact_value() {
        let cfg = MuarchConfig::big();
        // 96 regs x 32 bits = 3072 bits.
        let expect = 9.39e-6 * 3072.0 * 0.5;
        assert!((structure_fit(Structure::RegFile, &cfg, 0.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn chip_fit_sums_structures() {
        let cfg = MuarchConfig::big();
        let parts = [(Structure::RegFile, 0.2), (Structure::Rob, 0.1)];
        let total = chip_fit(&cfg, parts);
        let manual: f64 = parts.iter().map(|&(s, a)| structure_fit(s, &cfg, a)).sum();
        assert_eq!(total, manual);
    }
}
