//! Randomized property tests of the encode/decode invariants.
//!
//! These lived in the top-level `tests/proptests.rs` suite; they only
//! exercise `avgi-isa`, so they live here to keep `cargo test -p avgi-isa`
//! self-contained. Originally `proptest` properties; the repository must
//! build fully offline, so they are deterministic loops over the in-repo
//! xoshiro256** generator (`avgi-rng`) — same invariants, fixed seeds,
//! reproducible failures.

use avgi_isa::instr::{decode, Instr};
use avgi_isa::opcode::Opcode;
use avgi_isa::reg::Reg;
use avgi_rng::Rng;

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range_u64(u64::from(avgi_isa::NUM_ARCH_REGS)) as u8).expect("in range")
}

/// Every valid instruction survives an encode/decode roundtrip.
#[test]
fn encode_decode_roundtrip() {
    use avgi_isa::opcode::Format;
    let mut rng = Rng::seed_from_u64(0x1001);
    for _ in 0..4096 {
        let op = *rng.choose(Opcode::all());
        let (rd, rs1, rs2) = (arb_reg(&mut rng), arb_reg(&mut rng), arb_reg(&mut rng));
        let imm = rng.gen_range_i32(-8192, 8192);
        let imm = match op.format() {
            Format::J => imm * 16, // wider field; still in range
            Format::N | Format::R => 0,
            _ => imm,
        };
        let i = Instr::new(op, rd, rs1, rs2, imm);
        let d = decode(i.encode()).expect("valid instruction decodes");
        assert_eq!(d.op, op);
        assert_eq!(d.imm, imm);
    }
}

/// Decoding never panics on arbitrary 32-bit words (totality).
#[test]
fn decode_is_total() {
    let mut rng = Rng::seed_from_u64(0x1002);
    for _ in 0..100_000 {
        let _ = decode(rng.next_u32());
    }
    // Plus the low words and boundaries exhaustively enough to matter.
    for w in 0..=u32::from(u16::MAX) {
        let _ = decode(w);
        let _ = decode(w.rotate_left(16));
    }
}

/// Cross-validation of the encoding's field map against the decoder: the
/// field a flipped bit lands in determines the decode outcome — the root
/// mechanism behind the IRP/UNO/OFS manifestation classes.
#[test]
fn bit_field_map_predicts_decode_outcome() {
    use avgi_isa::encoding::{field_of_bit, Field};
    use avgi_isa::instr::DecodeError;
    use avgi_isa::opcode::Format;

    let mut rng = Rng::seed_from_u64(0x1008);
    for _ in 0..8192 {
        let op = *rng.choose(Opcode::all());
        let (rd, rs1, rs2) = (arb_reg(&mut rng), arb_reg(&mut rng), arb_reg(&mut rng));
        let imm = rng.gen_range_i32(0, 8192);
        let bit = rng.gen_range_u64(32) as u32;

        let imm = if op.format() == Format::N || op.format() == Format::R {
            0
        } else {
            imm
        };
        let i = Instr::new(op, rd, rs1, rs2, imm);
        let original = i.encode();
        let corrupted = original ^ (1u32 << bit);
        match field_of_bit(op.format(), bit) {
            Field::Imm => {
                // Immediate flips always stay in the ISA, different value.
                let d = decode(corrupted).expect("imm flip keeps a valid word");
                assert_eq!(d.op, op);
                assert_ne!(d.imm, i.imm);
            }
            Field::Pad => {
                // Pad was zero; a flip sets it: operand error (UNO path).
                match decode(corrupted) {
                    Err(e) => assert!(e.is_operand_error()),
                    Ok(_) => panic!("pad flip must not decode"),
                }
            }
            Field::Rd | Field::Rs1 | Field::Rs2 => match decode(corrupted) {
                Ok(d) => {
                    assert_eq!(d.op, op);
                    assert_ne!(d.encode(), original, "some register changed");
                }
                Err(DecodeError::UnknownRegister { .. }) => {} // UNO
                Err(e) => panic!("unexpected error {e:?}"),
            },
            Field::Opcode => {
                // Decoding either lands on a different op (IRP) or traps.
                if let Ok(d) = decode(corrupted) {
                    assert_ne!(d.op, op);
                }
            }
        }
    }
}
