//! The AvgIsa opcode space.
//!
//! Opcodes occupy the top 8 bits of every instruction word. The space is
//! deliberately sparse (≈36 of 256 encodings are defined) so that flipping a
//! single opcode bit frequently produces an encoding that is *unknown to the
//! ISA* — the pipeline treats such instructions as undefined and raises a
//! trap at commit, reproducing the crash-heavy fate of the paper's `IRP`
//! manifestations.

use core::fmt;

/// Instruction *format*: which fields of the 32-bit word are meaningful.
///
/// Field layout per format (bit 31 is the MSB):
///
/// | format | `[31:24]` | `[23:19]` | `[18:14]` | `[13:9]` | `[8:0]` |
/// |--------|---------|---------|---------|--------|-------|
/// | `R`    | opcode  | rd      | rs1     | rs2    | pad (must be 0) |
/// | `I`    | opcode  | rd      | rs1     | `imm14[13:9]` | `imm14[8:0]` |
/// | `S`/`B`| opcode  | rs1     | rs2     | `imm14[13:9]` | `imm14[8:0]` |
/// | `J`    | opcode  | rd      | imm19   | imm19  | imm19 |
/// | `N`    | opcode  | pad (must be 0) | | | |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Register-register ALU: `op rd, rs1, rs2`.
    R,
    /// Register-immediate ALU and loads and `jalr`: `op rd, rs1, imm14`.
    I,
    /// Stores and branches: `op rs1, rs2, imm14`.
    S,
    /// Jump-and-link: `jal rd, imm19`.
    J,
    /// No operands: `nop`, `halt`.
    N,
}

macro_rules! opcodes {
    ($( $name:ident = $val:expr, $fmt:ident, $mnem:expr ;)*) => {
        /// A defined AvgIsa opcode.
        ///
        /// The discriminant is the 8-bit encoding that appears in bits
        /// `[31:24]` of the instruction word.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnem, "`")]
                $name = $val,
            )*
        }

        impl Opcode {
            /// Decodes an 8-bit opcode field. Returns `None` for encodings
            /// not defined by the ISA.
            pub fn from_bits(bits: u8) -> Option<Self> {
                match bits {
                    $( $val => Some(Opcode::$name), )*
                    _ => None,
                }
            }

            /// The 8-bit encoding of this opcode.
            pub fn to_bits(self) -> u8 {
                self as u8
            }

            /// The instruction format this opcode uses.
            pub fn format(self) -> Format {
                match self {
                    $( Opcode::$name => Format::$fmt, )*
                }
            }

            /// The assembly mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mnem, )*
                }
            }

            /// Every defined opcode, in encoding order.
            pub fn all() -> &'static [Opcode] {
                &[ $( Opcode::$name, )* ]
            }
        }
    };
}

opcodes! {
    Nop   = 0x01, N, "nop";
    Halt  = 0x02, N, "halt";

    Add   = 0x10, R, "add";
    Sub   = 0x11, R, "sub";
    And   = 0x12, R, "and";
    Or    = 0x13, R, "or";
    Xor   = 0x14, R, "xor";
    Sll   = 0x15, R, "sll";
    Srl   = 0x16, R, "srl";
    Sra   = 0x17, R, "sra";
    Slt   = 0x18, R, "slt";
    Sltu  = 0x19, R, "sltu";
    Mul   = 0x1A, R, "mul";
    Mulh  = 0x1B, R, "mulh";
    Divu  = 0x1C, R, "divu";
    Remu  = 0x1D, R, "remu";

    Addi  = 0x20, I, "addi";
    Andi  = 0x21, I, "andi";
    Ori   = 0x22, I, "ori";
    Xori  = 0x23, I, "xori";
    Slli  = 0x24, I, "slli";
    Srli  = 0x25, I, "srli";
    Srai  = 0x26, I, "srai";
    Slti  = 0x27, I, "slti";
    Lui   = 0x28, I, "lui";

    Lw    = 0x30, I, "lw";
    Lb    = 0x31, I, "lb";
    Lbu   = 0x32, I, "lbu";
    Lh    = 0x33, I, "lh";
    Lhu   = 0x34, I, "lhu";

    Sw    = 0x38, S, "sw";
    Sb    = 0x39, S, "sb";
    Sh    = 0x3A, S, "sh";

    Beq   = 0x40, S, "beq";
    Bne   = 0x41, S, "bne";
    Blt   = 0x42, S, "blt";
    Bge   = 0x43, S, "bge";
    Bltu  = 0x44, S, "bltu";
    Bgeu  = 0x45, S, "bgeu";

    Jal   = 0x50, J, "jal";
    Jalr  = 0x51, I, "jalr";
}

impl Opcode {
    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Lw | Opcode::Lb | Opcode::Lbu | Opcode::Lh | Opcode::Lhu
        )
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Sw | Opcode::Sb | Opcode::Sh)
    }

    /// Whether this opcode is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }

    /// Whether this opcode is an unconditional control transfer.
    pub fn is_jump(self) -> bool {
        matches!(self, Opcode::Jal | Opcode::Jalr)
    }

    /// Whether this opcode can redirect the program counter.
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// Whether this opcode writes a destination register.
    pub fn writes_rd(self) -> bool {
        match self.format() {
            Format::R | Format::J => true,
            Format::I => true,
            Format::S | Format::N => false,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_opcodes() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_bits(op.to_bits()), Some(op));
        }
    }

    #[test]
    fn undefined_encodings_rejected() {
        assert_eq!(Opcode::from_bits(0x00), None);
        assert_eq!(Opcode::from_bits(0xFF), None);
        assert_eq!(Opcode::from_bits(0x60), None);
    }

    #[test]
    fn opcode_space_is_sparse() {
        let defined = (0u16..256)
            .filter(|&b| Opcode::from_bits(b as u8).is_some())
            .count();
        assert_eq!(defined, Opcode::all().len());
        // The sparseness is a design requirement: most random corruption of
        // the opcode byte must be able to leave the defined space.
        assert!(defined < 64, "opcode space must stay sparse, got {defined}");
    }

    #[test]
    fn classification_predicates_are_disjoint() {
        for &op in Opcode::all() {
            let kinds = [op.is_load(), op.is_store(), op.is_branch(), op.is_jump()];
            assert!(
                kinds.iter().filter(|&&k| k).count() <= 1,
                "{op} in two classes"
            );
        }
    }

    #[test]
    fn stores_and_branches_do_not_write_rd() {
        assert!(!Opcode::Sw.writes_rd());
        assert!(!Opcode::Beq.writes_rd());
        assert!(Opcode::Add.writes_rd());
        assert!(Opcode::Jal.writes_rd());
        assert!(Opcode::Jalr.writes_rd());
    }
}
