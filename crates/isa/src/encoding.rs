//! Bit-level field layout of AvgIsa instruction words.
//!
//! Fault-injection studies need to reason about *which field a flipped bit
//! landed in*; this module is the single source of truth for the layout.
//! See [`Format`] for the per-format field map.

use crate::opcode::Format;

/// Bit position (from LSB) where the opcode field starts.
pub const OPCODE_SHIFT: u32 = 24;
/// Bit position where the `rd` field starts.
pub const RD_SHIFT: u32 = 19;
/// Bit position where the `rs1` field starts.
pub const RS1_SHIFT: u32 = 14;
/// Bit position where the `rs2` field starts.
pub const RS2_SHIFT: u32 = 9;
/// Width of a register field in bits.
pub const REG_FIELD_BITS: u32 = 5;
/// Width of the short immediate in bits.
pub const IMM14_BITS: u32 = 14;
/// Width of the jump immediate in bits.
pub const IMM19_BITS: u32 = 19;

/// Extracts the 8-bit opcode field.
pub fn opcode_bits(word: u32) -> u8 {
    (word >> OPCODE_SHIFT) as u8
}

/// Extracts the raw 5-bit `rd` field.
pub fn rd_bits(word: u32) -> u8 {
    ((word >> RD_SHIFT) & 0x1F) as u8
}

/// Extracts the raw 5-bit `rs1` field (format `R`/`I`; field position
/// `[23:19]` holds `rs1` for `S`-format — use [`s_rs1_bits`]).
pub fn rs1_bits(word: u32) -> u8 {
    ((word >> RS1_SHIFT) & 0x1F) as u8
}

/// Extracts the raw 5-bit `rs2` field.
pub fn rs2_bits(word: u32) -> u8 {
    ((word >> RS2_SHIFT) & 0x1F) as u8
}

/// `S`-format `rs1`, stored where `rd` lives in `R`/`I` formats.
pub fn s_rs1_bits(word: u32) -> u8 {
    rd_bits(word)
}

/// `S`-format `rs2`, stored where `rs1` lives in `R`/`I` formats.
pub fn s_rs2_bits(word: u32) -> u8 {
    rs1_bits(word)
}

/// Extracts and sign-extends the 14-bit immediate.
pub fn imm14(word: u32) -> i32 {
    ((word as i32) << 18) >> 18
}

/// Extracts and sign-extends the 19-bit jump immediate.
pub fn imm19(word: u32) -> i32 {
    ((word as i32) << 13) >> 13
}

/// Extracts the 9-bit must-be-zero pad of `R`-format instructions.
pub fn pad9(word: u32) -> u32 {
    word & 0x1FF
}

/// Extracts the 24-bit must-be-zero pad of `N`-format instructions.
pub fn pad24(word: u32) -> u32 {
    word & 0x00FF_FFFF
}

/// Packs an `R`-format word.
pub fn pack_r(opcode: u8, rd: u8, rs1: u8, rs2: u8) -> u32 {
    (opcode as u32) << OPCODE_SHIFT
        | ((rd as u32) & 0x1F) << RD_SHIFT
        | ((rs1 as u32) & 0x1F) << RS1_SHIFT
        | ((rs2 as u32) & 0x1F) << RS2_SHIFT
}

/// Packs an `I`-format word.
pub fn pack_i(opcode: u8, rd: u8, rs1: u8, imm: i32) -> u32 {
    (opcode as u32) << OPCODE_SHIFT
        | ((rd as u32) & 0x1F) << RD_SHIFT
        | ((rs1 as u32) & 0x1F) << RS1_SHIFT
        | (imm as u32) & 0x3FFF
}

/// Packs an `S`-format word (stores and branches).
pub fn pack_s(opcode: u8, rs1: u8, rs2: u8, imm: i32) -> u32 {
    (opcode as u32) << OPCODE_SHIFT
        | ((rs1 as u32) & 0x1F) << RD_SHIFT
        | ((rs2 as u32) & 0x1F) << RS1_SHIFT
        | (imm as u32) & 0x3FFF
}

/// Packs a `J`-format word.
pub fn pack_j(opcode: u8, rd: u8, imm: i32) -> u32 {
    (opcode as u32) << OPCODE_SHIFT | ((rd as u32) & 0x1F) << RD_SHIFT | (imm as u32) & 0x7_FFFF
}

/// Packs an `N`-format word.
pub fn pack_n(opcode: u8) -> u32 {
    (opcode as u32) << OPCODE_SHIFT
}

/// The field a given instruction-word bit belongs to, for a given format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Bits `[31:24]` in every format.
    Opcode,
    /// Destination register field.
    Rd,
    /// First source register field.
    Rs1,
    /// Second source register field.
    Rs2,
    /// Immediate field.
    Imm,
    /// Must-be-zero padding.
    Pad,
}

/// Classifies instruction-word bit `bit` (0 = LSB) under `format`.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn field_of_bit(format: Format, bit: u32) -> Field {
    assert!(bit < 32, "bit index out of range: {bit}");
    if bit >= OPCODE_SHIFT {
        return Field::Opcode;
    }
    match format {
        Format::R => match bit {
            19..=23 => Field::Rd,
            14..=18 => Field::Rs1,
            9..=13 => Field::Rs2,
            _ => Field::Pad,
        },
        Format::I => match bit {
            19..=23 => Field::Rd,
            14..=18 => Field::Rs1,
            _ => Field::Imm,
        },
        Format::S => match bit {
            19..=23 => Field::Rs1,
            14..=18 => Field::Rs2,
            _ => Field::Imm,
        },
        Format::J => match bit {
            19..=23 => Field::Rd,
            _ => Field::Imm,
        },
        Format::N => Field::Pad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm14_sign_extension() {
        let w = pack_i(0x20, 1, 2, -1);
        assert_eq!(imm14(w), -1);
        let w = pack_i(0x20, 1, 2, 8191);
        assert_eq!(imm14(w), 8191);
        let w = pack_i(0x20, 1, 2, -8192);
        assert_eq!(imm14(w), -8192);
    }

    #[test]
    fn imm19_sign_extension() {
        let w = pack_j(0x50, 23, -4);
        assert_eq!(imm19(w), -4);
        let w = pack_j(0x50, 23, 262_143);
        assert_eq!(imm19(w), 262_143);
    }

    #[test]
    fn field_extraction_roundtrip() {
        let w = pack_r(0x10, 3, 7, 21);
        assert_eq!(opcode_bits(w), 0x10);
        assert_eq!(rd_bits(w), 3);
        assert_eq!(rs1_bits(w), 7);
        assert_eq!(rs2_bits(w), 21);
        assert_eq!(pad9(w), 0);
    }

    #[test]
    fn s_format_register_aliases() {
        let w = pack_s(0x38, 4, 9, 100);
        assert_eq!(s_rs1_bits(w), 4);
        assert_eq!(s_rs2_bits(w), 9);
        assert_eq!(imm14(w), 100);
    }

    #[test]
    fn every_bit_has_exactly_one_field() {
        for fmt in [Format::R, Format::I, Format::S, Format::J, Format::N] {
            for bit in 0..32 {
                // Must not panic; Field is total per (format, bit).
                let _ = field_of_bit(fmt, bit);
            }
        }
    }

    #[test]
    fn opcode_bits_always_opcode_field() {
        for fmt in [Format::R, Format::I, Format::S, Format::J, Format::N] {
            for bit in 24..32 {
                assert_eq!(field_of_bit(fmt, bit), Field::Opcode);
            }
        }
    }
}
