//! # AvgIsa — the instruction set of the AVGI reproduction
//!
//! AvgIsa is a small, 32-bit, fixed-width RISC instruction set designed for
//! *fault-injection studies*: every bit of an instruction word belongs to a
//! named field (opcode, register operand, immediate), and both the opcode
//! space and the register space are deliberately **incomplete**, so that a
//! single flipped bit can turn a valid encoding into one that is *unknown to
//! the ISA*. This is exactly the property the AVGI paper's ISA Manifestation
//! Models (IMMs) exercise:
//!
//! * a flipped **opcode** bit yields either a *different* valid instruction
//!   (the paper's `IRP` manifestation) or an undefined opcode,
//! * a flipped **register field** bit can produce a register index the ISA
//!   does not define (`UNO`) or a different valid register (`OFS`),
//! * a flipped **immediate** bit always produces a valid but different
//!   instruction (`OFS`).
//!
//! The crate provides the field-level [`encoding`], the decoded
//! [`Instr`] representation, a two-pass [`asm::Assembler`]
//! with labels and `li32` pseudo-instructions, and the register file
//! conventions used by the workloads.
//!
//! ## Example
//!
//! ```
//! use avgi_isa::asm::Assembler;
//! use avgi_isa::reg::{Reg, ZERO};
//! use avgi_isa::instr::decode;
//!
//! let mut a = Assembler::new(0);
//! let r1 = Reg::new(1).unwrap();
//! a.addi(r1, ZERO, 41);
//! a.addi(r1, r1, 1);
//! a.halt();
//! let words = a.assemble().unwrap();
//! assert_eq!(words.len(), 3);
//! let i = decode(words[0]).unwrap();
//! assert_eq!(i.imm, 41);
//! ```

pub mod asm;
pub mod encoding;
pub mod instr;
pub mod opcode;
pub mod reg;

pub use asm::Assembler;
pub use instr::{decode, DecodeError, Instr};
pub use opcode::Opcode;
pub use reg::Reg;

/// Number of architectural registers defined by AvgIsa.
///
/// Register *fields* in the encoding are 5 bits wide (32 encodings), but only
/// indices `0..24` name architectural registers; encodings `24..32` are
/// undefined and decoding them fails with
/// [`DecodeError::UnknownRegister`](instr::DecodeError). The gap is what
/// makes the `UNO` manifestation model reachable.
pub const NUM_ARCH_REGS: u8 = 24;

/// Width in bits of one instruction word (and of the machine word).
pub const WORD_BITS: u32 = 32;

/// Width in bytes of one instruction word.
pub const WORD_BYTES: u32 = 4;
