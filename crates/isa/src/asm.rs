//! A two-pass assembler / program builder with labels.
//!
//! Workload programs are written against this API. Forward references are
//! allowed; label resolution happens in [`Assembler::assemble`].
//!
//! ```
//! use avgi_isa::asm::Assembler;
//! use avgi_isa::reg::{A0, ZERO};
//!
//! let mut a = Assembler::new(0);
//! a.li32(A0, 10);
//! a.label("loop");
//! a.addi(A0, A0, -1);
//! a.bne(A0, ZERO, "loop");
//! a.halt();
//! let code = a.assemble().unwrap();
//! assert!(!code.is_empty());
//! ```

use crate::instr::Instr;
use crate::opcode::Opcode;
use crate::reg::{Reg, RA, ZERO};
use core::fmt;
use std::collections::HashMap;

/// An error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A control-flow instruction referenced a label that was never defined.
    UnknownLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A resolved branch/jump offset does not fit its immediate field.
    OffsetOutOfRange {
        /// The offending label.
        label: String,
        /// The offset, in instructions.
        offset: i64,
    },
    /// An immediate constant does not fit the 14-bit signed field.
    ImmOutOfRange(i32),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::OffsetOutOfRange { label, offset } => {
                write!(f, "offset {offset} to label `{label}` out of range")
            }
            AsmError::ImmOutOfRange(v) => write!(f, "immediate {v} out of 14-bit signed range"),
        }
    }
}

impl std::error::Error for AsmError {}

const IMM14_MIN: i32 = -(1 << 13);
const IMM14_MAX: i32 = (1 << 13) - 1;
const IMM19_MIN: i64 = -(1 << 18);
const IMM19_MAX: i64 = (1 << 18) - 1;

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    Branch {
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        target: String,
    },
    Jal {
        rd: Reg,
        target: String,
    },
}

/// Two-pass assembler producing a flat `Vec<u32>` of instruction words.
///
/// Instructions are placed consecutively starting at the base address given
/// to [`Assembler::new`]; branch and jump targets are labels resolved at
/// [`Assembler::assemble`] time.
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an assembler placing code at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn new(base: u32) -> Self {
        assert_eq!(base % 4, 0, "code base must be word aligned");
        Assembler {
            base,
            items: Vec::new(),
            labels: HashMap::new(),
            error: None,
        }
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.items.len())
            .is_some()
        {
            self.set_err(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// The address the *next* emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.base + (self.items.len() as u32) * 4
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn set_err(&mut self, e: AsmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.items.push(Item::Fixed(i));
        self
    }

    fn check_imm14(&mut self, imm: i32) -> i32 {
        if !(IMM14_MIN..=IMM14_MAX).contains(&imm) {
            self.set_err(AsmError::ImmOutOfRange(imm));
        }
        imm
    }

    fn r_type(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::new(op, rd, rs1, rs2, 0))
    }

    fn i_type(&mut self, op: Opcode, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        let imm = self.check_imm14(imm);
        self.push(Instr::new(op, rd, rs1, ZERO, imm))
    }

    fn s_type(&mut self, op: Opcode, rs1: Reg, rs2: Reg, imm: i32) -> &mut Self {
        let imm = self.check_imm14(imm);
        self.push(Instr::new(op, ZERO, rs1, rs2, imm))
    }
}

macro_rules! r_ops {
    ($($fn_name:ident => $op:ident;)*) => {
        impl Assembler {
            $(
                #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, rs2`.")]
                pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.r_type(Opcode::$op, rd, rs1, rs2)
                }
            )*
        }
    };
}

macro_rules! i_ops {
    ($($fn_name:ident => $op:ident;)*) => {
        impl Assembler {
            $(
                #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, imm`.")]
                pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
                    self.i_type(Opcode::$op, rd, rs1, imm)
                }
            )*
        }
    };
}

macro_rules! s_ops {
    ($($fn_name:ident => $op:ident;)*) => {
        impl Assembler {
            $(
                #[doc = concat!("Emits `", stringify!($fn_name), " base, src, imm` (store: `mem[base+imm] = src`).")]
                pub fn $fn_name(&mut self, base: Reg, src: Reg, imm: i32) -> &mut Self {
                    self.s_type(Opcode::$op, base, src, imm)
                }
            )*
        }
    };
}

r_ops! {
    add => Add; sub => Sub; and => And; or => Or; xor => Xor;
    sll => Sll; srl => Srl; sra => Sra; slt => Slt; sltu => Sltu;
    mul => Mul; mulh => Mulh; divu => Divu; remu => Remu;
}

i_ops! {
    addi => Addi; andi => Andi; ori => Ori; xori => Xori;
    slli => Slli; srli => Srli; srai => Srai; slti => Slti;
    lw => Lw; lb => Lb; lbu => Lbu; lh => Lh; lhu => Lhu;
}

s_ops! {
    sw => Sw; sb => Sb; sh => Sh;
}

impl Assembler {
    /// Emits `lui rd, imm` (`rd = imm << 18`).
    pub fn lui(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.i_type(Opcode::Lui, rd, ZERO, imm)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::new(Opcode::Nop, ZERO, ZERO, ZERO, 0))
    }

    /// Emits `halt` — ends the program.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::new(Opcode::Halt, ZERO, ZERO, ZERO, 0))
    }

    /// Emits `jalr rd, rs1, imm` (indirect jump; `rd = pc + 4`).
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.i_type(Opcode::Jalr, rd, rs1, imm)
    }

    /// Emits a conditional branch to `target`.
    pub fn branch(&mut self, op: Opcode, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        debug_assert!(op.is_branch(), "{op} is not a branch");
        self.items.push(Item::Branch {
            op,
            rs1,
            rs2,
            target: target.to_string(),
        });
        self
    }

    /// Emits `beq rs1, rs2, target`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Beq, rs1, rs2, target)
    }

    /// Emits `bne rs1, rs2, target`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Bne, rs1, rs2, target)
    }

    /// Emits `blt rs1, rs2, target` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Blt, rs1, rs2, target)
    }

    /// Emits `bge rs1, rs2, target` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Bge, rs1, rs2, target)
    }

    /// Emits `bltu rs1, rs2, target` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Bltu, rs1, rs2, target)
    }

    /// Emits `bgeu rs1, rs2, target` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(Opcode::Bgeu, rs1, rs2, target)
    }

    /// Emits `jal rd, target`.
    pub fn jal(&mut self, rd: Reg, target: &str) -> &mut Self {
        self.items.push(Item::Jal {
            rd,
            target: target.to_string(),
        });
        self
    }

    // ----- pseudo-instructions -----

    /// Unconditional jump: `jal zero, target`.
    pub fn j(&mut self, target: &str) -> &mut Self {
        self.jal(ZERO, target)
    }

    /// Function call: `jal ra, target`.
    pub fn call(&mut self, target: &str) -> &mut Self {
        self.jal(RA, target)
    }

    /// Function return: `jalr zero, ra, 0`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(ZERO, RA, 0)
    }

    /// Register move: `addi rd, rs, 0`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Loads an arbitrary 32-bit constant into `rd`.
    ///
    /// Emits one instruction when the constant fits a 14-bit signed
    /// immediate or is a pure `lui` value, and a 5-instruction
    /// shift/or sequence otherwise.
    pub fn li32(&mut self, rd: Reg, value: u32) -> &mut Self {
        let v = value as i32;
        if (IMM14_MIN..=IMM14_MAX).contains(&v) {
            return self.addi(rd, ZERO, v);
        }
        if value & 0x3_FFFF == 0 {
            // Pure upper-immediate value.
            let hi = ((value >> 18) as i32) << 18 >> 18; // sign view of the field
            return self.lui(rd, hi);
        }
        let c0 = ((value >> 21) & 0x7FF) as i32;
        let c1 = ((value >> 10) & 0x7FF) as i32;
        let c2 = (value & 0x3FF) as i32;
        self.addi(rd, ZERO, c0);
        self.slli(rd, rd, 11);
        self.ori(rd, rd, c1);
        self.slli(rd, rd, 10);
        self.ori(rd, rd, c2)
    }

    /// Resolves labels and produces the instruction words.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] recorded while building or resolving
    /// (unknown/duplicate labels, out-of-range offsets or immediates).
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let word = match item {
                Item::Fixed(i) => i.encode(),
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let off = self.offset_to(idx, target)?;
                    if !(i64::from(IMM14_MIN)..=i64::from(IMM14_MAX)).contains(&off) {
                        return Err(AsmError::OffsetOutOfRange {
                            label: target.clone(),
                            offset: off,
                        });
                    }
                    Instr::new(*op, ZERO, *rs1, *rs2, off as i32).encode()
                }
                Item::Jal { rd, target } => {
                    let off = self.offset_to(idx, target)?;
                    if !(IMM19_MIN..=IMM19_MAX).contains(&off) {
                        return Err(AsmError::OffsetOutOfRange {
                            label: target.clone(),
                            offset: off,
                        });
                    }
                    Instr::new(Opcode::Jal, *rd, ZERO, ZERO, off as i32).encode()
                }
            };
            words.push(word);
        }
        Ok(words)
    }

    /// Looks up the address a label resolves to.
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&i| self.base + (i as u32) * 4)
    }

    fn offset_to(&self, from: usize, target: &str) -> Result<i64, AsmError> {
        let &to = self
            .labels
            .get(target)
            .ok_or_else(|| AsmError::UnknownLabel(target.to_string()))?;
        Ok(to as i64 - from as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::decode;
    use crate::reg::{A0, A1, T0};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0);
        a.label("start");
        a.addi(A0, ZERO, 1);
        a.beq(A0, ZERO, "end"); // forward
        a.j("start"); // backward
        a.label("end");
        a.halt();
        let w = a.assemble().unwrap();
        let b = decode(w[1]).unwrap();
        assert_eq!(b.imm, 2); // two instructions forward
        let j = decode(w[2]).unwrap();
        assert_eq!(j.imm, -2);
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.j("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UnknownLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn imm_out_of_range_is_an_error() {
        let mut a = Assembler::new(0);
        a.addi(A0, ZERO, 100_000);
        assert_eq!(a.assemble(), Err(AsmError::ImmOutOfRange(100_000)));
    }

    #[test]
    fn li32_small_constant_single_instruction() {
        let mut a = Assembler::new(0);
        a.li32(A0, 100);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn li32_lui_constant_single_instruction() {
        let mut a = Assembler::new(0);
        a.li32(A0, 0x0004_0000); // 1 << 18
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn li32_sequence_materializes_value() {
        // Interpret the emitted sequence to confirm the constant.
        for value in [0xDEAD_BEEFu32, 0x0001_2345, 0xFFFF_FFFF, 0x8000_0001] {
            let mut a = Assembler::new(0);
            a.li32(A0, value);
            let words = a.assemble().unwrap();
            let mut r: u32 = 0;
            for w in words {
                let i = decode(w).unwrap();
                r = match i.op {
                    Opcode::Addi => (r as i32).wrapping_add(i.imm) as u32,
                    Opcode::Slli => r << (i.imm & 31),
                    Opcode::Ori => r | i.imm as u32,
                    Opcode::Lui => (i.imm << 18) as u32,
                    other => panic!("unexpected {other}"),
                };
            }
            assert_eq!(r, value, "li32({value:#x})");
        }
    }

    #[test]
    fn here_tracks_addresses() {
        let mut a = Assembler::new(0x100);
        assert_eq!(a.here(), 0x100);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 0x108);
        a.label("l");
        assert_eq!(a.label_addr("l"), Some(0x108));
    }

    #[test]
    fn store_operands_encode_in_s_format() {
        let mut a = Assembler::new(0);
        a.sw(A1, T0, 12);
        let w = a.assemble().unwrap()[0];
        let i = decode(w).unwrap();
        assert_eq!(i.rs1, A1);
        assert_eq!(i.rs2, T0);
        assert_eq!(i.imm, 12);
    }
}
