//! Architectural register names and conventions.

use crate::NUM_ARCH_REGS;
use core::fmt;

/// An architectural register index, guaranteed in range `0..NUM_ARCH_REGS`.
///
/// `Reg` is a validated newtype: constructing one from a raw 5-bit field can
/// fail (the field has 32 encodings but only 24 are architecturally
/// defined), which is how the decoder detects *unknown-to-the-ISA* operand
/// corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from an index.
    ///
    /// Returns `None` if `index >= NUM_ARCH_REGS`.
    pub fn new(index: u8) -> Option<Self> {
        (index < NUM_ARCH_REGS).then_some(Reg(index))
    }

    /// The register index, in `0..NUM_ARCH_REGS`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register `r0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The hardwired-zero register `r0`. Reads return 0; writes are discarded.
pub const ZERO: Reg = Reg(0);
/// Return-value / first-argument register by convention.
pub const A0: Reg = Reg(1);
/// Second argument register by convention.
pub const A1: Reg = Reg(2);
/// Third argument register by convention.
pub const A2: Reg = Reg(3);
/// Fourth argument register by convention.
pub const A3: Reg = Reg(4);
/// Temporaries `t0..t9` occupy `r5..r14`.
pub const T0: Reg = Reg(5);
pub const T1: Reg = Reg(6);
pub const T2: Reg = Reg(7);
pub const T3: Reg = Reg(8);
pub const T4: Reg = Reg(9);
pub const T5: Reg = Reg(10);
pub const T6: Reg = Reg(11);
pub const T7: Reg = Reg(12);
pub const T8: Reg = Reg(13);
pub const T9: Reg = Reg(14);
/// Callee-ish saved registers `s0..s6` occupy `r15..r21`.
pub const S0: Reg = Reg(15);
pub const S1: Reg = Reg(16);
pub const S2: Reg = Reg(17);
pub const S3: Reg = Reg(18);
pub const S4: Reg = Reg(19);
pub const S5: Reg = Reg(20);
pub const S6: Reg = Reg(21);
/// Stack pointer by convention.
pub const SP: Reg = Reg(22);
/// Link register written by `jal`/`jalr`.
pub const RA: Reg = Reg(23);

/// All architectural registers, in index order.
pub fn all_regs() -> impl Iterator<Item = Reg> {
    (0..NUM_ARCH_REGS).map(Reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert_eq!(Reg::new(0), Some(ZERO));
        assert_eq!(Reg::new(23), Some(RA));
        assert_eq!(Reg::new(24), None);
        assert_eq!(Reg::new(31), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn zero_register_is_special() {
        assert!(ZERO.is_zero());
        assert!(!A0.is_zero());
    }

    #[test]
    fn display_prints_index() {
        assert_eq!(SP.to_string(), "r22");
    }

    #[test]
    fn all_regs_covers_the_file() {
        let v: Vec<Reg> = all_regs().collect();
        assert_eq!(v.len(), NUM_ARCH_REGS as usize);
        assert_eq!(v[0], ZERO);
        assert_eq!(v[23], RA);
    }
}
