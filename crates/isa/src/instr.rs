//! Decoded instruction representation and the decoder.

use crate::encoding::{self as enc};
use crate::opcode::{Format, Opcode};
use crate::reg::{Reg, ZERO};
use core::fmt;

/// A fully decoded AvgIsa instruction.
///
/// Operand slots a format does not use hold [`ZERO`]/`0`; the original
/// encoding is kept in `raw` so analyses can reason at the bit level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The operation.
    pub op: Opcode,
    /// Destination register (formats `R`, `I`, `J`).
    pub rd: Reg,
    /// First source register (formats `R`, `I`, `S`).
    pub rs1: Reg,
    /// Second source register (formats `R`, `S`).
    pub rs2: Reg,
    /// Sign-extended immediate (formats `I`, `S`, `J`).
    pub imm: i32,
    /// The 32-bit encoding this instruction was decoded from.
    pub raw: u32,
}

/// Why a 32-bit word failed to decode.
///
/// The distinction between variants matters to the IMM classifier: an
/// [`UnknownOpcode`](DecodeError::UnknownOpcode) means the *opcode* field
/// left the ISA, while [`UnknownRegister`](DecodeError::UnknownRegister) and
/// [`NonZeroPad`](DecodeError::NonZeroPad) mean an *operand* field left the
/// ISA (the paper's `UNO` manifestation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The 8-bit opcode field does not name a defined instruction.
    UnknownOpcode(u8),
    /// A 5-bit register field holds an index the ISA does not define.
    UnknownRegister {
        /// Which operand slot held the bad index.
        field: RegField,
        /// The out-of-range index (always `>= NUM_ARCH_REGS`).
        value: u8,
    },
    /// A must-be-zero pad field is non-zero.
    NonZeroPad(u32),
}

/// Names an operand register slot, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegField {
    /// Destination register slot.
    Rd,
    /// First source register slot.
    Rs1,
    /// Second source register slot.
    Rs2,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::UnknownRegister { field, value } => {
                write!(f, "register field {field:?} holds undefined index {value}")
            }
            DecodeError::NonZeroPad(p) => write!(f, "must-be-zero pad holds {p:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Whether the failure is in an *operand* field (register index or pad)
    /// rather than the opcode — i.e., the encoding names a defined operation
    /// applied to operands unknown to the ISA.
    pub fn is_operand_error(&self) -> bool {
        !matches!(self, DecodeError::UnknownOpcode(_))
    }
}

fn reg(field: RegField, bits: u8) -> Result<Reg, DecodeError> {
    Reg::new(bits).ok_or(DecodeError::UnknownRegister { field, value: bits })
}

/// Decodes a 32-bit word into an [`Instr`].
///
/// # Errors
///
/// Returns a [`DecodeError`] when the opcode, a register field, or a pad
/// field holds an encoding outside the ISA. The simulator turns such words
/// into undefined-instruction traps at commit.
///
/// ```
/// use avgi_isa::instr::{decode, DecodeError};
/// assert!(matches!(decode(0xFF00_0000), Err(DecodeError::UnknownOpcode(0xFF))));
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let op = Opcode::from_bits(enc::opcode_bits(word))
        .ok_or(DecodeError::UnknownOpcode(enc::opcode_bits(word)))?;
    let instr = match op.format() {
        Format::R => {
            if enc::pad9(word) != 0 {
                return Err(DecodeError::NonZeroPad(enc::pad9(word)));
            }
            Instr {
                op,
                rd: reg(RegField::Rd, enc::rd_bits(word))?,
                rs1: reg(RegField::Rs1, enc::rs1_bits(word))?,
                rs2: reg(RegField::Rs2, enc::rs2_bits(word))?,
                imm: 0,
                raw: word,
            }
        }
        Format::I => Instr {
            op,
            rd: reg(RegField::Rd, enc::rd_bits(word))?,
            rs1: reg(RegField::Rs1, enc::rs1_bits(word))?,
            rs2: ZERO,
            imm: enc::imm14(word),
            raw: word,
        },
        Format::S => Instr {
            op,
            rd: ZERO,
            rs1: reg(RegField::Rs1, enc::s_rs1_bits(word))?,
            rs2: reg(RegField::Rs2, enc::s_rs2_bits(word))?,
            imm: enc::imm14(word),
            raw: word,
        },
        Format::J => Instr {
            op,
            rd: reg(RegField::Rd, enc::rd_bits(word))?,
            rs1: ZERO,
            rs2: ZERO,
            imm: enc::imm19(word),
            raw: word,
        },
        Format::N => {
            if enc::pad24(word) != 0 {
                return Err(DecodeError::NonZeroPad(enc::pad24(word)));
            }
            Instr {
                op,
                rd: ZERO,
                rs1: ZERO,
                rs2: ZERO,
                imm: 0,
                raw: word,
            }
        }
    };
    Ok(instr)
}

impl Instr {
    /// Re-encodes the instruction into its 32-bit word.
    pub fn encode(&self) -> u32 {
        match self.op.format() {
            Format::R => enc::pack_r(
                self.op.to_bits(),
                self.rd.index(),
                self.rs1.index(),
                self.rs2.index(),
            ),
            Format::I => enc::pack_i(
                self.op.to_bits(),
                self.rd.index(),
                self.rs1.index(),
                self.imm,
            ),
            Format::S => enc::pack_s(
                self.op.to_bits(),
                self.rs1.index(),
                self.rs2.index(),
                self.imm,
            ),
            Format::J => enc::pack_j(self.op.to_bits(), self.rd.index(), self.imm),
            Format::N => enc::pack_n(self.op.to_bits()),
        }
    }

    /// Constructs an instruction from parts and computes its encoding.
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i32) -> Self {
        let mut i = Instr {
            op,
            rd,
            rs1,
            rs2,
            imm,
            raw: 0,
        };
        i.raw = i.encode();
        i
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.format() {
            Format::R => write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.rs2),
            Format::I => write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.imm),
            Format::S => write!(f, "{} {}, {}, {}", self.op, self.rs1, self.rs2, self.imm),
            Format::J => write!(f, "{} {}, {}", self.op, self.rd, self.imm),
            Format::N => write!(f, "{}", self.op),
        }
    }
}

/// Disassembles a word, or describes why it does not decode.
pub fn disassemble(word: u32) -> String {
    match decode(word) {
        Ok(i) => i.to_string(),
        Err(e) => format!("<undefined: {e}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, A1, SP, T0};

    #[test]
    fn decode_encode_roundtrip_r() {
        let i = Instr::new(Opcode::Add, A0, A1, T0, 0);
        assert_eq!(decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn decode_encode_roundtrip_i_negative_imm() {
        let i = Instr::new(Opcode::Addi, SP, SP, ZERO, -64);
        let d = decode(i.encode()).unwrap();
        assert_eq!(d.imm, -64);
        assert_eq!(d, i);
    }

    #[test]
    fn decode_rejects_invalid_register() {
        // rd = 30 in an I-format instruction.
        let w = enc::pack_i(Opcode::Addi.to_bits(), 30, 1, 5);
        assert_eq!(
            decode(w),
            Err(DecodeError::UnknownRegister {
                field: RegField::Rd,
                value: 30
            })
        );
    }

    #[test]
    fn decode_rejects_nonzero_pad() {
        let w = enc::pack_r(Opcode::Add.to_bits(), 1, 2, 3) | 0x7;
        assert_eq!(decode(w), Err(DecodeError::NonZeroPad(0x7)));
        let w = enc::pack_n(Opcode::Halt.to_bits()) | 0x100;
        assert_eq!(decode(w), Err(DecodeError::NonZeroPad(0x100)));
    }

    #[test]
    fn operand_error_predicate() {
        assert!(!DecodeError::UnknownOpcode(0xAB).is_operand_error());
        assert!(DecodeError::NonZeroPad(1).is_operand_error());
        assert!(DecodeError::UnknownRegister {
            field: RegField::Rs2,
            value: 25
        }
        .is_operand_error());
    }

    #[test]
    fn display_formats() {
        let i = Instr::new(Opcode::Add, A0, A1, T0, 0);
        assert_eq!(i.to_string(), "add r1, r2, r5");
        let i = Instr::new(Opcode::Sw, ZERO, A0, T0, 8);
        assert_eq!(i.to_string(), "sw r1, r5, 8");
        assert!(disassemble(0xFF00_0000).contains("undefined"));
    }

    #[test]
    fn every_encoding_decodes_or_errors_without_panicking() {
        // Coarse sweep across the word space; decode must be total.
        for hi in 0..=255u32 {
            for lo in [0u32, 1, 0x1FF, 0x3FFF, 0xFFFF, 0x7F_FFFF] {
                let _ = decode(hi << 24 | lo);
            }
        }
    }
}
