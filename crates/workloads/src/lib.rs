//! # avgi-workloads — the benchmark programs
//!
//! Fourteen self-checking benchmark programs written in AvgIsa assembly,
//! standing in for the paper's 10 MiBench + 3 NAS workloads (§II.D). The
//! mix mirrors the paper's: integer and fixed-point kernels, compute-bound
//! and memory-bound loops, and output sizes spanning three orders of
//! magnitude (4 B hashes up to 12 KiB cipher streams) — the spread the
//! paper's ESC analysis (§IV.D) depends on.
//!
//! Every workload carries a pure-Rust reference implementation; the crate's
//! tests execute each program on the simulator and require bit-exact output
//! agreement, so the assembly is continuously validated.
//!
//! ```
//! let w = avgi_workloads::by_name("bitcount").unwrap();
//! assert_eq!(w.expected.len(), 4);
//! ```

use avgi_muarch::program::Program;

mod basicmath;
mod bitcount;
mod blowfish;
mod crc32;
mod dijkstra;
mod fft;
mod nas_cg;
mod nas_is;
mod nas_mg;
mod qsort;
mod rijndael;
mod sha;
mod stringsearch;
mod susan;
pub mod util;

/// Which suite a workload stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MiBench-style embedded kernel.
    MiBench,
    /// NAS-style numerical kernel.
    Nas,
}

/// A benchmark program plus its reference output.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (matches the paper's benchmark naming style).
    pub name: &'static str,
    /// Which suite this kernel mirrors.
    pub suite: Suite,
    /// The loadable program.
    pub program: Program,
    /// Reference output computed by a pure-Rust implementation; a correct
    /// fault-free simulation must produce exactly these bytes.
    pub expected: Vec<u8>,
}

impl Workload {
    /// Output size in bytes (the paper's `Output_Size` for the ESC
    /// equation).
    pub fn output_bytes(&self) -> u32 {
        self.program.output_len
    }
}

/// The workload registry: every workload name in builder order, known
/// without constructing any program.
///
/// The position of a name in this array is the workload's stable numeric
/// id — the compact identifier `avgi-grid` campaign specs put on the wire
/// so a remote worker can rebuild the exact workload locally. Entries are
/// append-only: reordering or removing one would silently rebind ids.
pub const NAMES: [&str; 14] = [
    "bitcount",
    "sha",
    "crc32",
    "qsort",
    "stringsearch",
    "dijkstra",
    "blowfish",
    "rijndael",
    "basicmath",
    "susan",
    "fft",
    "nas_is",
    "nas_mg",
    "nas_cg",
];

/// Builds all 14 workloads in [`NAMES`] order (11 MiBench-style + 3
/// NAS-style; the paper uses 10 + 3 — the extra kernel only tightens the
/// cross-workload statistics).
pub fn all() -> Vec<Workload> {
    vec![
        bitcount::build(),
        sha::build(),
        crc32::build(),
        qsort::build(),
        stringsearch::build(),
        dijkstra::build(),
        blowfish::build(),
        rijndael::build(),
        basicmath::build(),
        susan::build(),
        fft::build(),
        nas_is::build(),
        nas_mg::build(),
        nas_cg::build(),
    ]
}

/// Names of all workloads, in the same order as [`all`].
pub fn names() -> Vec<&'static str> {
    NAMES.to_vec()
}

/// The registry id of a workload name (its index in [`NAMES`]).
pub fn index_of(name: &str) -> Option<usize> {
    NAMES.iter().position(|&n| n == name)
}

/// Builds the workload with registry id `index` (see [`NAMES`]).
pub fn by_index(index: usize) -> Option<Workload> {
    if index < NAMES.len() {
        all().into_iter().nth(index)
    } else {
        None
    }
}

/// Looks up one workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    index_of(name).and_then(by_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_with_unique_names() {
        let ws = all();
        assert_eq!(ws.len(), 14);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate workload names");
    }

    #[test]
    fn suites_match_paper_mix() {
        let ws = all();
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::MiBench).count(), 11);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::Nas).count(), 3);
    }

    #[test]
    fn output_sizes_span_orders_of_magnitude() {
        let ws = all();
        let min = ws.iter().map(|w| w.output_bytes()).min().unwrap();
        let max = ws.iter().map(|w| w.output_bytes()).max().unwrap();
        assert!(min <= 16, "need tiny-output workloads (sha/bitcount style)");
        assert!(
            max >= 8 * 1024,
            "need large-output workloads (cipher style)"
        );
    }

    #[test]
    fn expected_output_lengths_match_programs() {
        for w in all() {
            assert_eq!(
                w.expected.len(),
                w.program.output_len as usize,
                "{}: reference length mismatch",
                w.name
            );
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for name in names() {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("no-such").is_none());
    }

    #[test]
    fn registry_matches_builders() {
        // NAMES is the wire-stable id space; it must agree with the actual
        // builder order or remote workers would rebuild the wrong program.
        let built: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(built, NAMES.to_vec());
        for (i, &name) in NAMES.iter().enumerate() {
            assert_eq!(index_of(name), Some(i));
            assert_eq!(by_index(i).unwrap().name, name);
        }
        assert!(by_index(NAMES.len()).is_none());
        assert_eq!(index_of("no-such"), None);
    }
}
