//! `dijkstra` — single-source shortest paths on a dense graph (MiBench
//! `dijkstra`): O(V²) scans, pointer-chased rows, medium output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, S0, S1, S6, T0, T1, T2, T3, T4, T5, T6, T8, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 48;
const INF: u32 = 0x3FFF_FFFF;
const DIST_ADDR: u32 = DATA_BASE + 0x4000;
const VISITED_ADDR: u32 = DATA_BASE + 0x4200;

fn reference(adj: &[u32]) -> Vec<u32> {
    let mut dist = vec![INF; N];
    let mut visited = [false; N];
    dist[0] = 0;
    for _ in 0..N {
        let mut u = usize::MAX;
        let mut best = u32::MAX;
        for v in 0..N {
            if !visited[v] && dist[v] < best {
                best = dist[v];
                u = v;
            }
        }
        if u == usize::MAX {
            break;
        }
        visited[u] = true;
        for v in 0..N {
            if !visited[v] {
                let cand = best + adj[u * N + v];
                if cand < dist[v] {
                    dist[v] = cand;
                }
            }
        }
    }
    dist
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xD175_0042);
    let adj: Vec<u32> = (0..N * N).map(|_| u32::from(lcg.next_u8() | 1)).collect();
    let dist = reference(&adj);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // adjacency matrix
    a.li32(A1, DIST_ADDR);
    a.li32(A2, VISITED_ADDR);
    a.li32(T0, 0);
    a.li32(T1, N as u32);
    a.li32(T2, INF);
    a.label("init");
    a.slli(T3, T0, 2);
    a.add(T4, A1, T3);
    a.sw(T4, T2, 0);
    a.add(T4, A2, T3);
    a.sw(T4, ZERO, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "init");
    a.sw(A1, ZERO, 0); // dist[source] = 0
    a.li32(S6, 0); // iteration counter
    a.label("iter");
    // Select the unvisited node with minimal distance: u in S0, best in S1.
    a.addi(S0, ZERO, -1);
    a.li32(S1, u32::MAX);
    a.li32(T0, 0);
    a.label("find");
    a.slli(T3, T0, 2);
    a.add(T4, A2, T3);
    a.lw(T5, T4, 0);
    a.bne(T5, ZERO, "fnext");
    a.add(T4, A1, T3);
    a.lw(T5, T4, 0);
    a.bgeu(T5, S1, "fnext");
    a.mv(S1, T5);
    a.mv(S0, T0);
    a.label("fnext");
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "find");
    // Mark u visited.
    a.slli(T3, S0, 2);
    a.add(T4, A2, T3);
    a.addi(T5, ZERO, 1);
    a.sw(T4, T5, 0);
    // Relax all unvisited neighbours of u.
    a.li32(T6, (N * 4) as u32);
    a.mul(T6, S0, T6);
    a.add(T6, A0, T6); // row base
    a.li32(T0, 0);
    a.label("relax");
    a.slli(T3, T0, 2);
    a.add(T4, A2, T3);
    a.lw(T5, T4, 0);
    a.bne(T5, ZERO, "rnext");
    a.add(T4, T6, T3);
    a.lw(T5, T4, 0); // w(u, v)
    a.add(T5, S1, T5); // dist[u] + w
    a.add(T4, A1, T3);
    a.lw(T8, T4, 0);
    a.bgeu(T5, T8, "rnext");
    a.sw(T4, T5, 0);
    a.label("rnext");
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "relax");
    a.addi(S6, S6, 1);
    a.bne(S6, T1, "iter");
    // Emit distances.
    a.li32(A2, OUTPUT_BASE);
    a.li32(T0, 0);
    a.label("copy");
    a.slli(T3, T0, 2);
    a.add(T4, A1, T3);
    a.lw(T5, T4, 0);
    a.add(T4, A2, T3);
    a.sw(T4, T5, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "copy");
    a.halt();

    let program = Program::new(
        "dijkstra",
        a.assemble().expect("dijkstra assembles"),
        (N * 4) as u32,
    )
    .with_data(DATA_BASE, words_to_bytes(&adj));
    Workload {
        name: "dijkstra",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&dist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_finite_and_triangle_consistent() {
        let w = build();
        let d: Vec<u32> = w
            .expected
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(d[0], 0);
        assert!(
            d.iter().all(|&x| x < INF),
            "dense graph: everything reachable"
        );
        // Direct edges bound the shortest paths.
        assert!(
            d.iter().all(|&x| x <= 255 * 2),
            "two hops of max weight suffice here"
        );
    }
}
