//! `rijndael` — S-box substitution cipher with chaining (stands in for
//! MiBench `rijndael`): table-lookup heavy, byte-granular, large output —
//! the second large-output workload of the ESC study.

use crate::util::Lcg;
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, S0, T0, T1, T2, T3, T4};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const BYTES: usize = 8192; // 8 KiB
const INPUT_ADDR: u32 = DATA_BASE + 0x1000;
const IV: u8 = 0x5A;

fn make_sbox(lcg: &mut Lcg) -> Vec<u8> {
    let mut sbox: Vec<u8> = (0..=255).collect();
    // Fisher-Yates with the shared LCG.
    for i in (1..256usize).rev() {
        let j = (lcg.next_u32() as usize) % (i + 1);
        sbox.swap(i, j);
    }
    sbox
}

fn reference(sbox: &[u8], input: &[u8]) -> Vec<u8> {
    let mut prev = IV;
    input
        .iter()
        .map(|&b| {
            prev = sbox[usize::from(b ^ prev)];
            prev
        })
        .collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x41E5_0D43);
    let sbox = make_sbox(&mut lcg);
    let input = lcg.bytes(BYTES);
    let output = reference(&sbox, &input);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // sbox
    a.li32(A1, INPUT_ADDR);
    a.li32(A2, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, BYTES as u32);
    a.li32(S0, u32::from(IV));
    a.label("loop");
    a.add(T2, A1, T0);
    a.lbu(T3, T2, 0);
    a.xor(T3, T3, S0);
    a.add(T4, A0, T3);
    a.lbu(S0, T4, 0); // S-box lookup
    a.add(T2, A2, T0);
    a.sb(T2, S0, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "loop");
    a.halt();

    let program = Program::new(
        "rijndael",
        a.assemble().expect("rijndael assembles"),
        BYTES as u32,
    )
    .with_data(DATA_BASE, sbox)
    .with_data(INPUT_ADDR, input);
    Workload {
        name: "rijndael",
        suite: Suite::MiBench,
        program,
        expected: output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_is_a_permutation() {
        let mut lcg = Lcg::new(0x41E5_0D43);
        let sbox = make_sbox(&mut lcg);
        let mut seen = [false; 256];
        for &b in &sbox {
            assert!(!seen[usize::from(b)], "duplicate sbox entry");
            seen[usize::from(b)] = true;
        }
    }

    #[test]
    fn chaining_diffuses_changes() {
        let mut lcg = Lcg::new(1);
        let sbox = make_sbox(&mut lcg);
        let input = lcg.bytes(64);
        let base = reference(&sbox, &input);
        let mut flipped = input.clone();
        flipped[0] ^= 1;
        let alt = reference(&sbox, &flipped);
        // A leading-byte change must propagate to the tail.
        assert_ne!(base[63], alt[63]);
    }
}
